"""Benchmark regenerating Section 5 validation: in-network title classification vs server-log ground truth.

Wraps :func:`repro.experiments.run_deployment_validation`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_deployment_validation


@pytest.mark.benchmark(group="section-5-validation")
def test_bench_deployment_validation(benchmark):
    result = benchmark.pedantic(run_deployment_validation, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
