"""Benchmark regenerating Figure 3: launch-stage full/steady/sparse packet-group scatter.

Wraps :func:`repro.experiments.run_fig03_launch_groups`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_fig03_launch_groups


@pytest.mark.benchmark(group="figure-3")
def test_bench_fig03_launch_groups(benchmark):
    result = benchmark.pedantic(run_fig03_launch_groups, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
