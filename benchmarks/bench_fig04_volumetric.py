"""Benchmark regenerating Figure 4: per-stage bidirectional throughput time series.

Wraps :func:`repro.experiments.run_fig04_volumetric_timeseries`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_fig04_volumetric_timeseries


@pytest.mark.benchmark(group="figure-4")
def test_bench_fig04_volumetric(benchmark):
    result = benchmark.pedantic(run_fig04_volumetric_timeseries, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
