"""Benchmark regenerating Figure 5: stage playtime shares and transition probabilities.

Wraps :func:`repro.experiments.run_fig05_stage_transitions`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_fig05_stage_transitions


@pytest.mark.benchmark(group="figure-5")
def test_bench_fig05_transitions(benchmark):
    result = benchmark.pedantic(run_fig05_stage_transitions, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
