"""Benchmark regenerating Figure 8: title accuracy vs first-N-seconds window and slot size.

Wraps :func:`repro.experiments.run_fig08_window_sweep`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_fig08_window_sweep


@pytest.mark.benchmark(group="figure-8")
def test_bench_fig08_window_sweep(benchmark):
    result = benchmark.pedantic(run_fig08_window_sweep, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
