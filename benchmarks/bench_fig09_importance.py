"""Benchmark regenerating Figure 9: permutation importance of the 51 launch attributes.

Wraps :func:`repro.experiments.run_fig09_feature_importance`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_fig09_feature_importance


@pytest.mark.benchmark(group="figure-9")
def test_bench_fig09_importance(benchmark):
    result = benchmark.pedantic(run_fig09_feature_importance, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
