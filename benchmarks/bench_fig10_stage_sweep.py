"""Benchmark regenerating Figure 10: stage accuracy vs EMA weight and slot size.

Wraps :func:`repro.experiments.run_fig10_stage_parameter_sweep`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_fig10_stage_parameter_sweep


@pytest.mark.benchmark(group="figure-10")
def test_bench_fig10_stage_sweep(benchmark):
    result = benchmark.pedantic(run_fig10_stage_parameter_sweep, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
