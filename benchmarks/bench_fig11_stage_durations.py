"""Benchmark regenerating Figure 11: average minutes per stage per title and pattern (ISP).

Wraps :func:`repro.experiments.run_fig11_stage_durations`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_fig11_stage_durations


@pytest.mark.benchmark(group="figure-11")
def test_bench_fig11_stage_durations(benchmark):
    result = benchmark.pedantic(run_fig11_stage_durations, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
