"""Benchmark regenerating Figure 12: session-average throughput per title and pattern (ISP).

Wraps :func:`repro.experiments.run_fig12_bandwidth_demands`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_fig12_bandwidth_demands


@pytest.mark.benchmark(group="figure-12")
def test_bench_fig12_bandwidth(benchmark):
    result = benchmark.pedantic(run_fig12_bandwidth_demands, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
