"""Benchmark regenerating Figure 13: objective vs effective QoE fractions (ISP).

Wraps :func:`repro.experiments.run_fig13_effective_qoe`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_fig13_effective_qoe


@pytest.mark.benchmark(group="figure-13")
def test_bench_fig13_effective_qoe(benchmark):
    result = benchmark.pedantic(run_fig13_effective_qoe, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
