"""Benchmark regenerating Figure 14: RF/SVM/KNN hyperparameter tuning for title classification.

Wraps :func:`repro.experiments.run_fig14_title_model_tuning`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_fig14_title_model_tuning


@pytest.mark.benchmark(group="figure-14")
def test_bench_fig14_model_tuning(benchmark):
    result = benchmark.pedantic(run_fig14_title_model_tuning, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
