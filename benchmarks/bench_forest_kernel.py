"""Benchmark: compiled forest kernel vs the legacy blocked tree-walk.

Replays the *real* forest workload of the shared >=100-session deployment
corpus (``benchmarks/conftest.py``): the three fitted forests' input
matrices are captured by spying on ``RandomForestClassifier.predict_proba``
during an actual ``pipeline.process_many`` run, then each component is
timed on both implementations:

* **batch** — every forest's full stacked corpus matrix in one call (the
  offline ``process_many`` shape);
* **stream** — the stage forest chunked into feed-tick-sized slices plus
  one close-time call (the :class:`~repro.runtime.engine.StreamingEngine`
  shape);
* **single-row** — per-session one-row calls against all three forests
  (the per-flow gate shape, where the legacy path falls back to Python
  tree walks).

Every component asserts **bit-identical** probabilities between the
kernel and ``predict_proba_legacy`` before any timing is recorded, plus a
randomized input sweep; the headline ``kernel_speedup`` (total legacy
time / total kernel time over all components) is regression-gated in
``BENCH_packet_stream.json``.  When the optional numba backend is
importable the same workload is repeated on it (and asserted identical);
otherwise ``numba_available`` records ``false``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_forest_kernel.py

``scripts/perf_smoke.py`` imports :func:`run_benchmark` to record the
results (full runs and the ``--quick`` tier-2 gate).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
BENCH_DIR = str(Path(__file__).resolve().parent)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

from conftest import build_deployment_corpus, fit_deployment_pipeline  # noqa: E402
from repro.ml.forest import RandomForestClassifier  # noqa: E402
from repro.ml.kernel import ForestKernel, available_backends  # noqa: E402

#: Rows per chunk of the streaming-shaped stage trace (the live feed ticks
#: classify the newly completed slots of ~24 concurrent sessions per batch).
STREAM_CHUNK_ROWS = 24
STREAM_N_CHUNKS = 195
#: Close-time calls classify a whole session backlog in one pass.
STREAM_CLOSE_ROWS = 4816
#: Single-row gate calls per forest (one per corpus session).
N_SINGLE_ROW_CALLS = 104


def _timeit(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _capture_forest_inputs(pipeline, corpus):
    """The stacked input matrix each forest saw during ``process_many``."""
    names = {
        id(pipeline.title_classifier.model): "title",
        id(pipeline.activity_classifier.model): "stage",
        id(pipeline.pattern_classifier.model): "pattern",
    }
    captured = {"title": [], "stage": [], "pattern": []}
    original = RandomForestClassifier.predict_proba

    def spy(self, X):
        name = names.get(id(self))
        if name is not None:
            captured[name].append(np.array(X, dtype=float))
        return original(self, X)

    RandomForestClassifier.predict_proba = spy
    try:
        pipeline.process_many(corpus)
    finally:
        RandomForestClassifier.predict_proba = original
    return {name: np.vstack(mats) for name, mats in captured.items()}


def _forests(pipeline):
    return {
        "title": pipeline.title_classifier.model,
        "stage": pipeline.activity_classifier.model,
        "pattern": pipeline.pattern_classifier.model,
    }


def _assert_randomized_equivalence(forest, kernel, seed=42):
    """Kernel == legacy on randomized matrices (beyond the corpus inputs)."""
    rng = np.random.default_rng(seed)
    for n_rows in (1, 7, 256):
        X = rng.normal(size=(n_rows, forest.n_features_)) * rng.uniform(0.1, 100)
        assert np.array_equal(
            forest.predict_proba_legacy(X), kernel.predict_proba(X)
        ), f"kernel/legacy mismatch on randomized {n_rows}-row input"


def _workload_times(forests, kernels, matrices):
    """(per_forest, totals) of the three-component workload, bit-checked."""
    per_forest = {}
    total_legacy = 0.0
    total_kernel = 0.0

    # batch: each forest's full corpus matrix in one call
    for name, forest in forests.items():
        X = matrices[name]
        kernel = kernels[name]
        assert np.array_equal(
            forest.predict_proba_legacy(X), kernel.predict_proba(X)
        ), f"kernel/legacy mismatch on the {name} corpus matrix"
        legacy_s = _timeit(lambda f=forest, X=X: f.predict_proba_legacy(X))
        kernel_s = _timeit(lambda k=kernel, X=X: k.predict_proba(X))
        total_legacy += legacy_s
        total_kernel += kernel_s
        per_forest[name] = {
            "n_rows": int(X.shape[0]),
            "n_features": int(forest.n_features_),
            "n_trees": int(forest.n_estimators),
            "batch_legacy_s": legacy_s,
            "batch_kernel_s": kernel_s,
            "batch_speedup": legacy_s / kernel_s,
        }

    # stream: the stage forest in feed-tick chunks + one close-time call
    stage_X = matrices["stage"]
    chunks = [
        stage_X[start : start + STREAM_CHUNK_ROWS]
        for start in range(0, STREAM_CHUNK_ROWS * STREAM_N_CHUNKS, STREAM_CHUNK_ROWS)
        if start < stage_X.shape[0]
    ]
    chunks.append(stage_X[:STREAM_CLOSE_ROWS])
    stage_forest, stage_kernel = forests["stage"], kernels["stage"]
    for chunk in chunks[:: max(1, len(chunks) // 8)]:  # spot-check equality
        assert np.array_equal(
            stage_forest.predict_proba_legacy(chunk),
            stage_kernel.predict_proba(chunk),
        )
    stream_legacy_s = _timeit(
        lambda: [stage_forest.predict_proba_legacy(c) for c in chunks], repeats=3
    )
    stream_kernel_s = _timeit(
        lambda: [stage_kernel.predict_proba(c) for c in chunks], repeats=3
    )
    total_legacy += stream_legacy_s
    total_kernel += stream_kernel_s

    # single-row: per-session gate calls against every forest
    single_legacy_s = 0.0
    single_kernel_s = 0.0
    for name, forest in forests.items():
        X = matrices[name]
        kernel = kernels[name]
        rows = [
            X[index % X.shape[0] : index % X.shape[0] + 1]
            for index in range(N_SINGLE_ROW_CALLS)
        ]
        for row in rows[:8]:
            assert np.array_equal(
                forest.predict_proba_legacy(row), kernel.predict_proba(row)
            )
        single_legacy_s += _timeit(
            lambda f=forest, rows=rows: [f.predict_proba_legacy(r) for r in rows],
            repeats=3,
        )
        single_kernel_s += _timeit(
            lambda k=kernel, rows=rows: [k.predict_proba(r) for r in rows],
            repeats=3,
        )
    total_legacy += single_legacy_s
    total_kernel += single_kernel_s

    totals = {
        "stream_legacy_s": stream_legacy_s,
        "stream_kernel_s": stream_kernel_s,
        "single_row_legacy_s": single_legacy_s,
        "single_row_kernel_s": single_kernel_s,
        "workload_legacy_s": total_legacy,
        "workload_kernel_s": total_kernel,
        "kernel_speedup": total_legacy / total_kernel,
    }
    return per_forest, totals


def run_benchmark(corpus=None, pipeline=None) -> dict:
    """Time the compiled kernel against the legacy traversal (bit-checked)."""
    if corpus is None:
        corpus = build_deployment_corpus()
    if pipeline is None:
        pipeline = fit_deployment_pipeline(corpus)
    matrices = _capture_forest_inputs(pipeline, corpus)
    forests = _forests(pipeline)

    kernels = {}
    compile_s = 0.0
    kernel_nbytes = 0
    for name, forest in forests.items():
        start = time.perf_counter()
        kernel = ForestKernel.from_forest(forest)
        compile_s += time.perf_counter() - start
        kernel_nbytes += kernel.nbytes()
        kernels[name] = kernel
        _assert_randomized_equivalence(forest, kernel)

    per_forest, totals = _workload_times(forests, kernels, matrices)

    results = {
        "n_sessions": len(corpus),
        "numba_available": "numba" in available_backends(),
        "compile_s": compile_s,
        "kernel_state_bytes": int(kernel_nbytes),
        "per_forest": per_forest,
        "bit_identical": True,
        **totals,
    }
    if results["numba_available"]:
        numba_kernels = {
            name: ForestKernel.from_forest(forest, backend="numba")
            for name, forest in forests.items()
        }
        _, numba_totals = _workload_times(forests, numba_kernels, matrices)
        results["workload_numba_s"] = numba_totals["workload_kernel_s"]
        results["kernel_speedup_numba"] = (
            numba_totals["workload_legacy_s"] / numba_totals["workload_kernel_s"]
        )
    return results


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
