"""Micro-benchmarks for the columnar :class:`PacketStream` backend.

These track the substrate-level costs every pipeline stage pays (see
DESIGN.md §4): stream construction, direction filtering with vector views,
time-window slicing, and the batched 10k-session launch feature matrix.
``scripts/perf_smoke.py`` runs the same workloads standalone and writes a
``BENCH_*.json`` snapshot for cross-PR tracking.
"""

import numpy as np
import pytest

from repro.core.features import launch_feature_matrix
from repro.net.packet import Direction, Packet, PacketStream

N_PACKETS = 100_000


def _random_arrays(n=N_PACKETS, seed=7):
    rng = np.random.default_rng(seed)
    timestamps = np.sort(rng.uniform(0, 100, n))
    sizes = rng.integers(40, 1432, n).astype(float)
    directions = np.where(rng.random(n) < 0.8, 0, 1).astype(np.int8)
    return timestamps, sizes, directions


@pytest.fixture(scope="module")
def packet_objects():
    timestamps, sizes, directions = _random_arrays()
    return [
        Packet(
            timestamp=float(t),
            direction=Direction.DOWNSTREAM if d == 0 else Direction.UPSTREAM,
            payload_size=int(s),
        )
        for t, s, d in zip(timestamps, sizes, directions)
    ]


@pytest.fixture(scope="module")
def big_stream():
    timestamps, sizes, directions = _random_arrays()
    return PacketStream.from_arrays(timestamps, sizes, directions, assume_sorted=True)


@pytest.mark.benchmark(group="packet-stream")
def test_bench_construction_from_arrays(benchmark):
    timestamps, sizes, directions = _random_arrays()
    stream = benchmark(
        PacketStream.from_arrays, timestamps, sizes, directions, assume_sorted=True
    )
    assert len(stream) == N_PACKETS


@pytest.mark.benchmark(group="packet-stream")
def test_bench_construction_from_packets(benchmark, packet_objects):
    stream = benchmark(PacketStream, packet_objects)
    assert len(stream) == N_PACKETS


@pytest.mark.benchmark(group="packet-stream")
def test_bench_filter_direction_views(benchmark, big_stream):
    def workload():
        down = big_stream.filter_direction(Direction.DOWNSTREAM)
        return down.timestamps(), down.payload_sizes()

    times, sizes = benchmark(workload)
    assert times.size == sizes.size > 0


@pytest.mark.benchmark(group="packet-stream")
def test_bench_window_slice(benchmark, big_stream):
    def workload():
        window = big_stream.first_seconds(5.0)
        return window.timestamps()

    times = benchmark(workload)
    assert times.size > 0


@pytest.mark.benchmark(group="packet-stream")
def test_bench_feature_matrix_10k_sessions(benchmark):
    rng = np.random.default_rng(3)
    streams = []
    for _ in range(10_000):
        n = int(rng.integers(40, 80))
        timestamps = np.sort(rng.uniform(0, 5, n))
        sizes = np.where(
            rng.random(n) < 0.5, 1432.0, rng.uniform(40, 1400, n).round()
        )
        streams.append(
            PacketStream.from_arrays(
                timestamps, sizes, Direction.DOWNSTREAM, assume_sorted=True
            )
        )
    matrix = benchmark.pedantic(
        launch_feature_matrix, args=(streams,), kwargs={"window_seconds": 5.0},
        rounds=1, iterations=1,
    )
    assert matrix.shape == (10_000, 51)
