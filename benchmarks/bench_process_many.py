"""Benchmark: batched ``process_many`` vs the sequential per-session loop.

Builds a 50-session labeled corpus, fits the deployment-configuration
pipeline once, then times classifying the whole corpus

* sequentially — ``[pipeline.process(s) for s in corpus]``, the Fig. 6
  real-time path with per-slot incremental pattern inference; and
* batched — ``pipeline.process_many(corpus)``, the batch engine that runs
  every stage on whole matrices (grouped launch-attribute reduction, one
  forest pass per stage, chunked incremental pattern replay, vectorised QoE
  calibration).

The two report lists are asserted identical field-for-field before any
timing is reported.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_process_many.py

``scripts/perf_smoke.py`` imports :func:`run_benchmark` to record the
results in ``BENCH_packet_stream.json``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.pipeline import ContextClassificationPipeline  # noqa: E402
from repro.simulation.lab_dataset import generate_lab_dataset  # noqa: E402

N_SESSIONS = 50
GAMEPLAY_DURATION_S = 150.0
RATE_SCALE = 0.05
SEED = 13


def _assert_reports_identical(sequential, batched) -> None:
    assert len(sequential) == len(batched)
    for expected, got in zip(sequential, batched):
        assert got.platform == expected.platform
        assert got.title == expected.title
        assert got.stage_timeline == expected.stage_timeline
        assert got.stage_fractions == expected.stage_fractions
        assert got.pattern == expected.pattern
        assert got.objective_metrics == expected.objective_metrics
        assert got.objective_qoe is expected.objective_qoe
        assert got.effective_qoe is expected.effective_qoe


def run_benchmark(repeats: int = 3) -> dict:
    """Time sequential vs batched corpus classification (best of ``repeats``)."""
    corpus = generate_lab_dataset(
        sessions_per_title=4,
        gameplay_duration_s=GAMEPLAY_DURATION_S,
        rate_scale=RATE_SCALE,
        random_state=SEED,
    ).sessions[:N_SESSIONS]
    pipeline = ContextClassificationPipeline(random_state=3)
    fit_start = time.perf_counter()
    pipeline.fit(corpus)
    fit_seconds = time.perf_counter() - fit_start

    sequential_best = float("inf")
    batched_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sequential = [pipeline.process(session) for session in corpus]
        sequential_best = min(sequential_best, time.perf_counter() - start)
        start = time.perf_counter()
        batched = pipeline.process_many(corpus)
        batched_best = min(batched_best, time.perf_counter() - start)
        _assert_reports_identical(sequential, batched)

    return {
        "n_sessions": len(corpus),
        "gameplay_duration_s": GAMEPLAY_DURATION_S,
        "rate_scale": RATE_SCALE,
        "fit_s": fit_seconds,
        "sequential_process_s": sequential_best,
        "batched_process_many_s": batched_best,
        "process_many_speedup": sequential_best / batched_best,
    }


def main() -> None:
    results = run_benchmark()
    print(json.dumps(results, indent=2))
    speedup = results["process_many_speedup"]
    print(f"\nprocess_many is {speedup:.1f}x faster than the per-session loop "
          f"on {results['n_sessions']} sessions (reports identical)")


if __name__ == "__main__":
    main()
