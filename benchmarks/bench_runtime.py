"""Benchmark: streaming runtime throughput and sharded corpus classification.

Three workloads over the shared >=100-session deployment corpus
(``benchmarks/conftest.py``):

* **sharded corpus classification** — ``ShardedEngine.process_many``
  (forked workers) against single-process ``pipeline.process_many``;
  reports are asserted identical before any timing is recorded.  The
  speedup scales with usable cores (``n_cpus`` is recorded alongside —
  on a single-core box the fork backend only measures its own overhead).
* **live-feed throughput** — a :class:`SessionFeed` of concurrent sessions
  pushed through one :class:`StreamingEngine` (packets/s and sessions/s of
  the full online cascade including the offline-identical close reports).
* **sharded live feed** — the same feed through ``ShardedEngine.run_feed``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_runtime.py

``scripts/perf_smoke.py`` imports :func:`run_benchmark` to record the
results in ``BENCH_packet_stream.json``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
# the shared corpus builders live in benchmarks/conftest.py; make them
# importable when this file is loaded outside pytest (standalone run or
# scripts/perf_smoke.py)
BENCH_DIR = str(Path(__file__).resolve().parent)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import pytest  # noqa: E402

from conftest import build_deployment_corpus, fit_deployment_pipeline  # noqa: E402
from repro.runtime import (  # noqa: E402
    SessionFeed,
    SessionReport,
    ShardedEngine,
    StreamingEngine,
    default_worker_count,
)

#: Sessions replayed concurrently in the live-feed workloads.
N_FEED_SESSIONS = 24
FEED_BATCH_SECONDS = 1.0

#: Batch granularity of the memory benchmark feed (coarser than the live
#: throughput workload: the peak state footprint is batch-size independent).
MEMORY_BATCH_SECONDS = 5.0


def _usable_cpus() -> int:
    """Affinity-aware usable core count, recorded next to every result."""
    return default_worker_count()


def _assert_reports_identical(reference, got) -> None:
    assert len(reference) == len(got)
    for expected, actual in zip(reference, got):
        assert actual.platform == expected.platform
        assert actual.title == expected.title
        assert actual.stage_timeline == expected.stage_timeline
        assert actual.stage_fractions == expected.stage_fractions
        assert actual.pattern == expected.pattern
        assert actual.objective_metrics == expected.objective_metrics
        assert actual.objective_qoe is expected.objective_qoe
        assert actual.effective_qoe is expected.effective_qoe


def _drain_feed(engine_like, feed) -> dict:
    """Drive a feed to completion; return throughput counters."""
    runner = engine_like.run if isinstance(engine_like, StreamingEngine) else engine_like.run_feed
    start = time.perf_counter()
    n_events = 0
    reports = []
    for event in runner(feed):
        n_events += 1
        if isinstance(event, SessionReport):
            reports.append(event)
    elapsed = time.perf_counter() - start
    packets = sum(event.n_packets for event in reports)
    return {
        "elapsed_s": elapsed,
        "n_events": n_events,
        "n_sessions": len(reports),
        "n_packets": packets,
        "packets_per_s": packets / elapsed if elapsed > 0 else 0.0,
        "sessions_per_s": len(reports) / elapsed if elapsed > 0 else 0.0,
    }


def run_benchmark(corpus=None, pipeline=None, repeats: int = 3) -> dict:
    """Time the runtime workloads (best of ``repeats`` for the corpus path)."""
    if corpus is None:
        corpus = build_deployment_corpus()
    if pipeline is None:
        pipeline = fit_deployment_pipeline(corpus)
    n_workers = max(2, default_worker_count())
    sharded = ShardedEngine(pipeline, n_workers=n_workers, backend="fork")

    single_best = float("inf")
    sharded_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sequential = pipeline.process_many(corpus)
        single_best = min(single_best, time.perf_counter() - start)
        start = time.perf_counter()
        parallel = sharded.process_many(corpus)
        sharded_best = min(sharded_best, time.perf_counter() - start)
        _assert_reports_identical(sequential, parallel)

    feed_sessions = corpus[:N_FEED_SESSIONS]
    live_single = _drain_feed(
        StreamingEngine(pipeline),
        SessionFeed(feed_sessions, batch_seconds=FEED_BATCH_SECONDS),
    )
    live_sharded = _drain_feed(
        ShardedEngine(pipeline, n_workers=n_workers, backend="fork"),
        SessionFeed(feed_sessions, batch_seconds=FEED_BATCH_SECONDS),
    )

    return {
        "n_sessions": len(corpus),
        "n_cpus": _usable_cpus(),
        "n_workers": n_workers,
        "single_process_many_s": single_best,
        "sharded_process_many_s": sharded_best,
        "sharded_speedup": single_best / sharded_best,
        "live_feed": {
            "batch_seconds": FEED_BATCH_SECONDS,
            "single_worker": live_single,
            "sharded": live_sharded,
        },
    }


def run_memory_benchmark(corpus=None, pipeline=None) -> dict:
    """Peak per-session state bytes: bounded vs full-history mode.

    Replays the whole deployment corpus as one concurrent feed through a
    bounded and a full-history engine, sampling ``SessionState.state_nbytes``
    as the feed advances, and asserts the two modes' close reports are
    bit-identical before reporting any number.  ``memory_reduction_ratio``
    (full peak / bounded peak, per session) is the regression-gated headline.
    """
    if corpus is None:
        corpus = build_deployment_corpus()
    if pipeline is None:
        pipeline = fit_deployment_pipeline(corpus)

    def drive(mode):
        engine = StreamingEngine(pipeline, session_mode=mode)
        feed = SessionFeed(corpus, batch_seconds=MEMORY_BATCH_SECONDS)
        peak_session = 0
        peak_total = 0
        reports = {}
        for batch in feed:
            for event in engine.ingest(batch):
                if isinstance(event, SessionReport):
                    reports[event.flow] = event.report
            sizes = engine.state_nbytes().values()
            if sizes:
                peak_session = max(peak_session, max(sizes))
                peak_total = max(peak_total, sum(sizes))
        for event in engine.close_all():
            if isinstance(event, SessionReport):
                reports[event.flow] = event.report
        return peak_session, peak_total, reports

    bounded_session, bounded_total, bounded_reports = drive("bounded")
    full_session, full_total, full_reports = drive("full")
    assert bounded_reports.keys() == full_reports.keys()
    assert len(bounded_reports) == len(corpus)
    _assert_reports_identical(
        [full_reports[key] for key in sorted(full_reports, key=str)],
        [bounded_reports[key] for key in sorted(bounded_reports, key=str)],
    )
    return {
        "n_sessions": len(corpus),
        "n_cpus": _usable_cpus(),
        "batch_seconds": MEMORY_BATCH_SECONDS,
        "bounded_peak_session_bytes": bounded_session,
        "bounded_peak_total_bytes": bounded_total,
        "full_peak_session_bytes": full_session,
        "full_peak_total_bytes": full_total,
        "memory_reduction_ratio": (
            full_session / bounded_session if bounded_session else 0.0
        ),
        "reports_identical": True,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark wrappers (share the session-scoped corpus cache)
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="runtime")
def test_bench_sharded_process_many(benchmark, deployment_corpus, deployment_pipeline):
    sharded = ShardedEngine(deployment_pipeline, n_workers=2, backend="fork")
    reports = benchmark.pedantic(
        sharded.process_many, args=(deployment_corpus,), rounds=1, iterations=1
    )
    assert len(reports) == len(deployment_corpus)


@pytest.mark.benchmark(group="runtime")
def test_bench_streaming_feed(benchmark, deployment_corpus, deployment_pipeline):
    def drive():
        feed = SessionFeed(
            deployment_corpus[:N_FEED_SESSIONS], batch_seconds=FEED_BATCH_SECONDS
        )
        return _drain_feed(StreamingEngine(deployment_pipeline), feed)

    counters = benchmark.pedantic(drive, rounds=1, iterations=1)
    assert counters["n_sessions"] == N_FEED_SESSIONS


def main() -> None:
    corpus = build_deployment_corpus()
    pipeline = fit_deployment_pipeline(corpus)
    results = run_benchmark(corpus=corpus, pipeline=pipeline)
    results["memory"] = run_memory_benchmark(corpus=corpus, pipeline=pipeline)
    print(json.dumps(results, indent=2))
    memory = results["memory"]
    print(
        f"\nbounded session state: {memory['bounded_peak_session_bytes']:,} B peak "
        f"vs {memory['full_peak_session_bytes']:,} B full history "
        f"({memory['memory_reduction_ratio']:.1f}x smaller; reports identical)"
    )
    print(
        f"\nsharded process_many: {results['sharded_speedup']:.2f}x vs single process "
        f"on {results['n_sessions']} sessions "
        f"({results['n_workers']} workers, {results['n_cpus']} usable cores; "
        "reports identical)"
    )
    live = results["live_feed"]["single_worker"]
    print(
        f"live feed: {live['packets_per_s']:,.0f} packets/s, "
        f"{live['sessions_per_s']:.1f} sessions/s over the full online cascade"
    )


if __name__ == "__main__":
    main()
