"""Benchmark: streaming runtime throughput and sharded corpus classification.

Three workloads over the shared >=100-session deployment corpus
(``benchmarks/conftest.py``):

* **sharded corpus classification** — ``ShardedEngine.process_many``
  (forked workers) against single-process ``pipeline.process_many``;
  reports are asserted identical before any timing is recorded.  The
  speedup scales with usable cores (``n_cpus`` is recorded alongside —
  on a single-core box the fork backend only measures its own overhead).
* **live-feed throughput** — a :class:`SessionFeed` of concurrent sessions
  pushed through one :class:`StreamingEngine` (packets/s and sessions/s of
  the full online cascade including the offline-identical close reports).
* **sharded live feed** — the same feed through ``ShardedEngine.run_feed``.

Plus two memory workloads: bounded-vs-full peak session state
(:func:`run_memory_benchmark`) and the approximate QoE tier with its
O(intervals) scaling gate (:func:`run_memory_approx_benchmark`); the
worker-kill recovery protocol (:func:`run_recovery_benchmark`); the
shared-memory data plane vs the legacy pickle-over-pipe plane
(:func:`run_sharded_shm_benchmark`, reports asserted identical to serial
on both planes first); and the fleet analytics tier's offline fold
throughput and per-rollup-key state size
(:func:`run_fleet_rollup_benchmark`, digests asserted identical to the
live streaming path first).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_runtime.py

``scripts/perf_smoke.py`` imports :func:`run_benchmark` to record the
results in ``BENCH_packet_stream.json``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
# the shared corpus builders live in benchmarks/conftest.py; make them
# importable when this file is loaded outside pytest (standalone run or
# scripts/perf_smoke.py)
BENCH_DIR = str(Path(__file__).resolve().parent)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import pytest  # noqa: E402

from conftest import build_deployment_corpus, fit_deployment_pipeline  # noqa: E402
from repro.runtime import (  # noqa: E402
    FaultPlan,
    KillWorker,
    SessionFeed,
    SessionReport,
    ShardedEngine,
    StreamingEngine,
    WorkerRestarted,
    default_worker_count,
)

#: Sessions replayed concurrently in the live-feed workloads.
N_FEED_SESSIONS = 24
FEED_BATCH_SECONDS = 1.0

#: Batch granularity of the memory benchmark feed (coarser than the live
#: throughput workload: the peak state footprint is batch-size independent).
MEMORY_BATCH_SECONDS = 5.0


def _usable_cpus() -> int:
    """Affinity-aware usable core count, recorded next to every result."""
    return default_worker_count()


def _assert_reports_identical(reference, got) -> None:
    assert len(reference) == len(got)
    for expected, actual in zip(reference, got):
        assert actual.platform == expected.platform
        assert actual.title == expected.title
        assert actual.stage_timeline == expected.stage_timeline
        assert actual.stage_fractions == expected.stage_fractions
        assert actual.pattern == expected.pattern
        assert actual.objective_metrics == expected.objective_metrics
        assert actual.objective_qoe is expected.objective_qoe
        assert actual.effective_qoe is expected.effective_qoe
        assert actual.qoe_approximate == expected.qoe_approximate


def _drain_feed(engine_like, feed) -> dict:
    """Drive a feed to completion; return throughput counters."""
    runner = engine_like.run if isinstance(engine_like, StreamingEngine) else engine_like.run_feed
    start = time.perf_counter()
    n_events = 0
    reports = []
    for event in runner(feed):
        n_events += 1
        if isinstance(event, SessionReport):
            reports.append(event)
    elapsed = time.perf_counter() - start
    packets = sum(event.n_packets for event in reports)
    return {
        "elapsed_s": elapsed,
        "n_events": n_events,
        "n_sessions": len(reports),
        "n_packets": packets,
        "packets_per_s": packets / elapsed if elapsed > 0 else 0.0,
        "sessions_per_s": len(reports) / elapsed if elapsed > 0 else 0.0,
    }


def run_benchmark(corpus=None, pipeline=None, repeats: int = 3) -> dict:
    """Time the runtime workloads (best of ``repeats`` for the corpus path)."""
    if corpus is None:
        corpus = build_deployment_corpus()
    if pipeline is None:
        pipeline = fit_deployment_pipeline(corpus)
    n_workers = max(2, default_worker_count())
    sharded = ShardedEngine(pipeline, n_workers=n_workers, backend="fork")

    single_best = float("inf")
    sharded_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sequential = pipeline.process_many(corpus)
        single_best = min(single_best, time.perf_counter() - start)
        start = time.perf_counter()
        parallel = sharded.process_many(corpus)
        sharded_best = min(sharded_best, time.perf_counter() - start)
        _assert_reports_identical(sequential, parallel)

    feed_sessions = corpus[:N_FEED_SESSIONS]
    live_single = _drain_feed(
        StreamingEngine(pipeline),
        SessionFeed(feed_sessions, batch_seconds=FEED_BATCH_SECONDS),
    )
    live_sharded = _drain_feed(
        ShardedEngine(pipeline, n_workers=n_workers, backend="fork"),
        SessionFeed(feed_sessions, batch_seconds=FEED_BATCH_SECONDS),
    )

    return {
        "n_sessions": len(corpus),
        "n_cpus": _usable_cpus(),
        "n_workers": n_workers,
        "single_process_many_s": single_best,
        "sharded_process_many_s": sharded_best,
        "sharded_speedup": single_best / sharded_best,
        "live_feed": {
            "batch_seconds": FEED_BATCH_SECONDS,
            "single_worker": live_single,
            "sharded": live_sharded,
        },
    }


def _drive_memory(pipeline, sessions, mode, batch_seconds=MEMORY_BATCH_SECONDS):
    """Replay ``sessions`` as one concurrent feed; sample peak state bytes."""
    engine = StreamingEngine(pipeline, session_mode=mode)
    feed = SessionFeed(sessions, batch_seconds=batch_seconds)
    # register platform / rate-scale knowledge exactly like engine.run():
    # close reports then line up with offline process_many on the corpus
    for key, context in feed.flow_contexts.items():
        engine.set_flow_context(key, context)
    peak_session = 0
    peak_total = 0
    reports = {}
    for batch in feed:
        for event in engine.ingest(batch):
            if isinstance(event, SessionReport):
                reports[event.flow] = event.report
        sizes = engine.state_nbytes().values()
        if sizes:
            peak_session = max(peak_session, max(sizes))
            peak_total = max(peak_total, sum(sizes))
    for event in engine.close_all():
        if isinstance(event, SessionReport):
            reports[event.flow] = event.report
    return peak_session, peak_total, reports


def run_memory_benchmark(corpus=None, pipeline=None) -> dict:
    """Peak per-session state bytes: bounded vs full-history mode.

    Replays the whole deployment corpus as one concurrent feed through a
    bounded and a full-history engine, sampling ``SessionState.state_nbytes``
    as the feed advances, and asserts the two modes' close reports are
    bit-identical before reporting any number.  ``memory_reduction_ratio``
    (full peak / bounded peak, per session) is the regression-gated headline.
    """
    if corpus is None:
        corpus = build_deployment_corpus()
    if pipeline is None:
        pipeline = fit_deployment_pipeline(corpus)

    def drive(mode):
        return _drive_memory(pipeline, corpus, mode)

    bounded_session, bounded_total, bounded_reports = drive("bounded")
    full_session, full_total, full_reports = drive("full")
    assert bounded_reports.keys() == full_reports.keys()
    assert len(bounded_reports) == len(corpus)
    _assert_reports_identical(
        [full_reports[key] for key in sorted(full_reports, key=str)],
        [bounded_reports[key] for key in sorted(bounded_reports, key=str)],
    )
    return {
        "n_sessions": len(corpus),
        "n_cpus": _usable_cpus(),
        "batch_seconds": MEMORY_BATCH_SECONDS,
        "bounded_peak_session_bytes": bounded_session,
        "bounded_peak_total_bytes": bounded_total,
        "full_peak_session_bytes": full_session,
        "full_peak_total_bytes": full_total,
        "memory_reduction_ratio": (
            full_session / bounded_session if bounded_session else 0.0
        ),
        "reports_identical": True,
    }


#: Packet-rate fidelities of the O(intervals) scaling probe (4x apart at a
#: fixed duration, so packets-per-session grows 4x with intervals constant).
APPROX_SCALING_RATES = (0.05, 0.2)


def _approx_scaling_probe(pipeline) -> dict:
    """Peak state bytes of one session at 1x and 4x packet rates.

    Generates the same 150 s session at two fidelities (packets-per-session
    4x apart, QoE-interval count identical) and replays each through a
    bounded and an approx engine, sampling both the whole-session state and
    the QoE reducer's share.  The growth ratios are the O(intervals) proof:
    approx QoE state must stay flat while bounded grows with the rate.
    """
    from repro.simulation.session import SessionConfig, SessionGenerator

    peaks = {}
    n_packets = {}
    for rate in APPROX_SCALING_RATES:
        session = SessionGenerator(random_state=7).generate(
            "Fortnite", SessionConfig(gameplay_duration_s=150.0, rate_scale=rate)
        )
        n_packets[rate] = len(session.packets.columns())
        for mode in ("bounded", "approx"):
            engine = StreamingEngine(pipeline, session_mode=mode)
            peak_state = peak_qoe = 0
            for batch in SessionFeed([session], batch_seconds=MEMORY_BATCH_SECONDS):
                engine.ingest(batch)
                for state in engine._states.values():
                    peak_state = max(peak_state, state.state_nbytes())
                    peak_qoe = max(peak_qoe, state.cascade.qoe.nbytes())
            engine.close_all()
            peaks[(mode, rate)] = (peak_state, peak_qoe)
    low, high = APPROX_SCALING_RATES
    return {
        "packets_low": n_packets[low],
        "packets_high": n_packets[high],
        "bounded_state_low_bytes": peaks[("bounded", low)][0],
        "bounded_state_high_bytes": peaks[("bounded", high)][0],
        "approx_state_low_bytes": peaks[("approx", low)][0],
        "approx_state_high_bytes": peaks[("approx", high)][0],
        "approx_qoe_state_low_bytes": peaks[("approx", low)][1],
        "approx_qoe_state_high_bytes": peaks[("approx", high)][1],
        # growth factors over the 4x packet step (no gated suffix: the smoke
        # gate's generic rules don't fit "must stay near 1.0" semantics —
        # the hard asserts in run_memory_approx_benchmark are the gate)
        "bounded_state_growth": (
            peaks[("bounded", high)][0] / max(1, peaks[("bounded", low)][0])
        ),
        "approx_state_growth": (
            peaks[("approx", high)][0] / max(1, peaks[("approx", low)][0])
        ),
        "approx_qoe_state_growth": (
            peaks[("approx", high)][1] / max(1, peaks[("approx", low)][1])
        ),
    }


def run_memory_approx_benchmark(
    corpus=None, pipeline=None, bounded_peak_session_bytes=None
) -> dict:
    """The approximate QoE tier: peak bytes, ratio vs bounded, O(intervals) gate.

    Three guarantees are asserted before any number is reported:

    * streaming ``session_mode="approx"`` close reports on the deployment
      corpus are **identical** to offline ``process_many(qoe_mode="approx")``
      and carry ``qoe_approximate=True``;
    * the QoE reducer's per-session state is flat (< 1.1x) under a 4x
      packets-per-session step at fixed duration — the O(intervals) claim;
    * whole-session approx state (which still contains the launch-window
      buffer and slot counters, both shared with bounded mode) grows
      strictly slower than bounded state under the same step.

    ``bounded_vs_approx_ratio`` (bounded peak / approx peak per session on
    the corpus) is the regression-gated headline next to the exact tiers'
    ``memory_reduction_ratio``.
    """
    if corpus is None:
        corpus = build_deployment_corpus()
    if pipeline is None:
        pipeline = fit_deployment_pipeline(corpus)
    if bounded_peak_session_bytes is None:
        bounded_peak_session_bytes, _, _ = _drive_memory(pipeline, corpus, "bounded")

    approx_session, approx_total, approx_reports = _drive_memory(
        pipeline, corpus, "approx"
    )
    assert len(approx_reports) == len(corpus)
    offline = pipeline.process_many(corpus, qoe_mode="approx")
    assert all(report.qoe_approximate for report in offline)
    by_port = {key.client_port: report for key, report in approx_reports.items()}
    _assert_reports_identical(
        offline, [by_port[52000 + index] for index in range(len(corpus))]
    )

    scaling = _approx_scaling_probe(pipeline)
    assert scaling["approx_qoe_state_growth"] < 1.1, scaling
    assert (
        scaling["approx_state_growth"] < scaling["bounded_state_growth"] / 1.5
    ), scaling

    return {
        "n_sessions": len(corpus),
        "n_cpus": _usable_cpus(),
        "batch_seconds": MEMORY_BATCH_SECONDS,
        "approx_peak_session_bytes": approx_session,
        "approx_peak_total_bytes": approx_total,
        "bounded_vs_approx_ratio": (
            bounded_peak_session_bytes / approx_session if approx_session else 0.0
        ),
        "reports_identical_to_offline_approx": True,
        "scaling": scaling,
    }


#: Batch granularity and snapshot cadence of the recovery benchmark: coarse
#: batches keep the tick count low (~31 over the 150 s corpus) while the
#: cadence bounds the replay ring at RECOVERY_SNAPSHOT_EVERY un-acked ticks.
RECOVERY_SNAPSHOT_EVERY = 4


def run_recovery_benchmark(corpus=None, pipeline=None) -> dict:
    """Worker-kill recovery: latency, replay-ring footprint, fidelity.

    Replays ``N_FEED_SESSIONS`` concurrent sessions through the fork
    backend twice — once clean, once with a SIGKILL of shard 0 mid-feed —
    and asserts both runs' close reports are identical to the serial
    backend before reporting any number.  ``recovery_latency_s`` (respawn
    + checkpoint restore + ring replay, straight from the supervisor's
    monotonic clock) and ``replay_ring_peak_bytes`` (the bounded un-acked
    tick buffer) are the regression-gated headlines; the snapshot size and
    the faulted-vs-clean elapsed overhead give them context.
    """
    if corpus is None:
        corpus = build_deployment_corpus()
    if pipeline is None:
        pipeline = fit_deployment_pipeline(corpus)
    sessions = corpus[:N_FEED_SESSIONS]

    def feed():
        return SessionFeed(sessions, batch_seconds=MEMORY_BATCH_SECONDS)

    def engine(backend):
        return ShardedEngine(
            pipeline,
            n_workers=2,
            backend=backend,
            snapshot_every_ticks=RECOVERY_SNAPSHOT_EVERY,
        )

    def drive(sharded, fault_plan=None):
        start = time.perf_counter()
        events = list(sharded.run_feed(feed(), fault_plan=fault_plan))
        elapsed = time.perf_counter() - start
        reports = {
            event.flow: event.report
            for event in events
            if isinstance(event, SessionReport)
        }
        return elapsed, reports, events

    n_ticks = sum(1 for _ in feed())
    _, reference, _ = drive(engine("serial"))
    assert len(reference) == len(sessions)

    # best-of-2 for the timed runs: a fork-backend feed on a loaded box can
    # catch a copy-on-write stall that dwarfs the protocol being measured
    plan = FaultPlan(actions=(KillWorker(shard=0, tick=n_ticks // 2),))
    clean_s = faulted_s = float("inf")
    for _ in range(2):
        elapsed, clean_reports, _ = drive(engine("fork"))
        clean_s = min(clean_s, elapsed)
        faulted_engine = engine("fork")
        elapsed, faulted_reports, faulted_events = drive(faulted_engine, plan)
        faulted_s = min(faulted_s, elapsed)

    def check(reports):
        assert reports.keys() == reference.keys()
        ordered = sorted(reference, key=str)
        _assert_reports_identical(
            [reference[key] for key in ordered],
            [reports[key] for key in ordered],
        )

    check(clean_reports)
    check(faulted_reports)
    restarts = [e for e in faulted_events if isinstance(e, WorkerRestarted)]
    assert len(restarts) == 1 and restarts[0].reason == "dead"
    stats = faulted_engine.last_feed_stats
    assert stats["n_restarts"] == 1
    return {
        "n_sessions": len(sessions),
        "n_cpus": _usable_cpus(),
        "n_ticks": n_ticks,
        "snapshot_every_ticks": RECOVERY_SNAPSHOT_EVERY,
        "clean_feed_s": clean_s,
        "faulted_feed_s": faulted_s,
        "recovery_latency_s": stats["recovery_latencies_s"][0],
        "replayed_ticks": stats["replayed_ticks_total"],
        "replay_ring_peak_bytes": stats["ring_peak_bytes"],
        "snapshot_nbytes": stats["last_snapshot_nbytes"],
        "reports_identical": True,
    }


def run_sharded_shm_benchmark(corpus=None, pipeline=None) -> dict:
    """Shared-memory data plane vs pickle-over-pipe: throughput and volume.

    Replays ``N_FEED_SESSIONS`` concurrent sessions through the fork
    backend twice — once on the shared-memory column rings
    (``data_plane="shm"``, DESIGN.md §12) and once on the legacy
    pickle-over-pipe plane — asserting both runs' close reports are
    identical to the serial backend before reporting any number.  The
    regression-gated headlines are ``packets_per_s`` /
    ``packets_per_s_per_core`` (shm-plane live-feed throughput; per-core
    divides by the cores the parent and workers can actually occupy),
    ``shm_ring_peak_bytes`` (un-pruned slot footprint — bounded by the §8
    checkpoint cadence) and ``payload_reduction_ratio`` (pipe-plane pickle
    volume over shm-plane control-message volume: the "pipes carry control
    messages only" claim as a number).  ``shm_fallback_ticks`` must be 0 —
    a correctly sized ring never degrades to inline pickles.
    """
    if corpus is None:
        corpus = build_deployment_corpus()
    if pipeline is None:
        pipeline = fit_deployment_pipeline(corpus)
    sessions = corpus[:N_FEED_SESSIONS]
    n_workers = 2

    def feed():
        return SessionFeed(sessions, batch_seconds=FEED_BATCH_SECONDS)

    def engine(backend, data_plane="auto"):
        return ShardedEngine(
            pipeline, n_workers=n_workers, backend=backend, data_plane=data_plane
        )

    def drive(sharded):
        start = time.perf_counter()
        reports = {}
        n_packets = 0
        for event in sharded.run_feed(feed()):
            if isinstance(event, SessionReport):
                reports[event.flow] = event.report
                n_packets += event.n_packets
        return time.perf_counter() - start, reports, n_packets

    n_ticks = sum(1 for _ in feed())
    _, reference, n_packets = drive(engine("serial"))
    assert len(reference) == len(sessions)

    def check(reports):
        assert reports.keys() == reference.keys()
        ordered = sorted(reference, key=str)
        _assert_reports_identical(
            [reference[key] for key in ordered],
            [reports[key] for key in ordered],
        )

    # best-of-2 per plane: fork feeds on a loaded box can catch a stall that
    # dwarfs the data plane being measured
    plane_stats = {}
    plane_best = {}
    for plane in ("shm", "pipe"):
        best = float("inf")
        for _ in range(2):
            sharded = engine("fork", data_plane=plane)
            elapsed, reports, _packets = drive(sharded)
            check(reports)
            best = min(best, elapsed)
        plane_best[plane] = best
        plane_stats[plane] = sharded.last_feed_stats

    shm_stats, pipe_stats = plane_stats["shm"], plane_stats["pipe"]
    assert shm_stats["data_plane"] == "shm"
    assert shm_stats["shm_fallback_ticks"] == 0
    assert shm_stats["shm_ring_peak_bytes"] > 0
    assert pipe_stats["shm_ring_peak_bytes"] == 0

    busy_cores = min(n_workers + 1, _usable_cpus())
    packets_per_s = n_packets / plane_best["shm"]
    return {
        "n_sessions": len(sessions),
        "n_cpus": _usable_cpus(),
        "n_workers": n_workers,
        "n_ticks": n_ticks,
        "n_packets": n_packets,
        "shm_feed_s": plane_best["shm"],
        "pipe_feed_s": plane_best["pipe"],
        "packets_per_s": packets_per_s,
        "packets_per_s_per_core": packets_per_s / busy_cores,
        "shm_ring_peak_bytes": shm_stats["shm_ring_peak_bytes"],
        "shm_fallback_ticks": shm_stats["shm_fallback_ticks"],
        "control_payload_total_bytes": shm_stats["pipe_payload_bytes_total"],
        "pipe_payload_total_bytes": pipe_stats["pipe_payload_bytes_total"],
        "payload_reduction_ratio": (
            pipe_stats["pipe_payload_bytes_total"]
            / shm_stats["pipe_payload_bytes_total"]
        ),
        "reports_identical": True,
    }


#: Serving regions cycled across the fleet-rollup benchmark sessions (three
#: regions over N_FEED_SESSIONS sessions -> a handful of rollup keys, like a
#: single probe site would see).
FLEET_REGIONS = ("eu-central", "eu-west", "eu-north")


def run_fleet_rollup_benchmark(corpus=None, pipeline=None, repeats: int = 3) -> dict:
    """Fleet analytics tier: offline fold throughput and per-key state size.

    Folds ``N_FEED_SESSIONS`` deployment sessions into per-(region, title,
    qoe-mode) rollups via :func:`repro.analytics.fold_corpus` (reports
    precomputed once, so the timing isolates the interval rebuild + sketch
    fold) and replays the same sessions through a live
    ``StreamingEngine(analytics=True)`` feed, asserting the two aggregators'
    digests are bit-identical before reporting any number.
    ``fold_intervals_per_s`` (QoE windows folded per second, best of
    ``repeats``) and ``rollup_key_bytes`` (retained aggregator state per
    rollup key — the O(keys) memory claim) are the regression-gated
    headlines.
    """
    from repro.analytics import fold_corpus

    if corpus is None:
        corpus = build_deployment_corpus()
    if pipeline is None:
        pipeline = fit_deployment_pipeline(corpus)
    sessions = corpus[:N_FEED_SESSIONS]
    regions = [FLEET_REGIONS[index % len(FLEET_REGIONS)] for index in range(len(sessions))]

    reports = pipeline.process_many(sessions, qoe_mode="approx")
    fold_best = float("inf")
    aggregator = None
    for _ in range(repeats):
        start = time.perf_counter()
        aggregator = fold_corpus(
            pipeline, sessions, reports=reports, regions=regions, qoe_mode="approx"
        )
        fold_best = min(fold_best, time.perf_counter() - start)

    engine = StreamingEngine(pipeline, session_mode="approx", analytics=True)
    feed = SessionFeed(sessions, batch_seconds=FEED_BATCH_SECONDS, regions=regions)
    for _ in engine.run(feed):
        pass
    assert engine.analytics.digest() == aggregator.digest()

    n_keys = len(aggregator.keys())
    return {
        "n_sessions": len(sessions),
        "n_cpus": _usable_cpus(),
        "n_rollup_keys": n_keys,
        "n_intervals": aggregator.n_intervals,
        "fold_s": fold_best,
        "fold_intervals_per_s": aggregator.n_intervals / fold_best,
        "rollup_total_bytes": aggregator.nbytes(),
        "rollup_key_bytes": aggregator.nbytes() / n_keys,
        "streaming_digest_identical": True,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark wrappers (share the session-scoped corpus cache)
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="runtime")
def test_bench_sharded_process_many(benchmark, deployment_corpus, deployment_pipeline):
    sharded = ShardedEngine(deployment_pipeline, n_workers=2, backend="fork")
    reports = benchmark.pedantic(
        sharded.process_many, args=(deployment_corpus,), rounds=1, iterations=1
    )
    assert len(reports) == len(deployment_corpus)


@pytest.mark.benchmark(group="runtime")
def test_bench_streaming_feed(benchmark, deployment_corpus, deployment_pipeline):
    def drive():
        feed = SessionFeed(
            deployment_corpus[:N_FEED_SESSIONS], batch_seconds=FEED_BATCH_SECONDS
        )
        return _drain_feed(StreamingEngine(deployment_pipeline), feed)

    counters = benchmark.pedantic(drive, rounds=1, iterations=1)
    assert counters["n_sessions"] == N_FEED_SESSIONS


def main() -> None:
    corpus = build_deployment_corpus()
    pipeline = fit_deployment_pipeline(corpus)
    results = run_benchmark(corpus=corpus, pipeline=pipeline)
    results["memory"] = run_memory_benchmark(corpus=corpus, pipeline=pipeline)
    results["memory_approx"] = run_memory_approx_benchmark(
        corpus=corpus,
        pipeline=pipeline,
        bounded_peak_session_bytes=results["memory"]["bounded_peak_session_bytes"],
    )
    results["recovery"] = run_recovery_benchmark(corpus=corpus, pipeline=pipeline)
    results["sharded_shm"] = run_sharded_shm_benchmark(corpus=corpus, pipeline=pipeline)
    results["fleet_rollup"] = run_fleet_rollup_benchmark(corpus=corpus, pipeline=pipeline)
    print(json.dumps(results, indent=2))
    memory = results["memory"]
    print(
        f"\nbounded session state: {memory['bounded_peak_session_bytes']:,} B peak "
        f"vs {memory['full_peak_session_bytes']:,} B full history "
        f"({memory['memory_reduction_ratio']:.1f}x smaller; reports identical)"
    )
    approx = results["memory_approx"]
    print(
        f"approx session state: {approx['approx_peak_session_bytes']:,} B peak "
        f"({approx['bounded_vs_approx_ratio']:.1f}x smaller than bounded; "
        f"QoE state growth under 4x packets: "
        f"{approx['scaling']['approx_qoe_state_growth']:.2f}x vs bounded "
        f"{approx['scaling']['bounded_state_growth']:.2f}x)"
    )
    print(
        f"\nsharded process_many: {results['sharded_speedup']:.2f}x vs single process "
        f"on {results['n_sessions']} sessions "
        f"({results['n_workers']} workers, {results['n_cpus']} usable cores; "
        "reports identical)"
    )
    live = results["live_feed"]["single_worker"]
    print(
        f"live feed: {live['packets_per_s']:,.0f} packets/s, "
        f"{live['sessions_per_s']:.1f} sessions/s over the full online cascade"
    )
    recovery = results["recovery"]
    print(
        f"worker-kill recovery: {recovery['recovery_latency_s'] * 1e3:.0f} ms "
        f"(restore + {recovery['replayed_ticks']} replayed ticks), replay ring "
        f"peak {recovery['replay_ring_peak_bytes']:,} B, snapshot "
        f"{recovery['snapshot_nbytes']:,} B; reports identical to serial"
    )
    shm = results["sharded_shm"]
    print(
        f"shm data plane: {shm['packets_per_s']:,.0f} packets/s "
        f"({shm['packets_per_s_per_core']:,.0f}/core), pipe payload "
        f"{shm['pipe_payload_total_bytes']:,} B -> {shm['control_payload_total_bytes']:,} B "
        f"control messages ({shm['payload_reduction_ratio']:.0f}x less), shm ring "
        f"peak {shm['shm_ring_peak_bytes']:,} B, {shm['shm_fallback_ticks']} fallback "
        "ticks; reports identical on both planes"
    )
    fleet = results["fleet_rollup"]
    print(
        f"fleet rollups: {fleet['fold_intervals_per_s']:,.0f} QoE windows/s "
        f"offline fold, {fleet['rollup_key_bytes']:,.0f} B per rollup key "
        f"({fleet['n_rollup_keys']} keys over {fleet['n_sessions']} sessions; "
        "streaming digest identical)"
    )


if __name__ == "__main__":
    main()
