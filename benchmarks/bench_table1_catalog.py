"""Benchmark regenerating Table 1: the 13-title catalog with genre, pattern and popularity.

Wraps :func:`repro.experiments.run_table1_catalog`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_table1_catalog


@pytest.mark.benchmark(group="table-1")
def test_bench_table1_catalog(benchmark):
    result = benchmark.pedantic(run_table1_catalog, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
