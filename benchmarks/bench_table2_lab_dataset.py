"""Benchmark regenerating Table 2: lab dataset composition across device configurations.

Wraps :func:`repro.experiments.run_table2_lab_dataset`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_table2_lab_dataset


@pytest.mark.benchmark(group="table-2")
def test_bench_table2_lab_dataset(benchmark):
    result = benchmark.pedantic(run_table2_lab_dataset, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
