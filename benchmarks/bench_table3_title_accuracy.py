"""Benchmark regenerating Table 3: per-title accuracy: packet-group vs flow-volumetric attributes.

Wraps :func:`repro.experiments.run_table3_title_accuracy`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_table3_title_accuracy


@pytest.mark.benchmark(group="table-3")
def test_bench_table3_title_accuracy(benchmark):
    result = benchmark.pedantic(run_table3_title_accuracy, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
