"""Benchmark regenerating Table 4: stage and pattern accuracy per gameplay pattern.

Wraps :func:`repro.experiments.run_table4_stage_pattern_accuracy`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_table4_stage_pattern_accuracy


@pytest.mark.benchmark(group="table-4")
def test_bench_table4_stage_pattern(benchmark):
    result = benchmark.pedantic(run_table4_stage_pattern_accuracy, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
