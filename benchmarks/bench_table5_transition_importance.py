"""Benchmark regenerating Table 5: permutation importance of the nine transition attributes.

Wraps :func:`repro.experiments.run_table5_transition_importance`.  The benchmark runs the quick
workload once (the experiment functions are deterministic per seed); pass
``quick=False`` manually for a paper-scale run.
"""

import pytest

from repro.experiments import run_table5_transition_importance


@pytest.mark.benchmark(group="table-5")
def test_bench_table5_transition_importance(benchmark):
    result = benchmark.pedantic(run_table5_transition_importance, kwargs={"quick": True}, rounds=1, iterations=1)
    assert result  # the runner must produce a non-empty result structure
