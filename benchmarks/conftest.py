"""Benchmark suite configuration.

The benchmarks wrap the experiment runners one-to-one (see DESIGN.md §4).
They share the cached corpora from ``repro.experiments.common`` so the whole
suite builds each synthetic corpus only once.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
