"""Benchmark suite configuration.

The benchmarks wrap the experiment runners one-to-one (see DESIGN.md §4).
They share the cached corpora from ``repro.experiments.common`` so the whole
suite builds each synthetic corpus only once, plus the session-scoped
deployment corpus/pipeline fixtures below shared by the runtime benchmarks
(``bench_runtime.py``).
"""

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Deployment-corpus shape shared by bench_runtime and scripts/perf_smoke.py.
DEPLOYMENT_CORPUS = {
    "sessions_per_title": 8,  # 13 titles -> 104 sessions (>= 100, ISSUE 3)
    "gameplay_duration_s": 150.0,
    "rate_scale": 0.05,
    "random_state": 13,
}


def build_deployment_corpus():
    """The >=100-session labeled corpus used by the sharding benchmarks.

    Served from the process-wide ``repro.experiments.common`` corpus cache
    (keyed on the full generation signature), so one pytest invocation that
    touches both the benchmarks and the runtime tests simulates the corpus
    once instead of once per conftest.
    """
    from repro.experiments.common import deployment_corpus

    return list(deployment_corpus(
        sessions_per_title=DEPLOYMENT_CORPUS["sessions_per_title"],
        gameplay_duration_s=DEPLOYMENT_CORPUS["gameplay_duration_s"],
        rate_scale=DEPLOYMENT_CORPUS["rate_scale"],
        seed=DEPLOYMENT_CORPUS["random_state"],
    ))


def fit_deployment_pipeline(corpus):
    """Fit the deployment-configuration pipeline on the shared corpus."""
    from repro.core.pipeline import ContextClassificationPipeline

    pipeline = ContextClassificationPipeline(random_state=3)
    pipeline.fit(corpus)
    return pipeline


@pytest.fixture(scope="session")
def deployment_corpus():
    return build_deployment_corpus()


@pytest.fixture(scope="session")
def deployment_pipeline(deployment_corpus):
    return fit_deployment_pipeline(deployment_corpus)
