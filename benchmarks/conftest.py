"""Benchmark suite configuration.

The benchmarks wrap the experiment runners one-to-one (see DESIGN.md §4).
They share the cached corpora from ``repro.experiments.common`` so the whole
suite builds each synthetic corpus only once, plus the session-scoped
deployment corpus/pipeline fixtures below shared by the runtime benchmarks
(``bench_runtime.py``).
"""

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Deployment-corpus shape shared by bench_runtime and scripts/perf_smoke.py.
DEPLOYMENT_CORPUS = {
    "sessions_per_title": 8,  # 13 titles -> 104 sessions (>= 100, ISSUE 3)
    "gameplay_duration_s": 150.0,
    "rate_scale": 0.05,
    "random_state": 13,
}


def build_deployment_corpus():
    """The >=100-session labeled corpus used by the sharding benchmarks."""
    from repro.simulation.lab_dataset import generate_lab_dataset

    return generate_lab_dataset(**DEPLOYMENT_CORPUS).sessions


def fit_deployment_pipeline(corpus):
    """Fit the deployment-configuration pipeline on the shared corpus."""
    from repro.core.pipeline import ContextClassificationPipeline

    pipeline = ContextClassificationPipeline(random_state=3)
    pipeline.fit(corpus)
    return pipeline


@pytest.fixture(scope="session")
def deployment_corpus():
    return build_deployment_corpus()


@pytest.fixture(scope="session")
def deployment_pipeline(deployment_corpus):
    return fit_deployment_pipeline(deployment_corpus)
