"""ISP deployment example: effective-QoE reporting over a month of sessions.

Reproduces the §5 workflow of the paper at a small scale: sample a pool of
ISP session records, label their objective QoE with the observability
module's fixed thresholds, calibrate the labels with the classified gameplay
context (title / pattern / stage mix), and print the per-title correction —
the data behind Fig. 13 — plus the bandwidth and stage-duration summaries of
Fig. 11 and Fig. 12.

Run with::

    python examples/isp_deployment_report.py
"""

from __future__ import annotations

from repro.analysis.bandwidth import bandwidth_by_title
from repro.analysis.qoe_report import mislabel_correction_summary, qoe_levels_by_title
from repro.analysis.stage_durations import stage_minutes_by_title
from repro.simulation.isp import ISPDeploymentSimulator


def main() -> None:
    print("sampling 20,000 ISP session records (one month of deployment)...")
    simulator = ISPDeploymentSimulator(random_state=42)
    records = simulator.generate_records(20_000)

    print("\n=== Fig. 11a: average minutes per session and stage ===")
    stage_summary = stage_minutes_by_title(records)
    header = f"{'title':<20}{'total':>8}{'active':>8}{'passive':>9}{'idle':>8}"
    print(header)
    print("-" * len(header))
    for title, row in sorted(
        stage_summary.items(), key=lambda item: item[1]["total"], reverse=True
    ):
        print(f"{title:<20}{row['total']:>8.1f}{row['active']:>8.1f}"
              f"{row['passive']:>9.1f}{row['idle']:>8.1f}")

    print("\n=== Fig. 12a: session-average downstream throughput (Mbps) ===")
    bandwidth = bandwidth_by_title(records)
    header = f"{'title':<20}{'p10':>7}{'median':>9}{'p90':>7}{'max':>7}"
    print(header)
    print("-" * len(header))
    for title, row in sorted(
        bandwidth.items(), key=lambda item: item[1]["median"], reverse=True
    ):
        print(f"{title:<20}{row['p10']:>7.1f}{row['median']:>9.1f}"
              f"{row['p90']:>7.1f}{row['max']:>7.1f}")

    print("\n=== Fig. 13a: objective vs effective QoE (fraction of sessions good) ===")
    qoe = qoe_levels_by_title(records)
    header = f"{'title':<20}{'obj good':>10}{'eff good':>10}{'gain':>8}"
    print(header)
    print("-" * len(header))
    for title, row in sorted(
        qoe.items(), key=lambda item: item[1]["effective"]["good"] - item[1]["objective"]["good"],
        reverse=True,
    ):
        objective_good = row["objective"]["good"]
        effective_good = row["effective"]["good"]
        print(f"{title:<20}{objective_good:>10.0%}{effective_good:>10.0%}"
              f"{effective_good - objective_good:>8.0%}")

    summary = mislabel_correction_summary(records)
    print("\n=== §5.3 calibration summary ===")
    print(f"sessions labeled poor by objective QoE : {summary['poor_objective_fraction']:.0%}")
    print(f"of those, corrected to good by context : {summary['corrected_fraction']:.0%}")
    print(f"genuinely degraded sessions still flagged: {summary['degraded_recall']:.0%}")


if __name__ == "__main__":
    main()
