"""Sharded live deployment demo: many concurrent subscribers, many workers.

An ISP-side deployment watches many households at once.  This example

1. trains the pipeline once and **persists** it (``save_pipeline``), then
   loads it back the way a fleet of workers would (no refitting);
2. replays a mixed corpus of sessions as one interleaved live feed with
   staggered start times (``SessionFeed``);
3. drives the feed through a :class:`ShardedEngine` that partitions flows
   across workers by 5-tuple hash, collecting the per-flow context events;
4. prints a per-platform/effective-QoE summary of the closed sessions.

Run with::

    python examples/live_deployment.py
"""

from __future__ import annotations

import tempfile
import time
from collections import Counter
from pathlib import Path

from repro import (
    ContextClassificationPipeline,
    SessionConfig,
    SessionGenerator,
    generate_lab_dataset,
)
from repro.runtime import (
    SessionFeed,
    SessionReport,
    ShardedEngine,
    TitleClassified,
    load_pipeline,
    save_pipeline,
)

TITLES = ["CS:GO/CS2", "Fortnite", "Hearthstone", "Genshin Impact", "Cyberpunk 2077"]


def main() -> None:
    print("training the pipeline on a small lab corpus...")
    lab = generate_lab_dataset(
        sessions_per_title=2, gameplay_duration_s=150.0, rate_scale=0.05, random_state=11
    )
    trained = ContextClassificationPipeline(random_state=11)
    trained.title_classifier.model.n_estimators = 80
    trained.fit(lab.sessions)

    with tempfile.TemporaryDirectory() as tmp:
        model_dir = Path(tmp) / "model"
        save_pipeline(trained, model_dir)
        size_mb = (model_dir / "pipeline.npz").stat().st_size / 1e6
        print(f"persisted fitted pipeline to {model_dir.name}/ ({size_mb:.1f} MB); "
              "loading it back as a deployment worker would...")
        pipeline = load_pipeline(model_dir)

    print("generating 10 concurrent subscriber sessions...")
    generator = SessionGenerator(random_state=23)
    sessions = [
        generator.generate(
            TITLES[index % len(TITLES)],
            SessionConfig(gameplay_duration_s=90.0 + 15.0 * (index % 4), rate_scale=0.04),
        )
        for index in range(10)
    ]
    feed = SessionFeed(
        sessions,
        batch_seconds=2.0,
        start_offsets=[3.0 * index for index in range(len(sessions))],
    )

    engine = ShardedEngine(pipeline, n_workers=2)
    print(f"running the sharded engine ({engine.n_workers} workers, "
          f"backend={engine.backend})...\n")

    titles_seen = 0
    reports = []
    start = time.perf_counter()
    for event in engine.run_feed(feed):
        if isinstance(event, TitleClassified):
            titles_seen += 1
            print(f"  [t={event.time:6.1f}s] flow :{event.flow.client_port}  "
                  f"title={event.prediction.title!r} "
                  f"({event.prediction.confidence:.2f})")
        elif isinstance(event, SessionReport):
            reports.append(event)
    elapsed = time.perf_counter() - start

    packets = sum(event.n_packets for event in reports)
    print(f"\nclassified {len(reports)} sessions / {packets} packets "
          f"in {elapsed:.1f}s ({packets / max(elapsed, 1e-9):,.0f} packets/s)")
    context_counts = Counter(event.report.context_label for event in reports)
    qoe_counts = Counter(event.report.effective_qoe.value for event in reports)
    print("contexts:", dict(context_counts))
    print("effective QoE:", dict(qoe_counts))


if __name__ == "__main__":
    main()
