"""Sharded live deployment demo: many concurrent subscribers, many workers.

An ISP-side deployment watches many households at once.  This example

1. trains the pipeline once and **persists** it (``save_pipeline``), then
   loads it back the way a fleet of workers would (no refitting);
2. replays a mixed corpus of sessions as one interleaved live feed with
   staggered start times (``SessionFeed``);
3. drives the feed through a :class:`ShardedEngine` that partitions flows
   across workers by 5-tuple hash, collecting the per-flow context events;
4. prints a per-platform/effective-QoE summary of the closed sessions;
5. replays the same feed with a **SIGKILL of one worker mid-feed**: the
   supervisor respawns the shard, restores its last checkpoint, replays the
   un-acked ticks, and the close reports still match the serial backend
   bit for bit;
6. **hot-swaps the model mid-feed with zero downtime**: a freshly loaded
   copy of the saved pipeline replaces the live one between two ticks —
   every shard cuts over on the same tick, emits one ``ModelSwapped``
   event, live session state is untouched, and (being an identity swap)
   the close reports are unchanged.

Run with::

    python examples/live_deployment.py
"""

from __future__ import annotations

import tempfile
import time
from collections import Counter
from pathlib import Path

from repro import (
    ContextClassificationPipeline,
    SessionConfig,
    SessionGenerator,
    generate_lab_dataset,
)
from repro.runtime import (
    FaultPlan,
    KillWorker,
    ModelSwapped,
    SessionFeed,
    SessionRecovered,
    SessionReport,
    ShardedEngine,
    TitleClassified,
    WorkerRestarted,
    load_pipeline,
    save_pipeline,
)

TITLES = ["CS:GO/CS2", "Fortnite", "Hearthstone", "Genshin Impact", "Cyberpunk 2077"]


def _reports_equal(expected, actual) -> bool:
    """Field-by-field close-report equality (the serial run is the truth)."""
    return (
        actual.platform == expected.platform
        and actual.title == expected.title
        and actual.stage_timeline == expected.stage_timeline
        and actual.pattern == expected.pattern
        and actual.objective_qoe is expected.objective_qoe
        and actual.effective_qoe is expected.effective_qoe
    )


def fault_tolerance_demo(pipeline, make_feed, n_ticks) -> None:
    """Kill a worker mid-feed; show recovery and serial-backend equality."""
    print("\n--- fault-tolerance demo: SIGKILL worker 0 mid-feed ---")
    serial = ShardedEngine(pipeline, n_workers=2, backend="serial")
    reference = {
        event.flow: event.report
        for event in serial.run_feed(make_feed())
        if isinstance(event, SessionReport)
    }

    plan = FaultPlan(actions=(KillWorker(shard=0, tick=n_ticks // 2),))
    engine = ShardedEngine(
        pipeline, n_workers=2, backend="fork", snapshot_every_ticks=4
    )
    reports = {}
    recovered = 0
    for event in engine.run_feed(make_feed(), fault_plan=plan):
        if isinstance(event, WorkerRestarted):
            print(f"  [t={event.time:6.1f}s] worker {event.shard} {event.reason}: "
                  f"respawned, restored {event.n_flows} flows, replayed "
                  f"{event.replayed_ticks} ticks in "
                  f"{event.recovery_latency_s * 1e3:.0f} ms")
        elif isinstance(event, SessionRecovered):
            recovered += 1
        elif isinstance(event, SessionReport):
            reports[event.flow] = event.report

    stats = engine.last_feed_stats
    identical = reports.keys() == reference.keys() and all(
        _reports_equal(reference[key], reports[key]) for key in reference
    )
    print(f"  {recovered} sessions re-homed; replay ring peaked at "
          f"{stats['ring_peak_bytes']:,} B, last checkpoint "
          f"{stats['last_snapshot_nbytes']:,} B")
    print(f"  close reports identical to the serial backend: {identical}")
    if not identical:
        raise SystemExit("recovery diverged from the serial reference")


def hot_swap_demo(pipeline, replacement, make_feed, n_ticks) -> None:
    """Swap the model mid-feed without dropping a single live session."""
    print("\n--- zero-downtime hot swap: new model halfway through the feed ---")
    engine = ShardedEngine(pipeline, n_workers=2, backend="fork",
                           snapshot_every_ticks=4)

    def feed_with_swap():
        for tick, batch in enumerate(make_feed()):
            if tick == n_ticks // 2:
                # takes effect at the next batch boundary, on every shard
                # in the same tick; live per-session state is untouched
                engine.request_swap(replacement)
            yield batch

    reports = 0
    for event in engine.run_feed(feed_with_swap()):
        if isinstance(event, ModelSwapped):
            identity = event.old_digest == event.new_digest
            print(f"  [t={event.time:6.1f}s] shard {event.shard} swapped "
                  f"{event.old_digest[:8]} -> {event.new_digest[:8]} "
                  f"(identity={identity})")
        elif isinstance(event, SessionReport):
            reports += 1
    print(f"  {reports} sessions closed across the swap, zero dropped; "
          f"swaps this feed: {engine.last_feed_stats['n_swaps']}")


def main() -> None:
    print("training the pipeline on a small lab corpus...")
    lab = generate_lab_dataset(
        sessions_per_title=2, gameplay_duration_s=150.0, rate_scale=0.05, random_state=11
    )
    trained = ContextClassificationPipeline(random_state=11)
    trained.title_classifier.model.n_estimators = 80
    trained.fit(lab.sessions)

    with tempfile.TemporaryDirectory() as tmp:
        model_dir = Path(tmp) / "model"
        save_pipeline(trained, model_dir)
        size_mb = (model_dir / "pipeline.npz").stat().st_size / 1e6
        print(f"persisted fitted pipeline to {model_dir.name}/ ({size_mb:.1f} MB); "
              "loading it back as a deployment worker would...")
        pipeline = load_pipeline(model_dir)

    print("generating 10 concurrent subscriber sessions...")
    generator = SessionGenerator(random_state=23)
    sessions = [
        generator.generate(
            TITLES[index % len(TITLES)],
            SessionConfig(gameplay_duration_s=90.0 + 15.0 * (index % 4), rate_scale=0.04),
        )
        for index in range(10)
    ]
    def make_feed():
        return SessionFeed(
            sessions,
            batch_seconds=2.0,
            start_offsets=[3.0 * index for index in range(len(sessions))],
        )

    feed = make_feed()
    engine = ShardedEngine(pipeline, n_workers=2)
    print(f"running the sharded engine ({engine.n_workers} workers, "
          f"backend={engine.backend})...\n")

    titles_seen = 0
    reports = []
    start = time.perf_counter()
    for event in engine.run_feed(feed):
        if isinstance(event, TitleClassified):
            titles_seen += 1
            print(f"  [t={event.time:6.1f}s] flow :{event.flow.client_port}  "
                  f"title={event.prediction.title!r} "
                  f"({event.prediction.confidence:.2f})")
        elif isinstance(event, SessionReport):
            reports.append(event)
    elapsed = time.perf_counter() - start

    packets = sum(event.n_packets for event in reports)
    print(f"\nclassified {len(reports)} sessions / {packets} packets "
          f"in {elapsed:.1f}s ({packets / max(elapsed, 1e-9):,.0f} packets/s)")
    context_counts = Counter(event.report.context_label for event in reports)
    qoe_counts = Counter(event.report.effective_qoe.value for event in reports)
    print("contexts:", dict(context_counts))
    print("effective QoE:", dict(qoe_counts))

    n_ticks = sum(1 for _ in make_feed())
    fault_tolerance_demo(pipeline, make_feed, n_ticks)
    # swap in the originally trained object: same weights, fresh copy —
    # an identity swap, so the digests printed below come out equal
    hot_swap_demo(pipeline, trained, make_feed, n_ticks)


if __name__ == "__main__":
    main()
