"""Quickstart: train the context-classification pipeline and classify a session.

This example mirrors the deployed system end-to-end on a small synthetic
corpus:

1. generate a labeled lab corpus of GeForce-NOW-like sessions;
2. train the Fig. 6 pipeline (title classifier, activity-stage classifier,
   gameplay-pattern inference);
3. classify a fresh session and print its context plus objective vs
   effective QoE;
4. classify a whole batch of unseen sessions in one ``process_many`` call
   (the batched corpus engine used for ISP-scale workloads).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ContextClassificationPipeline,
    SessionConfig,
    SessionGenerator,
    generate_lab_dataset,
)


def main() -> None:
    print("building labeled lab corpus (synthetic GeForce NOW sessions)...")
    lab = generate_lab_dataset(
        sessions_per_title=2,
        gameplay_duration_s=150.0,
        rate_scale=0.05,
        random_state=7,
    )
    print(f"  {len(lab)} sessions across {len(lab.titles())} titles, "
          f"{lab.total_playtime_hours():.1f} hours of playtime")

    print("training the context classification pipeline (Fig. 6)...")
    pipeline = ContextClassificationPipeline(random_state=7)
    pipeline.title_classifier.model.n_estimators = 80
    pipeline.fit(lab.sessions)

    print("classifying a fresh, unseen session of Hearthstone...")
    generator = SessionGenerator(random_state=2024)
    session = generator.generate(
        "Hearthstone", SessionConfig(gameplay_duration_s=150.0, rate_scale=0.05)
    )
    report = pipeline.process(session)

    print()
    print(f"  platform           : {report.platform}")
    print(f"  classified title   : {report.title.title} "
          f"(confidence {report.title.confidence:.2f})")
    print(f"  gameplay pattern   : {report.pattern.label}")
    fractions = ", ".join(
        f"{stage.value}={share:.0%}" for stage, share in report.stage_fractions.items()
    )
    print(f"  stage mix          : {fractions}")
    metrics = report.objective_metrics
    print(f"  measured metrics   : {metrics.frame_rate:.0f} fps, "
          f"{metrics.throughput_mbps:.1f} Mbps, {metrics.loss_rate:.2%} loss")
    print(f"  objective QoE      : {report.objective_qoe.value}")
    print(f"  effective QoE      : {report.effective_qoe.value} "
          "(calibrated with the classified context)")
    print()
    print("ground truth:", session.title_name, "/", session.pattern.value)

    print("\nclassifying a batch of 6 unseen sessions with process_many...")
    batch = [
        generator.generate(
            name, SessionConfig(gameplay_duration_s=120.0, rate_scale=0.05)
        )
        for name in ("Fortnite", "Hearthstone", "Cyberpunk 2077",
                     "Dota 2", "Genshin Impact", "Overwatch 2")
    ]
    reports = pipeline.process_many(batch)
    for fresh, report in zip(batch, reports):
        print(f"  {fresh.title_name:<16} -> {report.context_label:<28} "
              f"effective QoE {report.effective_qoe.value}")


if __name__ == "__main__":
    main()
