"""Real-time monitoring example: the streaming runtime's live event feed.

The deployed system (Fig. 6) classifies the game title within the first five
seconds of a streaming flow, tracks the player activity stage every second,
and infers the gameplay activity pattern once the confidence gate opens.
This example replays a synthetic session through the streaming runtime
(:mod:`repro.runtime`) exactly as a network probe would observe it —
one-second packet batches demultiplexed by 5-tuple — and prints the typed
context events as the gates open, including the provisional per-10-second
``QoEInterval`` verdicts that surface degraded sessions *before* they end.

The engine runs in its default **bounded** session mode: per-flow state is
the reducer cascade of DESIGN.md §7 (slot counters, the 5 s launch buffer
and the QoE-relevant downstream columns — no packet history), yet the final
:class:`SessionReport` is bit-identical to offline ``pipeline.process()``.
Pass ``session_mode="full"`` to retain raw batches (needed only for feeds
that can deliver packets older than a session's first-seen packet, and for
``SessionState.assembled_stream``).  Flows shorter than the title window
classify at close, and late window packets re-open the verdict
(``TitleReclassified``).

Run with::

    python examples/realtime_monitor.py
"""

from __future__ import annotations

from repro import (
    ContextClassificationPipeline,
    SessionConfig,
    SessionGenerator,
    generate_lab_dataset,
)
from repro.runtime import (
    PatternInferred,
    QoEInterval,
    SessionFeed,
    SessionReport,
    SessionStarted,
    StageUpdate,
    StreamingEngine,
    TitleClassified,
    TitleReclassified,
)


def main() -> None:
    print("training the pipeline on a small lab corpus...")
    lab = generate_lab_dataset(
        sessions_per_title=2, gameplay_duration_s=150.0, rate_scale=0.05, random_state=11
    )
    pipeline = ContextClassificationPipeline(random_state=11)
    pipeline.title_classifier.model.n_estimators = 80
    pipeline.fit(lab.sessions)

    print("generating a live CS:GO session to monitor...")
    session = SessionGenerator(random_state=5).generate(
        "CS:GO/CS2", SessionConfig(gameplay_duration_s=240.0, rate_scale=0.05)
    )

    # one-second batches, exactly what a probe's polling loop would hand
    # over; session_mode="bounded" is the default — shown for visibility
    feed = SessionFeed([session], batch_seconds=1.0)
    engine = StreamingEngine(pipeline, session_mode="bounded")

    print("\nlive event stream (stage updates printed every 30 s):")
    for event in engine.run(feed):
        if isinstance(event, SessionStarted):
            print(f"  [t={event.time:6.1f}s] session started: "
                  f"{event.flow.client_ip}:{event.flow.client_port} -> "
                  f"{event.flow.server_ip}:{event.flow.server_port}")
        elif isinstance(event, TitleClassified):
            print(f"  [t={event.time:6.1f}s] game title classified: "
                  f"{event.prediction.title} "
                  f"(confidence {event.prediction.confidence:.2f})")
        elif isinstance(event, TitleReclassified):
            print(f"  [t={event.time:6.1f}s] title re-classified after late "
                  f"window packets: {event.previous.title} -> "
                  f"{event.prediction.title}")
        elif isinstance(event, StageUpdate):
            if event.slot_index % 30 == 0:
                print(f"  [t={event.time:6.1f}s] slot {event.slot_index:4d}  "
                      f"stage={event.stage.value}")
        elif isinstance(event, QoEInterval):
            window = "partial window" if event.partial else "10 s window"
            print(f"  [t={event.time:6.1f}s] provisional QoE ({window} "
                  f"#{event.interval_index}): {event.objective.value}  "
                  f"({event.metrics.frame_rate:.0f} fps, "
                  f"{event.metrics.throughput_mbps:.1f} Mbps, "
                  f"loss {event.metrics.loss_rate:.2%})")
        elif isinstance(event, PatternInferred):
            print(f"  [t={event.time:6.1f}s] >>> gameplay pattern inferred: "
                  f"{event.prediction.pattern.value} "
                  f"(confidence {event.prediction.confidence:.2f} after "
                  f"{event.prediction.slots_observed} gameplay slots)")
        elif isinstance(event, SessionReport):
            report = event.report
            print(f"  [t={event.time:6.1f}s] session closed ({event.reason}, "
                  f"{event.n_packets} packets over {event.duration_s:.0f}s)")
            print("\nfinal report (bit-identical to offline process(), "
                  "finalised from bounded state — no packet replay):")
            print(f"  context:        {report.context_label}")
            mix = ", ".join(
                f"{stage.value}={fraction:.0%}"
                for stage, fraction in report.stage_fractions.items()
            )
            print(f"  stage mix:      {mix}")
            print(f"  objective QoE:  {report.objective_qoe.value}")
            print(f"  effective QoE:  {report.effective_qoe.value}")

    print("\nground truth: title =", session.title_name,
          "/ pattern =", session.pattern.value)


if __name__ == "__main__":
    main()
