"""Real-time monitoring example: live context events + fleet QoE rollups.

The deployed system (Fig. 6) classifies the game title within the first five
seconds of a streaming flow, tracks the player activity stage every second,
and infers the gameplay activity pattern once the confidence gate opens.
This example replays a handful of concurrent synthetic sessions through the
streaming runtime (:mod:`repro.runtime`) exactly as a network probe would
observe them — one-second packet batches demultiplexed by 5-tuple — and
prints the typed context events as the gates open, including the provisional
per-10-second ``QoEInterval`` verdicts that surface degraded sessions
*before* they end.

The engine runs with the fleet analytics tier attached
(``analytics=True``): every event also folds into a
:class:`~repro.analytics.fleet.FleetAggregator`, which maintains
per-``(region, title, qoe_mode)`` rollups — p50/p95 frame lag, freeze rate,
loss and throughput quantiles — in O(1) state per key, with nothing
retained per session after it closes.  The closing summary pane below is
printed straight from the aggregator; at ISP scale the identical rollups
come out of the sharded runtime (``ShardedEngine(analytics=True)``) or an
offline fold (:func:`repro.analytics.fleet.fold_corpus`), bit-identical
across all three paths.

Run with::

    python examples/realtime_monitor.py
"""

from __future__ import annotations

from repro import (
    ContextClassificationPipeline,
    SessionConfig,
    SessionGenerator,
    generate_lab_dataset,
)
from repro.runtime import (
    PatternInferred,
    QoEInterval,
    SessionFeed,
    SessionReport,
    SessionStarted,
    StageUpdate,
    StreamingEngine,
    TitleClassified,
    TitleReclassified,
)

#: (title, serving region) of each concurrently monitored session.
MONITORED = (
    ("CS:GO/CS2", "eu-central"),
    ("Fortnite", "eu-central"),
    ("CS:GO/CS2", "eu-west"),
    ("Hearthstone", "eu-west"),
)


def main() -> None:
    print("training the pipeline on a small lab corpus...")
    lab = generate_lab_dataset(
        sessions_per_title=2, gameplay_duration_s=150.0, rate_scale=0.05, random_state=11
    )
    pipeline = ContextClassificationPipeline(random_state=11)
    pipeline.title_classifier.model.n_estimators = 80
    pipeline.fit(lab.sessions)

    print("generating live sessions to monitor...")
    generator = SessionGenerator(random_state=5)
    sessions = [
        generator.generate(
            title, SessionConfig(gameplay_duration_s=240.0, rate_scale=0.05)
        )
        for title, _region in MONITORED
    ]
    regions = [region for _title, region in MONITORED]

    # one-second batches, exactly what a probe's polling loop would hand
    # over; analytics=True attaches the fleet aggregator to the engine
    feed = SessionFeed(sessions, batch_seconds=1.0, regions=regions)
    engine = StreamingEngine(pipeline, session_mode="bounded", analytics=True)

    print("\nlive event stream (stage updates printed every 60 s):")
    for event in engine.run(feed):
        if isinstance(event, SessionStarted):
            print(f"  [t={event.time:6.1f}s] session started: "
                  f"{event.flow.client_ip}:{event.flow.client_port} -> "
                  f"{event.flow.server_ip}:{event.flow.server_port}")
        elif isinstance(event, TitleClassified):
            print(f"  [t={event.time:6.1f}s] :{event.flow.client_port} title: "
                  f"{event.prediction.title} "
                  f"(confidence {event.prediction.confidence:.2f})")
        elif isinstance(event, TitleReclassified):
            print(f"  [t={event.time:6.1f}s] :{event.flow.client_port} title "
                  f"re-classified after late window packets: "
                  f"{event.previous.title} -> {event.prediction.title}")
        elif isinstance(event, StageUpdate):
            if event.slot_index and event.slot_index % 60 == 0:
                print(f"  [t={event.time:6.1f}s] :{event.flow.client_port} "
                      f"slot {event.slot_index:4d}  stage={event.stage.value}")
        elif isinstance(event, QoEInterval):
            if event.objective.value != "good" and event.n_packets:
                print(f"  [t={event.time:6.1f}s] :{event.flow.client_port} "
                      f"provisional QoE window #{event.interval_index}: "
                      f"{event.objective.value}  "
                      f"({event.metrics.frame_rate:.0f} fps, "
                      f"{event.metrics.throughput_mbps:.1f} Mbps)")
        elif isinstance(event, PatternInferred):
            print(f"  [t={event.time:6.1f}s] :{event.flow.client_port} >>> "
                  f"pattern inferred: {event.prediction.pattern.value} "
                  f"(confidence {event.prediction.confidence:.2f})")
        elif isinstance(event, SessionReport):
            report = event.report
            print(f"  [t={event.time:6.1f}s] :{event.flow.client_port} closed "
                  f"({event.reason}, {event.n_packets} packets over "
                  f"{event.duration_s:.0f}s): {report.context_label}, "
                  f"objective={report.objective_qoe.value}, "
                  f"effective={report.effective_qoe.value}")

    fleet = engine.analytics
    print("\nfleet rollups (per region / title, from the attached "
          "FleetAggregator):")
    header = (f"  {'region':<12} {'title':<16} {'sess':>4} {'lag p50':>8} "
              f"{'lag p95':>8} {'thr p50':>8} {'freeze':>7} {'loss p95':>9}")
    print(header)
    for (region, title, _mode), summary in fleet.summary().items():
        print(f"  {region:<12} {title:<16} {summary['n_sessions']:>4} "
              f"{summary['lag_p50_ms']:>7.1f}ms {summary['lag_p95_ms']:>7.1f}ms "
              f"{summary['throughput_p50_mbps']:>5.1f}Mbps "
              f"{summary['freeze_rate']:>6.1%} {summary['loss_p95']:>8.3%}")
    print(f"  retained analytics state: {fleet.nbytes()} bytes over "
          f"{len(fleet.keys())} rollup keys "
          f"({fleet.n_live_flows} live flows pending)")

    print("\nground truth:",
          ", ".join(f":{52000 + i} {s.title_name}@{r}"
                    for i, (s, r) in enumerate(zip(sessions, regions))))


if __name__ == "__main__":
    main()
