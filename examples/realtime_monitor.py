"""Real-time monitoring example: slot-by-slot context tracking of one session.

The deployed system (Fig. 6) classifies the game title within the first five
seconds of a streaming flow and then tracks the player activity stage every
second, inferring the gameplay activity pattern once the confidence gate
opens.  This example replays a synthetic session slot-by-slot, exactly as a
network probe would observe it, and prints the evolving context.

Run with::

    python examples/realtime_monitor.py
"""

from __future__ import annotations

from repro import (
    ContextClassificationPipeline,
    PlayerStage,
    SessionConfig,
    SessionGenerator,
    generate_lab_dataset,
)
from repro.core.transition import StageTransitionModeler


def main() -> None:
    print("training the pipeline on a small lab corpus...")
    lab = generate_lab_dataset(
        sessions_per_title=2, gameplay_duration_s=150.0, rate_scale=0.05, random_state=11
    )
    pipeline = ContextClassificationPipeline(random_state=11)
    pipeline.title_classifier.model.n_estimators = 80
    pipeline.fit(lab.sessions)

    print("generating a live CS:GO session to monitor...")
    session = SessionGenerator(random_state=5).generate(
        "CS:GO/CS2", SessionConfig(gameplay_duration_s=240.0, rate_scale=0.05)
    )
    stream = session.packets

    # --- title classification after the first 5 seconds of the flow -------
    title = pipeline.title_classifier.predict_stream(stream.first_seconds(5.0))
    print(f"\n[t=5s] game title classified: {title.title} "
          f"(confidence {title.confidence:.2f})")

    # --- continuous stage tracking + pattern inference --------------------
    stages = pipeline.activity_classifier.predict_slots(stream)
    modeler = StageTransitionModeler()
    pattern_announced = False
    print("\nper-slot player activity stages (printed every 30 s):")
    for second, stage in enumerate(stages):
        modeler.update(stage)
        if second % 30 == 0:
            print(f"  t={second:4d}s  stage={stage.value:8s}  "
                  f"transitions observed={modeler.n_transitions}")
        if not pattern_announced and second >= pipeline.pattern_classifier.min_slots:
            prediction = pipeline.pattern_classifier.predict_features(
                modeler.feature_vector()
            )
            if prediction.confident:
                print(f"  t={second:4d}s  >>> gameplay pattern inferred: "
                      f"{prediction.pattern.value} "
                      f"(confidence {prediction.confidence:.2f})")
                pattern_announced = True

    if not pattern_announced:
        print("  (pattern confidence threshold never reached in this short session)")

    # --- summary -----------------------------------------------------------
    fractions = {
        stage.value: stages.count(stage) / max(1, len(stages))
        for stage in PlayerStage.gameplay_stages()
    }
    print("\nclassified stage mix:", {k: f"{v:.0%}" for k, v in fractions.items()})
    print("ground-truth title/pattern:", session.title_name, "/", session.pattern.value)


if __name__ == "__main__":
    main()
