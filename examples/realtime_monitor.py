"""Real-time monitoring example: the streaming runtime's live event feed.

The deployed system (Fig. 6) classifies the game title within the first five
seconds of a streaming flow, tracks the player activity stage every second,
and infers the gameplay activity pattern once the confidence gate opens.
This example replays a synthetic session through the streaming runtime
(:mod:`repro.runtime`) exactly as a network probe would observe it —
one-second packet batches demultiplexed by 5-tuple — and prints the typed
context events as the gates open.  The final :class:`SessionReport` is
bit-identical to what offline ``pipeline.process()`` would say about the
same session.

Run with::

    python examples/realtime_monitor.py
"""

from __future__ import annotations

from repro import (
    ContextClassificationPipeline,
    SessionConfig,
    SessionGenerator,
    generate_lab_dataset,
)
from repro.runtime import (
    PatternInferred,
    SessionFeed,
    SessionReport,
    SessionStarted,
    StageUpdate,
    StreamingEngine,
    TitleClassified,
)


def main() -> None:
    print("training the pipeline on a small lab corpus...")
    lab = generate_lab_dataset(
        sessions_per_title=2, gameplay_duration_s=150.0, rate_scale=0.05, random_state=11
    )
    pipeline = ContextClassificationPipeline(random_state=11)
    pipeline.title_classifier.model.n_estimators = 80
    pipeline.fit(lab.sessions)

    print("generating a live CS:GO session to monitor...")
    session = SessionGenerator(random_state=5).generate(
        "CS:GO/CS2", SessionConfig(gameplay_duration_s=240.0, rate_scale=0.05)
    )

    # one-second batches, exactly what a probe's polling loop would hand over
    feed = SessionFeed([session], batch_seconds=1.0)
    engine = StreamingEngine(pipeline)

    print("\nlive event stream (stage updates printed every 30 s):")
    for event in engine.run(feed):
        if isinstance(event, SessionStarted):
            print(f"  [t={event.time:6.1f}s] session started: "
                  f"{event.flow.client_ip}:{event.flow.client_port} -> "
                  f"{event.flow.server_ip}:{event.flow.server_port}")
        elif isinstance(event, TitleClassified):
            print(f"  [t={event.time:6.1f}s] game title classified: "
                  f"{event.prediction.title} "
                  f"(confidence {event.prediction.confidence:.2f})")
        elif isinstance(event, StageUpdate):
            if event.slot_index % 30 == 0:
                print(f"  [t={event.time:6.1f}s] slot {event.slot_index:4d}  "
                      f"stage={event.stage.value}")
        elif isinstance(event, PatternInferred):
            print(f"  [t={event.time:6.1f}s] >>> gameplay pattern inferred: "
                  f"{event.prediction.pattern.value} "
                  f"(confidence {event.prediction.confidence:.2f} after "
                  f"{event.prediction.slots_observed} gameplay slots)")
        elif isinstance(event, SessionReport):
            report = event.report
            print(f"  [t={event.time:6.1f}s] session closed ({event.reason}, "
                  f"{event.n_packets} packets over {event.duration_s:.0f}s)")
            print("\nfinal report (bit-identical to offline process()):")
            print(f"  context:        {report.context_label}")
            mix = ", ".join(
                f"{stage.value}={fraction:.0%}"
                for stage, fraction in report.stage_fractions.items()
            )
            print(f"  stage mix:      {mix}")
            print(f"  objective QoE:  {report.objective_qoe.value}")
            print(f"  effective QoE:  {report.effective_qoe.value}")

    print("\nground truth: title =", session.title_name,
          "/ pattern =", session.pattern.value)


if __name__ == "__main__":
    main()
