"""Launch-fingerprint example: the full/steady/sparse packet groups of Fig. 3.

Generates launch-stage traffic for two titles under different streaming
settings, labels every downstream packet as full, steady or sparse with the
paper's majority-voting rule (V = 10%), and prints a per-second text "scatter
plot" showing that the fingerprint is stable across settings of the same
title and differs across titles.

Run with::

    python examples/title_fingerprinting.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.characterization import launch_group_scatter, packet_group_share
from repro.simulation import SessionConfig, SessionGenerator, StreamingSettings
from repro.simulation.devices import Resolution


def describe(session, window_seconds: float = 30.0) -> None:
    """Print per-group counts and a coarse per-5-second steady-band profile."""
    scatter = launch_group_scatter(session, window_seconds=window_seconds)
    share = packet_group_share(session, window_seconds=window_seconds)
    print(f"  group share: " + ", ".join(f"{k}={v:.0%}" for k, v in share.items()))
    steady = scatter["steady"]
    line = []
    for start in range(0, int(window_seconds), 5):
        mask = (steady["times"] >= start) & (steady["times"] < start + 5)
        if mask.any():
            line.append(f"{start:>3}s:{np.median(steady['sizes'][mask]):5.0f}B")
        else:
            line.append(f"{start:>3}s:    -")
    print("  steady-band centres per 5 s: " + "  ".join(line))


def main() -> None:
    generator = SessionGenerator(random_state=99)
    config = SessionConfig(launch_only=True, rate_scale=0.3, gameplay_duration_s=1.0)

    scenarios = [
        ("Genshin Impact", StreamingSettings(Resolution.FHD, 60), "Windows app, FHD 60fps"),
        ("Genshin Impact", StreamingSettings(Resolution.HD, 30), "Windows app, HD 30fps"),
        ("Fortnite", StreamingSettings(Resolution.FHD, 60), "Windows app, FHD 60fps"),
    ]
    for title, settings, label in scenarios:
        session = generator.generate(title, config=config, settings=settings)
        print(f"\n{title} — {label}")
        describe(session)

    print(
        "\nNote how the two Genshin Impact sessions share their steady-band "
        "profile while Fortnite differs — the structure the game-title "
        "classifier exploits within the first five seconds."
    )


if __name__ == "__main__":
    main()
