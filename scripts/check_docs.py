#!/usr/bin/env python
"""Docs checker: intra-repo markdown links and DESIGN.md section references.

CI's ``docs`` job runs this over every ``*.md`` and ``*.py`` file in the
repository and fails on:

* **broken intra-repo markdown links** — ``[text](target)`` in a markdown
  file whose target is a relative path that does not exist on disk
  (anchors are stripped; external ``http(s)``/``mailto`` targets and
  GitHub-relative idioms like the CI badge's ``../../actions/...``, which
  resolve outside the repository, are skipped);
* **stale DESIGN.md section references** — any ``DESIGN.md §N`` (or a
  ``§A–§B`` range) in markdown or Python whose section has no matching
  ``## §N`` heading in DESIGN.md, plus plain ``§N`` references *inside*
  DESIGN.md itself.  Dotted references (``§5.3``) and ``paper's §N`` are
  the source paper's sections, not DESIGN.md's, and are ignored.

Usage::

    python scripts/check_docs.py          # exit 1 on any problem

Nine PRs of growth have already produced one silent renumbering near-miss;
this keeps prose and code pointing at sections that still exist.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: directories never scanned (VCS internals, caches)
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", ".ruff_cache", ".claude"}

#: ``[text](target)`` — good enough for the repo's hand-written markdown
#: (no reference-style links in use); nested brackets are not needed.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: cross-file reference: ``DESIGN.md §8`` or a range ``DESIGN.md §6–§7``
DESIGN_REF_RE = re.compile(r"DESIGN(?:\.md)?\s+§(\d+)(?:[–-]§?(\d+))?")

#: a plain in-document reference inside DESIGN.md: ``§8`` but not ``§5.3``
#: (dotted = the source paper's numbering) and not ``paper's §5``
SELF_REF_RE = re.compile(r"§(\d+)(?!\.\d)")
PAPER_REF_RE = re.compile(r"paper(?:'s|’s)?\s+§\d+")


def iter_files(suffixes):
    for path in sorted(REPO_ROOT.rglob("*")):
        if path.suffix not in suffixes or not path.is_file():
            continue
        if SKIP_DIRS.intersection(part for part in path.relative_to(REPO_ROOT).parts):
            continue
        yield path


def design_sections() -> set[int]:
    """Section numbers with an actual ``## §N`` heading in DESIGN.md."""
    text = (REPO_ROOT / "DESIGN.md").read_text()
    return {int(num) for num in re.findall(r"^## §(\d+)", text, flags=re.MULTILINE)}


def check_markdown_links() -> list[str]:
    problems = []
    for path in iter_files({".md"}):
        rel = path.relative_to(REPO_ROOT)
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.is_relative_to(REPO_ROOT):
                    continue  # GitHub-relative idiom (e.g. the CI badge)
                if not resolved.exists():
                    problems.append(
                        f"{rel}:{lineno}: broken link ({target})"
                    )
    return problems


def check_design_references() -> list[str]:
    sections = design_sections()
    if not sections:
        return ["DESIGN.md: no '## §N' headings found (checker misconfigured?)"]
    problems = []
    for path in iter_files({".md", ".py"}):
        rel = path.relative_to(REPO_ROOT)
        is_design = rel == Path("DESIGN.md")
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            referenced = []
            for match in DESIGN_REF_RE.finditer(line):
                first = int(match.group(1))
                last = int(match.group(2)) if match.group(2) else first
                referenced.extend(range(first, last + 1))
            if is_design:
                scrubbed = PAPER_REF_RE.sub("", DESIGN_REF_RE.sub("", line))
                referenced.extend(
                    int(num) for num in SELF_REF_RE.findall(scrubbed)
                )
            for number in referenced:
                if number not in sections:
                    problems.append(
                        f"{rel}:{lineno}: reference to DESIGN.md §{number}, "
                        f"which has no heading (sections: "
                        f"§{min(sections)}–§{max(sections)})"
                    )
    return problems


def main() -> int:
    problems = check_markdown_links() + check_design_references()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"\n{len(problems)} docs problem(s)", file=sys.stderr)
        return 1
    print("docs check passed (links resolve, DESIGN.md §-references exist)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
