#!/usr/bin/env python
"""Performance smoke run: micro + end-to-end timings -> BENCH_*.json.

Runs the columnar PacketStream micro-benchmarks (including a faithful
re-implementation of the seed's object-list storage as the baseline for the
speedup ratios), plus the two end-to-end experiment workloads the ISSUE
targets, and writes a ``BENCH_packet_stream.json`` snapshot at the repo root
so the perf trajectory is tracked per PR.

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py [--output BENCH_packet_stream.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
import sys

SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.features import launch_feature_matrix  # noqa: E402
from repro.net.packet import Direction, Packet, PacketStream  # noqa: E402

N_PACKETS = 100_000


class LegacyObjectStream:
    """The seed's object-list PacketStream storage (baseline for ratios)."""

    def __init__(self, packets):
        self._packets = sorted(packets, key=lambda p: p.timestamp)

    def filter_direction(self, direction):
        return LegacyObjectStream(
            p for p in self._packets if p.direction is direction
        )

    def timestamps(self, direction=None):
        return np.array(
            [
                p.timestamp
                for p in self._packets
                if direction is None or p.direction is direction
            ],
            dtype=float,
        )

    def payload_sizes(self, direction=None):
        return np.array(
            [
                p.payload_size
                for p in self._packets
                if direction is None or p.direction is direction
            ],
            dtype=float,
        )


def _timeit(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def micro_benchmarks():
    rng = np.random.default_rng(7)
    timestamps = np.sort(rng.uniform(0, 100, N_PACKETS))
    sizes = rng.integers(40, 1432, N_PACKETS).astype(float)
    codes = np.where(rng.random(N_PACKETS) < 0.8, 0, 1).astype(np.int8)
    packets = [
        Packet(
            timestamp=float(t),
            direction=Direction.DOWNSTREAM if d == 0 else Direction.UPSTREAM,
            payload_size=int(s),
        )
        for t, s, d in zip(timestamps, sizes, codes)
    ]

    legacy = LegacyObjectStream(packets)
    columnar = PacketStream.from_arrays(timestamps, sizes, codes, assume_sorted=True)

    def legacy_filter_views():
        down = legacy.filter_direction(Direction.DOWNSTREAM)
        down.timestamps()
        down.payload_sizes()

    def columnar_filter_views():
        # fresh stream each run: measures the cold (uncached) columnar path
        stream = PacketStream.from_arrays(
            timestamps, sizes, codes, assume_sorted=True
        )
        down = stream.filter_direction(Direction.DOWNSTREAM)
        down.timestamps()
        down.payload_sizes()

    def columnar_filter_views_warm():
        down = columnar.filter_direction(Direction.DOWNSTREAM)
        down.timestamps()
        down.payload_sizes()

    results = {
        "n_packets": N_PACKETS,
        "construct_from_packets_s": _timeit(lambda: PacketStream(packets), repeats=3),
        "construct_from_arrays_s": _timeit(
            lambda: PacketStream.from_arrays(
                timestamps, sizes, codes, assume_sorted=True
            )
        ),
        "legacy_filter_views_s": _timeit(legacy_filter_views),
        "columnar_filter_views_cold_s": _timeit(columnar_filter_views),
        "columnar_filter_views_warm_s": _timeit(columnar_filter_views_warm),
        "window_slice_s": _timeit(
            lambda: columnar.first_seconds(5.0).timestamps()
        ),
    }
    results["filter_views_speedup_vs_seed"] = (
        results["legacy_filter_views_s"] / results["columnar_filter_views_cold_s"]
    )
    return results


def feature_matrix_benchmark(n_sessions=10_000):
    rng = np.random.default_rng(3)
    streams = []
    for _ in range(n_sessions):
        n = int(rng.integers(40, 80))
        ts = np.sort(rng.uniform(0, 5, n))
        sz = np.where(rng.random(n) < 0.5, 1432.0, rng.uniform(40, 1400, n).round())
        streams.append(
            PacketStream.from_arrays(ts, sz, Direction.DOWNSTREAM, assume_sorted=True)
        )
    start = time.perf_counter()
    matrix = launch_feature_matrix(streams, window_seconds=5.0)
    elapsed = time.perf_counter() - start
    assert matrix.shape == (n_sessions, 51)
    return {"n_sessions": n_sessions, "feature_matrix_s": elapsed}


def end_to_end_benchmarks():
    from repro.experiments import run_fig03_launch_groups, run_table3_title_accuracy

    start = time.perf_counter()
    run_fig03_launch_groups(quick=True)
    fig03 = time.perf_counter() - start
    start = time.perf_counter()
    run_table3_title_accuracy(quick=True)
    table3 = time.perf_counter() - start
    return {"fig03_quick_s": fig03, "table3_quick_s": table3}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_packet_stream.json",
        help="where to write the JSON snapshot",
    )
    parser.add_argument(
        "--skip-end-to-end",
        action="store_true",
        help="only run the micro benchmarks (fast)",
    )
    args = parser.parse_args()

    snapshot = {
        "generated_by": "scripts/perf_smoke.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "micro": micro_benchmarks(),
        "feature_matrix": feature_matrix_benchmark(),
    }
    if not args.skip_end_to_end:
        snapshot["end_to_end"] = end_to_end_benchmarks()

    args.output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
