#!/usr/bin/env python
"""Performance smoke run: micro + end-to-end timings -> BENCH_*.json.

Runs the columnar PacketStream micro-benchmarks (including a faithful
re-implementation of the seed's object-list storage as the baseline for the
speedup ratios), the batched ``process_many`` engine benchmark, the columnar
PCAP ingestion benchmark, the streaming-runtime workloads (live-feed
throughput, sharded corpus classification, fitted-pipeline save/load) and
the two end-to-end experiment workloads, and writes a
``BENCH_packet_stream.json`` snapshot at the repo root so the perf
trajectory is tracked per PR.

Before overwriting the snapshot, the freshly measured metrics are compared
against the committed baseline: any timing metric that regressed by more
than 2x (or any speedup ratio that halved) fails the run with a non-zero
exit status, so CI fails loudly on perf regressions (see ROADMAP.md).
Metrics with sub-millisecond baselines are exempt from the gate — at that
scale the comparison would only measure scheduler noise.  Every run also
appends one record (git SHA + every numeric metric) to
``BENCH_history.jsonl``, making slow drifts that stay under the 2x gate
visible across PRs.

Every section records ``n_cpus`` (the usable core count), since several
workloads — sharding above all — only make sense in that context.  The
``memory`` section measures the peak per-session state bytes of the
streaming runtime's bounded vs full-history modes on the 104-session
deployment corpus (reports asserted bit-identical first); the bounded
byte peaks and the reduction ratio are regression-gated like the timings.
The ``memory_approx`` section does the same for the O(intervals)
approximate QoE tier (streaming reports asserted identical to offline
``qoe_mode="approx"`` first) and additionally hard-asserts the scaling
gate: approx QoE state flat under a 4x packets-per-session step.  The
``recovery`` section SIGKILLs a fork worker mid-feed and records the
checkpoint-restore + ring-replay latency and the replay ring's peak bytes
(close reports asserted identical to the serial backend first); both are
regression-gated like the timings.  The ``sharded_shm`` section replays
the live feed on the shared-memory column rings (DESIGN.md §12) and on
the legacy pickle-over-pipe plane — close reports asserted identical to
the serial backend on both planes first — and regression-gates the
shm-plane throughput, the ring's peak un-pruned slot bytes and the
pipe-vs-control payload reduction ratio.  The ``fleet_rollup`` section times the
fleet analytics tier's offline fold (QoE windows folded per second) and
records its retained state per rollup key, asserting the fold's aggregator
digest is bit-identical to the live streaming engine's first; the fold
throughput and the per-key bytes are regression-gated.  The
``forest_kernel`` section replays the corpus's real forest workload (batch
+ streaming-shaped + single-row calls) on the compiled
:class:`~repro.ml.kernel.ForestKernel` vs the legacy tree walk — every
component is asserted bit-identical before timing — and regression-gates
the headline ``kernel_speedup``.

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py [--output BENCH_packet_stream.json]
    PYTHONPATH=src python scripts/perf_smoke.py --quick       # tier-2 CI check
    PYTHONPATH=src python scripts/perf_smoke.py --no-check    # skip the gate
    PYTHONPATH=src python scripts/perf_smoke.py --no-history  # no JSONL append
    PYTHONPATH=src python scripts/perf_smoke.py --quick --json out.json

``--quick`` is the single-entry tier-2 check: it runs the micro,
feature-matrix, session-memory, approx-memory, worker-recovery,
shm-data-plane, fleet-rollup and forest-kernel sections only, compares them against the
committed snapshot and exits non-zero on any regression —
without touching the snapshot or the history file.  ``--sections`` narrows
a quick run further (comma-separated section names) and ``--json`` writes
the measured sections to a file in every mode — CI uploads that file as
the build artifact, pass or fail.

Two environment knobs tune the gate for CI:

* ``PERF_SMOKE_REGRESSION_FACTOR`` — the regression multiplier (default
  ``2.0``).  Shared CI runners are noisy, so the committed workflow runs
  the gate at ``3.0``: a real regression (the gate's target) blows well
  past 3x, machine jitter does not.
* ``PERF_SMOKE_N_PACKETS`` — micro-benchmark stream length (default
  ``100000``); the self-test of the gate shrinks it to keep tier-1 fast.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
import sys

SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.features import launch_feature_matrix  # noqa: E402
from repro.net.packet import Direction, Packet, PacketStream  # noqa: E402

N_PACKETS = int(os.environ.get("PERF_SMOKE_N_PACKETS", 100_000))

#: Sections a ``--quick`` run may execute (in run order).
QUICK_SECTIONS = (
    "micro",
    "feature_matrix",
    "memory",
    "memory_approx",
    "recovery",
    "sharded_shm",
    "fleet_rollup",
    "forest_kernel",
)


def _n_cpus() -> int:
    """Usable core count (affinity-aware), recorded in every bench section."""
    from repro.runtime.shard import default_worker_count

    return default_worker_count()


def _with_cpus(section: dict) -> dict:
    """Stamp ``n_cpus`` into a bench section (idempotent)."""
    section.setdefault("n_cpus", _n_cpus())
    return section


class LegacyObjectStream:
    """The seed's object-list PacketStream storage (baseline for ratios)."""

    def __init__(self, packets):
        self._packets = sorted(packets, key=lambda p: p.timestamp)

    def filter_direction(self, direction):
        return LegacyObjectStream(
            p for p in self._packets if p.direction is direction
        )

    def timestamps(self, direction=None):
        return np.array(
            [
                p.timestamp
                for p in self._packets
                if direction is None or p.direction is direction
            ],
            dtype=float,
        )

    def payload_sizes(self, direction=None):
        return np.array(
            [
                p.payload_size
                for p in self._packets
                if direction is None or p.direction is direction
            ],
            dtype=float,
        )


def _timeit(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def micro_benchmarks():
    rng = np.random.default_rng(7)
    timestamps = np.sort(rng.uniform(0, 100, N_PACKETS))
    sizes = rng.integers(40, 1432, N_PACKETS).astype(float)
    codes = np.where(rng.random(N_PACKETS) < 0.8, 0, 1).astype(np.int8)
    packets = [
        Packet(
            timestamp=float(t),
            direction=Direction.DOWNSTREAM if d == 0 else Direction.UPSTREAM,
            payload_size=int(s),
        )
        for t, s, d in zip(timestamps, sizes, codes)
    ]

    legacy = LegacyObjectStream(packets)
    columnar = PacketStream.from_arrays(timestamps, sizes, codes, assume_sorted=True)

    def legacy_filter_views():
        down = legacy.filter_direction(Direction.DOWNSTREAM)
        down.timestamps()
        down.payload_sizes()

    def columnar_filter_views():
        # fresh stream each run: measures the cold (uncached) columnar path
        stream = PacketStream.from_arrays(
            timestamps, sizes, codes, assume_sorted=True
        )
        down = stream.filter_direction(Direction.DOWNSTREAM)
        down.timestamps()
        down.payload_sizes()

    def columnar_filter_views_warm():
        down = columnar.filter_direction(Direction.DOWNSTREAM)
        down.timestamps()
        down.payload_sizes()

    results = {
        "n_packets": N_PACKETS,
        "construct_from_packets_s": _timeit(lambda: PacketStream(packets), repeats=3),
        "construct_from_arrays_s": _timeit(
            lambda: PacketStream.from_arrays(
                timestamps, sizes, codes, assume_sorted=True
            )
        ),
        "legacy_filter_views_s": _timeit(legacy_filter_views),
        "columnar_filter_views_cold_s": _timeit(columnar_filter_views),
        "columnar_filter_views_warm_s": _timeit(columnar_filter_views_warm),
        "window_slice_s": _timeit(
            lambda: columnar.first_seconds(5.0).timestamps()
        ),
    }
    results["filter_views_speedup_vs_seed"] = (
        results["legacy_filter_views_s"] / results["columnar_filter_views_cold_s"]
    )
    return results


def feature_matrix_benchmark(n_sessions=10_000):
    rng = np.random.default_rng(3)
    streams = []
    for _ in range(n_sessions):
        n = int(rng.integers(40, 80))
        ts = np.sort(rng.uniform(0, 5, n))
        sz = np.where(rng.random(n) < 0.5, 1432.0, rng.uniform(40, 1400, n).round())
        streams.append(
            PacketStream.from_arrays(ts, sz, Direction.DOWNSTREAM, assume_sorted=True)
        )
    start = time.perf_counter()
    matrix = launch_feature_matrix(streams, window_seconds=5.0)
    elapsed = time.perf_counter() - start
    assert matrix.shape == (n_sessions, 51)
    return {"n_sessions": n_sessions, "feature_matrix_s": elapsed}


def end_to_end_benchmarks():
    from repro.experiments import run_fig03_launch_groups, run_table3_title_accuracy

    start = time.perf_counter()
    run_fig03_launch_groups(quick=True)
    fig03 = time.perf_counter() - start
    start = time.perf_counter()
    run_table3_title_accuracy(quick=True)
    table3 = time.perf_counter() - start
    return {"fig03_quick_s": fig03, "table3_quick_s": table3}


def _load_bench_module(name):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "benchmarks" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def process_many_benchmark():
    """The batched corpus classification engine vs the per-session loop."""
    return _load_bench_module("bench_process_many").run_benchmark()


def runtime_benchmarks():
    """Streaming-runtime throughput, sharding, memory bounds and model I/O.

    The >=100-session deployment corpus is built and the pipeline fitted
    once, shared by every section.  Sharded numbers depend on the machine:
    the recorded ``n_cpus`` / ``n_workers`` give them context (forked
    sharding cannot beat one process on a single usable core).
    """
    bench = _load_bench_module("bench_runtime")
    corpus = bench.build_deployment_corpus()
    pipeline = bench.fit_deployment_pipeline(corpus)
    runtime = bench.run_benchmark(corpus=corpus, pipeline=pipeline)
    memory = bench.run_memory_benchmark(corpus=corpus, pipeline=pipeline)
    memory_approx = bench.run_memory_approx_benchmark(
        corpus=corpus,
        pipeline=pipeline,
        bounded_peak_session_bytes=memory["bounded_peak_session_bytes"],
    )
    recovery = bench.run_recovery_benchmark(corpus=corpus, pipeline=pipeline)
    sharded_shm = bench.run_sharded_shm_benchmark(corpus=corpus, pipeline=pipeline)
    fleet = bench.run_fleet_rollup_benchmark(corpus=corpus, pipeline=pipeline)
    pipeline_io = pipeline_io_benchmark(bench, corpus, pipeline)
    forest_kernel = _load_bench_module("bench_forest_kernel").run_benchmark(
        corpus=corpus, pipeline=pipeline
    )
    return (
        runtime,
        memory,
        memory_approx,
        recovery,
        sharded_shm,
        fleet,
        pipeline_io,
        forest_kernel,
    )


def memory_benchmarks(
    run_exact=True,
    run_approx=True,
    run_recovery=False,
    run_shm=False,
    run_fleet=False,
    run_kernel=False,
):
    """Corpus-backed sections sharing one corpus build (the --quick path).

    Returns ``(memory, memory_approx, recovery, sharded_shm, fleet,
    forest_kernel)``; any
    may be ``None`` when its section was filtered out.  The approx section asserts its own
    O(intervals) gate (state flat under a 4x packets-per-session step) and
    the offline-equality of streaming approx reports before returning; the
    recovery section asserts the killed-worker run's close reports are
    identical to the serial backend before reporting its latency; the
    shm section asserts both data planes' close reports are identical to
    the serial backend before reporting throughput or payload volume; the fleet
    section asserts the offline fold's aggregator digest is bit-identical to
    the live streaming engine's before reporting its fold throughput.
    """
    bench = _load_bench_module("bench_runtime")
    corpus = bench.build_deployment_corpus()
    pipeline = bench.fit_deployment_pipeline(corpus)
    memory = (
        bench.run_memory_benchmark(corpus=corpus, pipeline=pipeline)
        if run_exact
        else None
    )
    memory_approx = (
        bench.run_memory_approx_benchmark(
            corpus=corpus,
            pipeline=pipeline,
            bounded_peak_session_bytes=(
                memory["bounded_peak_session_bytes"] if memory else None
            ),
        )
        if run_approx
        else None
    )
    recovery = (
        bench.run_recovery_benchmark(corpus=corpus, pipeline=pipeline)
        if run_recovery
        else None
    )
    sharded_shm = (
        bench.run_sharded_shm_benchmark(corpus=corpus, pipeline=pipeline)
        if run_shm
        else None
    )
    fleet = (
        bench.run_fleet_rollup_benchmark(corpus=corpus, pipeline=pipeline)
        if run_fleet
        else None
    )
    forest_kernel = (
        _load_bench_module("bench_forest_kernel").run_benchmark(
            corpus=corpus, pipeline=pipeline
        )
        if run_kernel
        else None
    )
    return memory, memory_approx, recovery, sharded_shm, fleet, forest_kernel


def pipeline_io_benchmark(bench, corpus, pipeline):
    """Fitted-pipeline persistence: save/load timings and artifact size.

    Asserts the round trip classifies identically before reporting any
    timing.
    """
    import tempfile

    from repro.runtime import load_pipeline, save_pipeline

    probe = corpus[:10]
    expected = pipeline.process_many(probe)
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "model"
        save_s = _timeit(lambda: save_pipeline(pipeline, target), repeats=3)
        load_s = _timeit(lambda: load_pipeline(target), repeats=3)
        npz_bytes = (target / "pipeline.npz").stat().st_size
        loaded = load_pipeline(target)
    bench._assert_reports_identical(expected, loaded.process_many(probe))
    return {
        "save_s": save_s,
        "load_s": load_s,
        "npz_bytes": npz_bytes,
        "round_trip_identical": True,
    }


def pcap_ingest_benchmark(n_packets=50_000):
    """Columnar ``read_pcap_columns`` vs the object-based ``read_pcap``."""
    import tempfile

    from repro.net.pcap import read_pcap, read_pcap_columns, write_pcap

    rng = np.random.default_rng(5)
    timestamps = np.sort(rng.uniform(0, 60, n_packets))
    packets = [
        Packet(
            timestamp=float(t),
            direction=Direction.DOWNSTREAM if down else Direction.UPSTREAM,
            payload_size=int(size),
            src_ip="203.0.113.5" if down else "192.168.0.9",
            dst_ip="192.168.0.9" if down else "203.0.113.5",
            src_port=49004 if down else 51000,
            dst_port=51000 if down else 49004,
            rtp_ssrc=99,
            rtp_sequence=i & 0xFFFF,
            rtp_timestamp=int(t * 90000) & 0xFFFFFFFF,
        )
        for i, (t, size, down) in enumerate(
            zip(timestamps, rng.integers(60, 1432, n_packets), rng.random(n_packets) < 0.8)
        )
    ]
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.pcap"
        write_pcap(path, packets)
        object_s = _timeit(lambda: read_pcap(path), repeats=3)
        columns_s = _timeit(lambda: read_pcap_columns(path), repeats=3)
    return {
        "n_packets": n_packets,
        "read_pcap_objects_s": object_s,
        "read_pcap_columns_s": columns_s,
        "pcap_columns_speedup": object_s / columns_s,
    }


# ---------------------------------------------------------------------------
# per-PR history
# ---------------------------------------------------------------------------
def _git_sha() -> str:
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def append_history(snapshot, regressed, path):
    """Append one JSONL record (git SHA + flattened metrics) per run.

    The >2x gate only catches step regressions; the history file makes slow
    drifts that stay under the gate visible across PRs
    (``git log -p BENCH_history.jsonl`` or a one-liner plot).
    """
    import datetime

    record = {
        "sha": _git_sha(),
        "utc": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "regressed": regressed,
        "metrics": {
            label: value for label, _key, value in _numeric_leaves(snapshot)
        },
    }
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# regression gate
# ---------------------------------------------------------------------------
#: timing metrics below this baseline are pure noise at the gate's scale
_CHECK_FLOOR_SECONDS = 1e-3
#: a timing metric more than this factor slower than baseline fails the run
#: (the default; PERF_SMOKE_REGRESSION_FACTOR overrides — CI runs at 3.0
#: because shared runners are noisy, and a real regression clears 3x anyway)
_REGRESSION_FACTOR = 2.0


def regression_factor() -> float:
    """The gate multiplier, env-overridable for noisy (CI) machines."""
    factor = float(os.environ.get("PERF_SMOKE_REGRESSION_FACTOR", _REGRESSION_FACTOR))
    if factor < 1.0:
        raise ValueError(
            f"PERF_SMOKE_REGRESSION_FACTOR must be >= 1.0, got {factor}"
        )
    return factor


def _numeric_leaves(snapshot, prefix=""):
    for key, value in snapshot.items():
        label = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            yield from _numeric_leaves(value, label)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            yield label, key, float(value)


def check_against_baseline(snapshot, baseline, factor=None):
    """Compare fresh metrics against the committed snapshot.

    Returns a list of human-readable regression descriptions: timing metrics
    (``*_s``) failing when more than ``factor`` slower, throughput
    (``*_per_s``), speedup and ratio metrics failing when less than
    ``1/factor`` of the recorded value, byte metrics (``*_bytes``) when more
    than ``factor`` larger.  ``factor`` defaults to
    :func:`regression_factor` (env-overridable for noisy CI runners).
    """
    if factor is None:
        factor = regression_factor()
    fresh = {label: value for label, _key, value in _numeric_leaves(snapshot)}
    regressions = []
    for label, key, recorded in _numeric_leaves(baseline):
        current = fresh.get(label)
        if current is None:
            continue
        if key.endswith("_per_s"):
            # throughput: higher is better (must not match the timing branch)
            if current < recorded / factor:
                regressions.append(
                    f"{label}: {current:,.0f}/s vs baseline {recorded:,.0f}/s "
                    f"(less than 1/{factor:g} of the recorded throughput)"
                )
        elif key.endswith("_s"):
            if recorded >= _CHECK_FLOOR_SECONDS and current > recorded * factor:
                regressions.append(
                    f"{label}: {current:.4f}s vs baseline {recorded:.4f}s "
                    f"(> {factor:g}x slower)"
                )
        elif key.endswith("_bytes"):
            # memory / artifact size: lower is better
            if current > recorded * factor:
                regressions.append(
                    f"{label}: {current:,.0f} B vs baseline {recorded:,.0f} B "
                    f"(> {factor:g}x larger)"
                )
        elif "speedup" in key or key.endswith("_ratio"):
            if current < recorded / factor:
                regressions.append(
                    f"{label}: {current:.2f}x vs baseline {recorded:.2f}x "
                    f"(less than 1/{factor:g} of the recorded factor)"
                )
    return regressions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_packet_stream.json",
        help="where to write the JSON snapshot",
    )
    parser.add_argument(
        "--skip-end-to-end",
        action="store_true",
        help="only run the micro benchmarks (fast); skips the pcap-ingest, "
        "process_many and experiment workloads",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tier-2 CI check: run the micro, feature-matrix, session-memory "
        "(exact + approx), worker-recovery, shm-data-plane, fleet-rollup "
        "and forest-kernel "
        "sections, gate them against the committed snapshot and exit "
        "non-zero on regression; never rewrites the snapshot or the "
        "history file",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the measured sections to this JSON file (pass or "
        "fail) — CI uploads it as the build artifact",
    )
    parser.add_argument(
        "--sections",
        type=str,
        default=None,
        metavar="A,B,...",
        help="restrict a --quick run to these sections "
        f"(subset of {','.join(QUICK_SECTIONS)})",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the >2x regression gate against the committed snapshot",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to BENCH_history.jsonl",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=REPO_ROOT / "BENCH_history.jsonl",
        help="per-PR metric history file (JSONL, one record per run)",
    )
    args = parser.parse_args()

    baseline = None
    if args.output.exists():
        baseline = json.loads(args.output.read_text())

    if args.sections is not None and not args.quick:
        parser.error("--sections only applies to --quick runs")
    sections = set(QUICK_SECTIONS)
    if args.sections is not None:
        sections = {name.strip() for name in args.sections.split(",") if name.strip()}
        unknown = sections - set(QUICK_SECTIONS)
        if unknown:
            parser.error(
                f"unknown sections {sorted(unknown)} "
                f"(choose from {', '.join(QUICK_SECTIONS)})"
            )
        if not sections:
            # an empty selection would measure nothing and "pass" — refuse
            # rather than silently disabling the gate
            parser.error(f"--sections selected nothing (choose from {', '.join(QUICK_SECTIONS)})")

    def write_json(snapshot):
        if args.json is not None:
            args.json.write_text(json.dumps(snapshot, indent=2) + "\n")

    snapshot = {
        "generated_by": "scripts/perf_smoke.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "n_cpus": _n_cpus(),
    }
    if not args.quick or "micro" in sections:
        snapshot["micro"] = _with_cpus(micro_benchmarks())
    if not args.quick or "feature_matrix" in sections:
        snapshot["feature_matrix"] = _with_cpus(feature_matrix_benchmark())
    if args.quick:
        corpus_sections = {
            "memory", "memory_approx", "recovery", "sharded_shm",
            "fleet_rollup", "forest_kernel",
        }
        if sections & corpus_sections:
            (
                memory,
                memory_approx,
                recovery,
                sharded_shm,
                fleet,
                forest_kernel,
            ) = memory_benchmarks(
                run_exact="memory" in sections,
                run_approx="memory_approx" in sections,
                run_recovery="recovery" in sections,
                run_shm="sharded_shm" in sections,
                run_fleet="fleet_rollup" in sections,
                run_kernel="forest_kernel" in sections,
            )
            if memory is not None:
                snapshot["memory"] = _with_cpus(memory)
            if memory_approx is not None:
                snapshot["memory_approx"] = _with_cpus(memory_approx)
            if recovery is not None:
                snapshot["recovery"] = _with_cpus(recovery)
            if sharded_shm is not None:
                snapshot["sharded_shm"] = _with_cpus(sharded_shm)
            if fleet is not None:
                snapshot["fleet_rollup"] = _with_cpus(fleet)
            if forest_kernel is not None:
                snapshot["forest_kernel"] = _with_cpus(forest_kernel)
        regressions = []
        if baseline is not None and not args.no_check:
            regressions = check_against_baseline(snapshot, baseline)
        print(json.dumps(snapshot, indent=2))
        write_json(snapshot)
        if regressions:
            print("\nPERF REGRESSIONS vs committed baseline:", file=sys.stderr)
            for line in regressions:
                print(f"  - {line}", file=sys.stderr)
            sys.exit(1)
        print("\nquick check passed (snapshot and history untouched)")
        return
    if not args.skip_end_to_end:
        snapshot["pcap_ingest"] = _with_cpus(pcap_ingest_benchmark())
        snapshot["process_many"] = _with_cpus(process_many_benchmark())
        (
            runtime,
            memory,
            memory_approx,
            recovery,
            sharded_shm,
            fleet,
            pipeline_io,
            forest_kernel,
        ) = runtime_benchmarks()
        snapshot["runtime"] = _with_cpus(runtime)
        snapshot["memory"] = _with_cpus(memory)
        snapshot["memory_approx"] = _with_cpus(memory_approx)
        snapshot["recovery"] = _with_cpus(recovery)
        snapshot["sharded_shm"] = _with_cpus(sharded_shm)
        snapshot["fleet_rollup"] = _with_cpus(fleet)
        snapshot["pipeline_io"] = _with_cpus(pipeline_io)
        snapshot["forest_kernel"] = _with_cpus(forest_kernel)
        snapshot["end_to_end"] = _with_cpus(end_to_end_benchmarks())

    regressions = []
    if baseline is not None and not args.no_check:
        regressions = check_against_baseline(snapshot, baseline)

    print(json.dumps(snapshot, indent=2))
    write_json(snapshot)
    if not args.no_history:
        append_history(snapshot, regressed=bool(regressions), path=args.history)
        print(f"appended run to {args.history}")
    if regressions:
        # keep the committed baseline intact so a rerun still fails; park
        # the regressed measurements next to it for inspection
        rejected = args.output.with_suffix(".rejected.json")
        rejected.write_text(json.dumps(snapshot, indent=2) + "\n")
        print("\nPERF REGRESSIONS vs committed baseline:", file=sys.stderr)
        for line in regressions:
            print(f"  - {line}", file=sys.stderr)
        print(f"baseline kept; regressed snapshot written to {rejected}", file=sys.stderr)
        sys.exit(1)

    args.output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if baseline is not None and not args.no_check:
        print("regression gate passed (no metric >2x worse than baseline)")


if __name__ == "__main__":
    main()
