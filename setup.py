"""Legacy setup shim.

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) to work in offline environments where the
``wheel`` package is unavailable for PEP 517 editable builds.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Games Are Not Equal: Classifying Cloud Gaming "
        "Contexts for Effective User Experience Measurement' (IMC 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
