"""repro — reproduction of "Games Are Not Equal: Classifying Cloud Gaming
Contexts for Effective User Experience Measurement" (ACM IMC 2025).

The package is organised in six layers:

* :mod:`repro.net` — packet/flow/RTP/PCAP substrate and the cloud-gaming
  flow detector.
* :mod:`repro.ml` — numpy-only machine-learning substrate (random forest,
  SVM, KNN, metrics, cross-validation, permutation importance).
* :mod:`repro.simulation` — synthetic GeForce-NOW-like traffic generation
  (lab corpus and ISP-scale session records).
* :mod:`repro.core` — the paper's contribution: packet-group labeling,
  launch-attribute extraction, game-title classification, player-activity
  stage classification, gameplay-pattern inference and effective-QoE
  calibration, wired together in :class:`repro.core.pipeline.
  ContextClassificationPipeline`.
* :mod:`repro.runtime` — the streaming deployment runtime: live flow
  demux, per-session online cascade state machines, sharded workers and
  fitted-pipeline persistence (DESIGN.md §6).
* :mod:`repro.analysis` / :mod:`repro.experiments` — the analyses behind
  every table and figure of the paper.

Quickstart::

    from repro import ContextClassificationPipeline, generate_lab_dataset

    lab = generate_lab_dataset(sessions_per_title=3, random_state=7)
    pipeline = ContextClassificationPipeline(random_state=7).fit(lab.sessions)
    report = pipeline.process(lab.sessions[0])
    print(report.context_label, report.effective_qoe)
"""

from repro.core import (
    ContextClassificationPipeline,
    EffectiveQoECalibrator,
    GameplayPatternClassifier,
    GameTitleClassifier,
    ObjectiveQoEEstimator,
    PacketGroupLabeler,
    PlayerActivityClassifier,
    QoELevel,
    SessionContextReport,
    StageTransitionModeler,
)
from repro.net import (
    CloudGamingFlowDetector,
    Direction,
    Flow,
    NetworkConditions,
    Packet,
    PacketStream,
    read_pcap,
    read_pcap_columns,
    read_pcap_stream,
    write_pcap,
)
from repro.runtime import (
    SessionFeed,
    ShardedEngine,
    StreamingEngine,
    load_pipeline,
    pcap_feed,
    save_pipeline,
)
from repro.simulation import (
    ActivityPattern,
    GameSession,
    GameTitle,
    Genre,
    ISPDeploymentSimulator,
    PlayerStage,
    SessionConfig,
    SessionGenerator,
    StreamingSettings,
    generate_lab_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ContextClassificationPipeline",
    "SessionContextReport",
    "GameTitleClassifier",
    "PlayerActivityClassifier",
    "GameplayPatternClassifier",
    "StageTransitionModeler",
    "PacketGroupLabeler",
    "ObjectiveQoEEstimator",
    "EffectiveQoECalibrator",
    "QoELevel",
    # net
    "Packet",
    "PacketStream",
    "Direction",
    "Flow",
    "CloudGamingFlowDetector",
    "NetworkConditions",
    "read_pcap",
    "read_pcap_columns",
    "read_pcap_stream",
    "write_pcap",
    # runtime
    "StreamingEngine",
    "ShardedEngine",
    "SessionFeed",
    "pcap_feed",
    "save_pipeline",
    "load_pipeline",
    # simulation
    "GameTitle",
    "Genre",
    "ActivityPattern",
    "PlayerStage",
    "GameSession",
    "SessionConfig",
    "SessionGenerator",
    "StreamingSettings",
    "ISPDeploymentSimulator",
    "generate_lab_dataset",
]
