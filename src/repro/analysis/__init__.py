"""Aggregation analyses behind the paper's characterisation and §5 figures.

* :mod:`repro.analysis.characterization` — launch packet-group scatter data
  (Fig. 3), per-stage volumetric time series (Fig. 4) and stage transition
  statistics (Fig. 5) computed from labeled session corpora.
* :mod:`repro.analysis.stage_durations` — average per-session minutes spent
  in each player activity stage per title and per pattern (Fig. 11).
* :mod:`repro.analysis.bandwidth` — per-title and per-pattern session
  throughput distributions (Fig. 12).
* :mod:`repro.analysis.qoe_report` — objective vs effective QoE level
  fractions per title and per pattern (Fig. 13).
"""

from repro.analysis.bandwidth import bandwidth_by_pattern, bandwidth_by_title
from repro.analysis.characterization import (
    launch_group_scatter,
    session_volumetric_timeseries,
    stage_transition_statistics,
)
from repro.analysis.qoe_report import qoe_levels_by_pattern, qoe_levels_by_title
from repro.analysis.stage_durations import (
    stage_minutes_by_pattern,
    stage_minutes_by_title,
)

__all__ = [
    "launch_group_scatter",
    "session_volumetric_timeseries",
    "stage_transition_statistics",
    "stage_minutes_by_title",
    "stage_minutes_by_pattern",
    "bandwidth_by_title",
    "bandwidth_by_pattern",
    "qoe_levels_by_title",
    "qoe_levels_by_pattern",
]
