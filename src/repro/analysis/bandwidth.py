"""Per-session bandwidth-demand aggregation (Fig. 12).

Fig. 12 reports the distribution of session-average downstream throughput
per game title (12a) and per gameplay activity pattern (12b).  Sessions with
very low throughput (below 1 Mbps) are excluded, as the paper does, because
they reflect constrained network conditions rather than game demand.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.simulation.catalog import ActivityPattern, UNKNOWN_TITLE
from repro.simulation.isp import SessionRecord

#: Throughput floor below which sessions are excluded from demand analysis.
LOW_THROUGHPUT_FLOOR_MBPS = 1.0


def _distribution_summary(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of a throughput sample."""
    if not values:
        return {
            "sessions": 0.0,
            "mean": 0.0,
            "p10": 0.0,
            "median": 0.0,
            "p90": 0.0,
            "max": 0.0,
        }
    array = np.asarray(values, dtype=float)
    return {
        "sessions": float(array.size),
        "mean": float(array.mean()),
        "p10": float(np.percentile(array, 10)),
        "median": float(np.median(array)),
        "p90": float(np.percentile(array, 90)),
        "max": float(array.max()),
    }


def _filter_records(
    records: Sequence[SessionRecord], floor_mbps: float
) -> List[SessionRecord]:
    return [r for r in records if r.avg_downstream_mbps >= floor_mbps]


def bandwidth_by_title(
    records: Sequence[SessionRecord],
    floor_mbps: float = LOW_THROUGHPUT_FLOOR_MBPS,
    include_unknown: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Fig. 12a: session-average throughput distribution per title."""
    grouped: Dict[str, List[float]] = {}
    for record in _filter_records(records, floor_mbps):
        if record.title_name == UNKNOWN_TITLE and not include_unknown:
            continue
        grouped.setdefault(record.title_name, []).append(record.avg_downstream_mbps)
    return {title: _distribution_summary(values) for title, values in grouped.items()}


def bandwidth_by_pattern(
    records: Sequence[SessionRecord],
    floor_mbps: float = LOW_THROUGHPUT_FLOOR_MBPS,
    unknown_only: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Fig. 12b: throughput distribution per gameplay activity pattern."""
    grouped: Dict[ActivityPattern, List[float]] = {}
    for record in _filter_records(records, floor_mbps):
        if unknown_only and record.title_name != UNKNOWN_TITLE:
            continue
        grouped.setdefault(record.pattern, []).append(record.avg_downstream_mbps)
    return {
        pattern.value: _distribution_summary(values)
        for pattern, values in grouped.items()
    }


def bandwidth_clusters(
    records: Sequence[SessionRecord],
    title_name: str,
    n_clusters: int = 3,
    floor_mbps: float = LOW_THROUGHPUT_FLOOR_MBPS,
) -> List[Dict[str, float]]:
    """Detect per-title throughput clusters (the 2–4 groups of Fig. 12a).

    A simple 1-D k-means over session throughputs; returns one summary per
    cluster ordered by increasing centre.
    """
    values = np.array(
        [
            r.avg_downstream_mbps
            for r in _filter_records(records, floor_mbps)
            if r.title_name == title_name
        ]
    )
    if values.size == 0:
        return []
    n_clusters = int(min(n_clusters, max(1, np.unique(values).size)))
    # k-means++ style init on quantiles, then Lloyd iterations
    centers = np.quantile(values, np.linspace(0.1, 0.9, n_clusters))
    for _ in range(50):
        assignment = np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)
        new_centers = np.array(
            [
                values[assignment == k].mean() if np.any(assignment == k) else centers[k]
                for k in range(n_clusters)
            ]
        )
        if np.allclose(new_centers, centers):
            break
        centers = new_centers
    order = np.argsort(centers)
    clusters = []
    for rank, k in enumerate(order):
        members = values[assignment == k]
        if members.size == 0:
            continue
        clusters.append(
            {
                "cluster": float(rank),
                "center_mbps": float(members.mean()),
                "low_mbps": float(members.min()),
                "high_mbps": float(members.max()),
                "sessions": float(members.size),
            }
        )
    return clusters
