"""Traffic characterisation analyses (§3, Fig. 3–5).

These functions compute, from labeled sessions, the data series the paper
plots in its characterisation section: the full/steady/sparse launch scatter
(Fig. 3), the per-stage bidirectional throughput time series (Fig. 4) and
the stage playtime shares plus transition probabilities per gameplay
activity pattern (Fig. 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.packet_groups import PacketGroup, PacketGroupLabeler
from repro.core.transition import STAGE_ORDER
from repro.net.packet import Direction
from repro.net.timeseries import packet_rate_series, throughput_series
from repro.simulation.activity_model import gameplay_fractions
from repro.simulation.catalog import ActivityPattern, PlayerStage
from repro.simulation.session import GameSession


def launch_group_scatter(
    session: GameSession,
    window_seconds: float = 60.0,
    labeler: Optional[PacketGroupLabeler] = None,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Fig. 3 data: (arrival time, payload size) per packet group.

    Returns ``{"full"|"steady"|"sparse": {"times": ..., "sizes": ...}}`` for
    the downstream packets of the first ``window_seconds`` of the session.
    """
    labeler = labeler or PacketGroupLabeler()
    slots = labeler.label_window(session.packets, window_seconds=window_seconds)
    scatter = labeler.group_scatter(slots)
    return {
        group.value: {"times": times, "sizes": sizes}
        for group, (times, sizes) in scatter.items()
    }


def session_volumetric_timeseries(
    session: GameSession,
    slot_duration: float = 1.0,
) -> Dict[str, np.ndarray]:
    """Fig. 4 data: per-slot downstream Mbps, upstream Kbps and stage labels.

    Throughput is rescaled by the session's generation ``rate_scale`` so the
    series is reported at physical scale.
    """
    downstream = throughput_series(
        session.packets, slot_duration, Direction.DOWNSTREAM, duration=session.duration
    )
    upstream = throughput_series(
        session.packets, slot_duration, Direction.UPSTREAM, duration=session.duration
    )
    upstream_rate = packet_rate_series(
        session.packets, slot_duration, Direction.UPSTREAM, duration=session.duration
    )
    scale = session.rate_scale if session.rate_scale > 0 else 1.0
    n_slots = len(downstream)
    stages = [
        session.stage_at((index + 0.5) * slot_duration).value for index in range(n_slots)
    ]
    return {
        "time_s": downstream.slot_edges(),
        "down_mbps": downstream.values / scale,
        "up_kbps": upstream.values * 1000.0 / scale,
        "up_pps": upstream_rate.values / scale,
        "stage": np.array(stages),
    }


def stage_transition_statistics(
    sessions: Sequence[GameSession],
    slot_duration: float = 1.0,
) -> Dict[ActivityPattern, Dict[str, object]]:
    """Fig. 5 data: stage playtime shares and transition probabilities.

    For each gameplay activity pattern present in the corpus the function
    reports the mean fraction of gameplay time per stage and the stage-level
    transition probability matrix estimated from ground-truth timelines
    (row-stochastic, ordered active/passive/idle as in
    :data:`repro.core.transition.STAGE_ORDER`).
    """
    del slot_duration  # stage-level statistics use the ground-truth timeline
    by_pattern: Dict[ActivityPattern, List[GameSession]] = {}
    for session in sessions:
        by_pattern.setdefault(session.pattern, []).append(session)

    results: Dict[ActivityPattern, Dict[str, object]] = {}
    stage_index = {stage: i for i, stage in enumerate(STAGE_ORDER)}
    for pattern, group in by_pattern.items():
        fraction_totals = {stage: 0.0 for stage in PlayerStage.gameplay_stages()}
        counts = np.zeros((3, 3))
        for session in group:
            fractions = gameplay_fractions(session.timeline)
            for stage in PlayerStage.gameplay_stages():
                fraction_totals[stage] += fractions[stage]
            gameplay = [
                interval.stage
                for interval in session.timeline
                if interval.stage in stage_index
            ]
            for src, dst in zip(gameplay[:-1], gameplay[1:]):
                counts[stage_index[src], stage_index[dst]] += 1
        n_sessions = len(group)
        row_sums = counts.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            probabilities = np.where(row_sums > 0, counts / row_sums, 0.0)
        results[pattern] = {
            "stage_fractions": {
                stage: fraction_totals[stage] / n_sessions
                for stage in PlayerStage.gameplay_stages()
            },
            "transition_matrix": probabilities,
            "stage_order": tuple(stage.value for stage in STAGE_ORDER),
            "n_sessions": n_sessions,
        }
    return results


def packet_group_share(
    session: GameSession,
    window_seconds: float = 60.0,
    labeler: Optional[PacketGroupLabeler] = None,
) -> Dict[str, float]:
    """Fraction of launch-window downstream packets per group."""
    labeler = labeler or PacketGroupLabeler()
    slots = labeler.label_window(session.packets, window_seconds=window_seconds)
    counts = labeler.group_counts(slots)
    total = sum(counts.values())
    if total == 0:
        return {group.value: 0.0 for group in PacketGroup}
    return {group.value: counts[group] / total for group in PacketGroup}
