"""Objective vs effective QoE aggregation (Fig. 13, §5.3).

For every ISP session record the ISP's observability module produces an
*objective* QoE level from fixed expected value ranges, and the paper's
calibration produces an *effective* QoE level whose frame-rate/throughput
expectations are scaled by the classified context.  Fig. 13 compares the
fraction of sessions per level before and after calibration, per title and
per gameplay activity pattern.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.qoe import EffectiveQoECalibrator, QoELevel, QoEMetrics
from repro.simulation.catalog import ActivityPattern, PlayerStage, UNKNOWN_TITLE
from repro.simulation.isp import SessionRecord


def _record_metrics(record: SessionRecord) -> QoEMetrics:
    """Objective QoE metrics of one ISP session record."""
    return QoEMetrics(
        frame_rate=record.avg_frame_rate,
        throughput_mbps=record.avg_downstream_mbps,
        latency_ms=record.latency_ms,
        loss_rate=record.loss_rate,
    )


def session_qoe_levels(
    record: SessionRecord,
    calibrator: Optional[EffectiveQoECalibrator] = None,
) -> Dict[str, QoELevel]:
    """Objective and effective QoE levels of one session record.

    The effective level uses the *classified* context exactly as the deployed
    system would: the classified title when available, otherwise the
    gameplay activity pattern, plus the measured per-stage playtime mix and
    the subscriber's frame-rate setting.
    """
    calibrator = calibrator or EffectiveQoECalibrator()
    metrics = _record_metrics(record)
    stage_fractions = {
        stage: record.stage_fraction(stage) for stage in PlayerStage.gameplay_stages()
    }
    title = None if record.classified_title == UNKNOWN_TITLE else record.classified_title
    return {
        "objective": calibrator.objective_level(metrics),
        "effective": calibrator.effective_level(
            metrics,
            title_name=title,
            pattern=record.pattern,
            stage_fractions=stage_fractions,
            fps_setting=record.fps_setting,
        ),
    }


def _level_fractions(levels: Sequence[QoELevel]) -> Dict[str, float]:
    total = len(levels)
    if total == 0:
        return {level.value: 0.0 for level in QoELevel}
    return {
        level.value: sum(1 for item in levels if item is level) / total
        for level in QoELevel
    }


def _aggregate(
    records: Sequence[SessionRecord],
    calibrator: EffectiveQoECalibrator,
) -> Dict[str, Dict[str, float]]:
    objective: List[QoELevel] = []
    effective: List[QoELevel] = []
    for record in records:
        levels = session_qoe_levels(record, calibrator)
        objective.append(levels["objective"])
        effective.append(levels["effective"])
    return {
        "objective": _level_fractions(objective),
        "effective": _level_fractions(effective),
        "sessions": {"count": float(len(records))},
    }


def qoe_levels_by_title(
    records: Sequence[SessionRecord],
    calibrator: Optional[EffectiveQoECalibrator] = None,
    include_unknown: bool = False,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 13a: objective vs effective QoE fractions per title."""
    calibrator = calibrator or EffectiveQoECalibrator()
    grouped: Dict[str, List[SessionRecord]] = {}
    for record in records:
        if record.title_name == UNKNOWN_TITLE and not include_unknown:
            continue
        grouped.setdefault(record.title_name, []).append(record)
    return {title: _aggregate(group, calibrator) for title, group in grouped.items()}


def qoe_levels_by_pattern(
    records: Sequence[SessionRecord],
    calibrator: Optional[EffectiveQoECalibrator] = None,
    unknown_only: bool = True,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 13b: objective vs effective QoE fractions per activity pattern."""
    calibrator = calibrator or EffectiveQoECalibrator()
    grouped: Dict[ActivityPattern, List[SessionRecord]] = {}
    for record in records:
        if unknown_only and record.title_name != UNKNOWN_TITLE:
            continue
        grouped.setdefault(record.pattern, []).append(record)
    return {
        pattern.value: _aggregate(group, calibrator)
        for pattern, group in grouped.items()
    }


def mislabel_correction_summary(
    records: Sequence[SessionRecord],
    calibrator: Optional[EffectiveQoECalibrator] = None,
) -> Dict[str, float]:
    """Quantify how calibration reduces falsely-poor labels (§5.3 narrative).

    Returns the fraction of sessions whose objective label was medium/bad but
    whose effective label is good, split by whether the access network was
    genuinely degraded (those should *not* be corrected).
    """
    calibrator = calibrator or EffectiveQoECalibrator()
    corrected_healthy = 0
    corrected_degraded = 0
    poor_objective = 0
    degraded_still_flagged = 0
    degraded_total = 0
    for record in records:
        levels = session_qoe_levels(record, calibrator)
        objective_poor = levels["objective"] is not QoELevel.GOOD
        effective_good = levels["effective"] is QoELevel.GOOD
        if record.network_degraded:
            degraded_total += 1
            if levels["effective"] is not QoELevel.GOOD:
                degraded_still_flagged += 1
        if objective_poor:
            poor_objective += 1
            if effective_good:
                if record.network_degraded:
                    corrected_degraded += 1
                else:
                    corrected_healthy += 1
    total = len(records)
    return {
        "poor_objective_fraction": poor_objective / total if total else 0.0,
        "corrected_fraction": (corrected_healthy + corrected_degraded) / poor_objective
        if poor_objective
        else 0.0,
        "corrected_healthy": corrected_healthy,
        "corrected_degraded": corrected_degraded,
        "degraded_recall": degraded_still_flagged / degraded_total
        if degraded_total
        else 0.0,
    }
