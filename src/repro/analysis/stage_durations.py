"""Per-session stage-duration aggregation (Fig. 11).

Fig. 11 of the paper reports, for the three-month ISP deployment, the average
number of minutes per session spent in the active, passive and idle player
activity stages, per game title (11a) and per gameplay activity pattern for
sessions outside the 13-title catalog (11b).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.simulation.catalog import ActivityPattern, PlayerStage, UNKNOWN_TITLE
from repro.simulation.isp import SessionRecord

_GAMEPLAY_STAGES = PlayerStage.gameplay_stages()


def _average_stage_minutes(records: Sequence[SessionRecord]) -> Dict[str, float]:
    """Average minutes per stage plus total duration for a record group."""
    if not records:
        return {stage.value: 0.0 for stage in _GAMEPLAY_STAGES} | {"total": 0.0}
    totals = {stage: 0.0 for stage in _GAMEPLAY_STAGES}
    total_duration = 0.0
    for record in records:
        for stage in _GAMEPLAY_STAGES:
            totals[stage] += record.stage_minutes.get(stage, 0.0)
        total_duration += record.duration_minutes
    count = len(records)
    summary = {stage.value: totals[stage] / count for stage in _GAMEPLAY_STAGES}
    summary["total"] = total_duration / count
    summary["sessions"] = float(count)
    return summary


def stage_minutes_by_title(
    records: Sequence[SessionRecord],
    include_unknown: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Fig. 11a: average minutes per stage per game title.

    Unknown (long-tail) titles are excluded by default, as Fig. 11a only
    covers the 13 popular titles.
    """
    grouped: Dict[str, List[SessionRecord]] = {}
    for record in records:
        if record.title_name == UNKNOWN_TITLE and not include_unknown:
            continue
        grouped.setdefault(record.title_name, []).append(record)
    return {title: _average_stage_minutes(group) for title, group in grouped.items()}


def stage_minutes_by_pattern(
    records: Sequence[SessionRecord],
    unknown_only: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Fig. 11b: average minutes per stage per gameplay activity pattern.

    By default only sessions whose title is outside the catalog are included,
    matching the paper's use of the pattern fallback for unrecognised titles.
    """
    grouped: Dict[ActivityPattern, List[SessionRecord]] = {}
    for record in records:
        if unknown_only and record.title_name != UNKNOWN_TITLE:
            continue
        grouped.setdefault(record.pattern, []).append(record)
    return {
        pattern.value: _average_stage_minutes(group)
        for pattern, group in grouped.items()
    }


def session_duration_ranking(
    records: Sequence[SessionRecord],
) -> List[tuple[str, float]]:
    """Titles ranked by average session duration (longest first)."""
    by_title = stage_minutes_by_title(records)
    ranking = [(title, summary["total"]) for title, summary in by_title.items()]
    return sorted(ranking, key=lambda item: item[1], reverse=True)
