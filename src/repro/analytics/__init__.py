"""Fleet QoE analytics tier: mergeable sketches and event-stream rollups.

* :mod:`repro.analytics.sketches` — deterministic mergeable aggregates
  (fixed-point stats, log-bucket quantile histogram, fixed-cell centroid
  sketch) whose merge is exactly associative and commutative, so any fold
  topology over the same values yields byte-identical state.
* :mod:`repro.analytics.fleet` — the :class:`FleetAggregator` folding the
  runtime's context event stream into per-``(region, title, qoe_mode)``
  rollups (p50/p95 frame lag, freeze rate, loss, throughput, shed and
  degrade counts) with zero per-session retention, plus the offline
  :func:`fold_corpus` reference producing bit-identical rollups.

This package sits *above* :mod:`repro.runtime`: the runtime never imports
it at module level (engines attach an aggregator lazily), so either import
order is safe.
"""

from repro.analytics.fleet import (
    DEFAULT_REGION,
    FleetAggregator,
    FleetRollup,
    RollupKey,
    fold_corpus,
)
from repro.analytics.sketches import (
    CentroidSketch,
    LogBucketHistogram,
    MergeableSketch,
    SCALE_BITS,
    StatsAccumulator,
    scaled,
    state_digest,
    unscaled,
)

__all__ = [
    "CentroidSketch",
    "DEFAULT_REGION",
    "FleetAggregator",
    "FleetRollup",
    "LogBucketHistogram",
    "MergeableSketch",
    "RollupKey",
    "SCALE_BITS",
    "StatsAccumulator",
    "fold_corpus",
    "scaled",
    "state_digest",
    "unscaled",
]
