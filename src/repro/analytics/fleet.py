"""Fleet-wide QoE rollups over the runtime's context event stream.

The streaming runtime emits per-flow context events; ISP operations wants
the *fleet* view — "p95 frame lag of Fortnite sessions in eu-central over
the last run", "freeze rate per title", "how many flows did the overload
policy shed per region".  The :class:`FleetAggregator` folds the event
stream into per-``(region, title, qoe_mode)`` rollups built exclusively
from the deterministic mergeable sketches of
:mod:`repro.analytics.sketches`, which buys the tier's two defining
properties (DESIGN.md §10):

* **bit-identical everywhere** — the same corpus folded offline
  (:func:`fold_corpus`), through a single-process
  :class:`~repro.runtime.engine.StreamingEngine`, or across a sharded
  fleet with seeded worker crashes, yields byte-identical rollup state
  (``digest()`` equality is pinned by the fault-matrix tests);
* **zero per-session retention** — a flow's in-flight contribution lives
  in one O(1) :class:`_PendingFlow` that is folded into its rollup and
  dropped the moment the flow closes (``SessionReport``) or is shed
  (``FlowShed``); rollup state is O(keys), not O(sessions).

What folds at which granularity is deliberate. Window-level metrics
(frame lag, throughput, freeze/zero/partial counts, the candidate-gap
ledger) are chunking-invariant per sealed window, so they fold from
``QoEInterval`` events.  Loss rate is *not* chunking-invariant per window
in the approx tier (the counting-set delta depends on seal timing), so it
folds once per session from the close report's ``objective_metrics`` —
as do the objective/effective QoE level tallies, which derive from it.

The rollup's mode key is ``"approx"`` or ``"exact"`` — the one QoE
distinction visible in the event stream (``bounded`` and ``full`` session
modes produce bit-identical reports and are indistinguishable by design).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analytics.sketches import (
    CentroidSketch,
    LogBucketHistogram,
    StatsAccumulator,
    state_digest,
)
from repro.core.reducers import ApproxQoEIntervalReducer, QoEIntervalReducer
from repro.core.title_classifier import UNKNOWN_TITLE
from repro.net.flow import FlowKey
from repro.net.packet import Direction
from repro.runtime.events import (
    ContextEvent,
    FlowShed,
    QoEInterval,
    SessionReport,
    TitleClassified,
    TitleReclassified,
)
from repro.runtime.state import FlowContext

__all__ = [
    "DEFAULT_REGION",
    "FleetAggregator",
    "FleetRollup",
    "RollupKey",
    "fold_corpus",
]

#: Region a flow folds under when its :class:`FlowContext` carries no tag.
DEFAULT_REGION = "unassigned"

#: ``(region, title, qoe_mode)`` — the rollup partition key.
RollupKey = Tuple[str, str, str]

_LEVELS = ("good", "medium", "bad")

# Sketch layouts (configuration, shared by every rollup so any two merge):
# frame lag in ms spans sub-ms pacing to multi-second stalls; throughput in
# Mbps spans idle trickles to lab-grade links; loss is a rate in [0, 1].
_LAG_SKETCH = (0.1, 1.0e5, 1.05)
_THROUGHPUT_SKETCH = (1.0e-3, 1.0e4, 1.05)
_LOSS_SKETCH = (1.0e-6, 1.0, 1.1)


class FleetRollup:
    """Mergeable aggregate state of one ``(region, title, mode)`` key.

    Every field is either an integer counter or a sketch from
    :mod:`repro.analytics.sketches`, so :meth:`merge` is associative and
    commutative and the state is a pure function of the folded events.
    """

    __slots__ = (
        "lag_ms",
        "throughput_mbps",
        "loss_rate",
        "duration_s",
        "n_windows",
        "n_frozen_windows",
        "n_partial_windows",
        "n_zero_windows",
        "candidate_gap_packets",
        "n_sessions",
        "n_packets",
        "n_shed",
        "n_reclassified",
        "objective_levels",
        "effective_levels",
    )

    def __init__(self) -> None:
        self.lag_ms = CentroidSketch(*_LAG_SKETCH)
        self.throughput_mbps = CentroidSketch(*_THROUGHPUT_SKETCH)
        self.loss_rate = LogBucketHistogram(*_LOSS_SKETCH)
        self.duration_s = StatsAccumulator()
        self.n_windows = 0
        self.n_frozen_windows = 0
        self.n_partial_windows = 0
        self.n_zero_windows = 0
        self.candidate_gap_packets = 0
        self.n_sessions = 0
        self.n_packets = 0
        self.n_shed = 0
        self.n_reclassified = 0
        self.objective_levels = {level: 0 for level in _LEVELS}
        self.effective_levels = {level: 0 for level in _LEVELS}

    # ------------------------------------------------------------ folding
    def fold_interval(self, event: QoEInterval) -> None:
        """Fold one sealed measurement window (chunking-invariant fields)."""
        self.n_windows += 1
        if event.n_packets == 0:
            self.n_zero_windows += 1
        if event.partial:
            self.n_partial_windows += 1
        # the approx tier flags freezes explicitly; the exact tier can only
        # infer one from a window that carried packets but advanced no frame
        if event.frozen or (
            not event.approximate
            and event.n_packets > 0
            and event.metrics.frame_rate == 0.0
        ):
            self.n_frozen_windows += 1
        if event.metrics.streaming_lag_ms is not None:
            self.lag_ms.add(event.metrics.streaming_lag_ms)
        self.throughput_mbps.add(event.metrics.throughput_mbps)
        self.candidate_gap_packets += event.candidate_gap_packets

    def fold_report(self, event: SessionReport) -> None:
        """Fold one close report (session-granularity fields)."""
        report = event.report
        self.n_sessions += 1
        self.n_packets += event.n_packets
        self.duration_s.add(event.duration_s)
        self.loss_rate.add(report.objective_metrics.loss_rate)
        self.objective_levels[report.objective_qoe.value] += 1
        self.effective_levels[report.effective_qoe.value] += 1

    def merge(self, other: "FleetRollup") -> None:
        """Fold ``other`` into this rollup in place.

        Sketch merges are exactly associative (fixed-point accumulation
        over a frozen bucket layout), so merging per-shard rollups yields
        a rollup bit-identical to single-engine streaming — the invariant
        behind :meth:`FleetAggregator.digest` equality.
        """
        self.lag_ms.merge(other.lag_ms)
        self.throughput_mbps.merge(other.throughput_mbps)
        self.loss_rate.merge(other.loss_rate)
        self.duration_s.merge(other.duration_s)
        self.n_windows += other.n_windows
        self.n_frozen_windows += other.n_frozen_windows
        self.n_partial_windows += other.n_partial_windows
        self.n_zero_windows += other.n_zero_windows
        self.candidate_gap_packets += other.candidate_gap_packets
        self.n_sessions += other.n_sessions
        self.n_packets += other.n_packets
        self.n_shed += other.n_shed
        self.n_reclassified += other.n_reclassified
        for level in _LEVELS:
            self.objective_levels[level] += other.objective_levels[level]
            self.effective_levels[level] += other.effective_levels[level]

    # ------------------------------------------------------------ reading
    @property
    def freeze_rate(self) -> float:
        """Fraction of measurement windows flagged frozen."""
        return self.n_frozen_windows / self.n_windows if self.n_windows else 0.0

    def summary(self) -> dict:
        """Operator-facing digest of this key's rollup."""
        return {
            "n_sessions": self.n_sessions,
            "n_windows": self.n_windows,
            "n_packets": self.n_packets,
            "lag_p50_ms": self.lag_ms.quantile(0.5),
            "lag_p95_ms": self.lag_ms.quantile(0.95),
            "throughput_p50_mbps": self.throughput_mbps.quantile(0.5),
            "freeze_rate": self.freeze_rate,
            "loss_p50": self.loss_rate.quantile(0.5),
            "loss_p95": self.loss_rate.quantile(0.95),
            "candidate_gap_packets": self.candidate_gap_packets,
            "n_shed": self.n_shed,
            "n_reclassified": self.n_reclassified,
            "objective_levels": dict(self.objective_levels),
            "effective_levels": dict(self.effective_levels),
        }

    # ------------------------------------------------------------ identity
    def state(self) -> tuple:
        """Canonical value tuple (every sketch and counter) for digesting."""
        return (
            "rollup",
            self.lag_ms.state(),
            self.throughput_mbps.state(),
            self.loss_rate.state(),
            self.duration_s.state(),
            self.n_windows,
            self.n_frozen_windows,
            self.n_partial_windows,
            self.n_zero_windows,
            self.candidate_gap_packets,
            self.n_sessions,
            self.n_packets,
            self.n_shed,
            self.n_reclassified,
            tuple(self.objective_levels[level] for level in _LEVELS),
            tuple(self.effective_levels[level] for level in _LEVELS),
        )

    def snapshot(self) -> dict:
        """Pickle-friendly state dict, inverted by :meth:`from_snapshot`."""
        return {
            "lag_ms": self.lag_ms.snapshot(),
            "throughput_mbps": self.throughput_mbps.snapshot(),
            "loss_rate": self.loss_rate.snapshot(),
            "duration_s": self.duration_s.snapshot(),
            "counters": (
                self.n_windows,
                self.n_frozen_windows,
                self.n_partial_windows,
                self.n_zero_windows,
                self.candidate_gap_packets,
                self.n_sessions,
                self.n_packets,
                self.n_shed,
                self.n_reclassified,
            ),
            "objective_levels": dict(self.objective_levels),
            "effective_levels": dict(self.effective_levels),
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "FleetRollup":
        """Rebuild a rollup whose :meth:`state` equals the snapshotted one."""
        rollup = cls.__new__(cls)
        rollup.lag_ms = CentroidSketch.from_snapshot(snapshot["lag_ms"])
        rollup.throughput_mbps = CentroidSketch.from_snapshot(
            snapshot["throughput_mbps"]
        )
        rollup.loss_rate = LogBucketHistogram.from_snapshot(snapshot["loss_rate"])
        rollup.duration_s = StatsAccumulator.from_snapshot(snapshot["duration_s"])
        (
            rollup.n_windows,
            rollup.n_frozen_windows,
            rollup.n_partial_windows,
            rollup.n_zero_windows,
            rollup.candidate_gap_packets,
            rollup.n_sessions,
            rollup.n_packets,
            rollup.n_shed,
            rollup.n_reclassified,
        ) = snapshot["counters"]
        rollup.objective_levels = dict(snapshot["objective_levels"])
        rollup.effective_levels = dict(snapshot["effective_levels"])
        return rollup

    def nbytes(self) -> int:
        """Retained bytes of this rollup (sketches + counters)."""
        return (
            self.lag_ms.nbytes()
            + self.throughput_mbps.nbytes()
            + self.loss_rate.nbytes()
            + self.duration_s.nbytes()
            + 9 * 8
            + 6 * 8
        )


class _PendingFlow:
    """In-flight contribution of one live flow (O(1), dropped at close)."""

    __slots__ = ("rollup", "title", "approximate")

    def __init__(self) -> None:
        self.rollup = FleetRollup()
        self.title: Optional[str] = None
        self.approximate: Optional[bool] = None

    def snapshot(self) -> dict:
        return {
            "rollup": self.rollup.snapshot(),
            "title": self.title,
            "approximate": self.approximate,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "_PendingFlow":
        pending = cls.__new__(cls)
        pending.rollup = FleetRollup.from_snapshot(snapshot["rollup"])
        pending.title = snapshot["title"]
        pending.approximate = snapshot["approximate"]
        return pending


class FleetAggregator:
    """Fold the runtime's event stream into per-(region, title, mode) rollups.

    Attach one to a :class:`~repro.runtime.engine.StreamingEngine`
    (``analytics=True``) or a :class:`~repro.runtime.shard.ShardedEngine`
    and it consumes every emitted event; shard-local aggregators ride the
    checkpoint protocol and merge at the parent, offline folds come from
    :func:`fold_corpus`.  All three paths produce byte-identical state
    (:meth:`digest`).
    """

    def __init__(self, default_region: str = DEFAULT_REGION) -> None:
        self.default_region = default_region
        self._rollups: Dict[RollupKey, FleetRollup] = {}
        self._pending: Dict[FlowKey, _PendingFlow] = {}
        self.n_intervals = 0  # QoEInterval events folded (bench throughput)
        self.n_reports = 0  # SessionReport events folded

    # ------------------------------------------------------------ folding
    def observe(
        self,
        event: ContextEvent,
        contexts: Optional[Mapping[FlowKey, FlowContext]] = None,
    ) -> None:
        """Fold one runtime event; ``contexts`` supplies region tags."""
        if isinstance(event, QoEInterval):
            pending = self._pend(event.flow)
            pending.rollup.fold_interval(event)
            pending.approximate = event.approximate
            self.n_intervals += 1
        elif isinstance(event, SessionReport):
            pending = self._pending.pop(event.flow, None) or _PendingFlow()
            pending.rollup.fold_report(event)
            key = (
                self._region(event.flow, contexts),
                event.report.title.title,
                "approx" if event.report.qoe_approximate else "exact",
            )
            self._fold_into(key, pending.rollup)
            self.n_reports += 1
        elif isinstance(event, FlowShed):
            # no close report ever arrives for a shed flow: account for it
            # under the last title the event stream established
            pending = self._pending.pop(event.flow, None) or _PendingFlow()
            pending.rollup.n_shed += 1
            key = (
                self._region(event.flow, contexts),
                pending.title if pending.title is not None else UNKNOWN_TITLE,
                "approx" if pending.approximate else "exact",
            )
            self._fold_into(key, pending.rollup)
        elif isinstance(event, TitleReclassified):
            pending = self._pend(event.flow)
            pending.rollup.n_reclassified += 1
            pending.title = event.prediction.title
        elif isinstance(event, TitleClassified):
            self._pend(event.flow).title = event.prediction.title
        # SessionStarted / StageUpdate / PatternInferred / SessionRecovered /
        # WorkerRestarted carry nothing the rollups track

    def observe_all(
        self,
        events: Iterable[ContextEvent],
        contexts: Optional[Mapping[FlowKey, FlowContext]] = None,
    ) -> None:
        """Fold an event iterable via :meth:`observe`, in order."""
        for event in events:
            self.observe(event, contexts)

    def _pend(self, flow: FlowKey) -> _PendingFlow:
        pending = self._pending.get(flow)
        if pending is None:
            pending = self._pending[flow] = _PendingFlow()
        return pending

    def _region(
        self, flow: FlowKey, contexts: Optional[Mapping[FlowKey, FlowContext]]
    ) -> str:
        context = contexts.get(flow) if contexts is not None else None
        if context is not None and context.region is not None:
            return context.region
        return self.default_region

    def _fold_into(self, key: RollupKey, rollup: FleetRollup) -> None:
        existing = self._rollups.get(key)
        if existing is None:
            self._rollups[key] = rollup
        else:
            existing.merge(rollup)

    # ------------------------------------------------------------ merging
    def merge(self, other: "FleetAggregator") -> None:
        """Fold another aggregator's state into this one (shard fan-in)."""
        for key, rollup in other._rollups.items():
            self._fold_into(key, FleetRollup.from_snapshot(rollup.snapshot()))
        for flow, pending in other._pending.items():
            mine = self._pending.get(flow)
            if mine is None:
                self._pending[flow] = _PendingFlow.from_snapshot(pending.snapshot())
            else:
                mine.rollup.merge(pending.rollup)
                if pending.title is not None:
                    mine.title = pending.title
                if pending.approximate is not None:
                    mine.approximate = pending.approximate
        self.n_intervals += other.n_intervals
        self.n_reports += other.n_reports

    # ------------------------------------------------------------ reading
    def keys(self) -> List[RollupKey]:
        """All ``(region, title, qoe_mode)`` rollup keys, sorted."""
        return sorted(self._rollups)

    def rollup(self, key: RollupKey) -> FleetRollup:
        """The rollup for ``key``; raises ``KeyError`` if never folded."""
        return self._rollups[key]

    @property
    def n_live_flows(self) -> int:
        """Flows currently holding in-flight (pending) state."""
        return len(self._pending)

    def summary(self) -> Dict[RollupKey, dict]:
        """Per-key operator digest, deterministically key-ordered."""
        return {key: self._rollups[key].summary() for key in self.keys()}

    def nbytes(self) -> int:
        """Approximate retained bytes: O(rollup keys + live flows)."""
        total = sum(rollup.nbytes() for rollup in self._rollups.values())
        total += sum(p.rollup.nbytes() + 64 for p in self._pending.values())
        return total

    # ------------------------------------------------------------ identity
    def state(self) -> tuple:
        """Canonical state tuple; equality ⇔ identical folded history."""
        rollups = tuple(
            (key, self._rollups[key].state()) for key in sorted(self._rollups)
        )
        pending = tuple(
            (repr(flow), p.rollup.state(), p.title, p.approximate)
            for flow, p in sorted(self._pending.items(), key=lambda kv: repr(kv[0]))
        )
        return ("fleet", rollups, pending, self.n_intervals, self.n_reports)

    def digest(self) -> str:
        """Hex digest of :meth:`state` — the bit-identity handle the tests pin."""
        return state_digest(self.state())

    # ------------------------------------------------------------ snapshots
    def snapshot(self) -> dict:
        """Picklable full state (rides the shard checkpoint protocol)."""
        return {
            "default_region": self.default_region,
            "rollups": {
                key: self._rollups[key].snapshot() for key in sorted(self._rollups)
            },
            "pending": {
                flow: pending.snapshot() for flow, pending in self._pending.items()
            },
            "n_intervals": self.n_intervals,
            "n_reports": self.n_reports,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "FleetAggregator":
        """Rebuild an aggregator with a :meth:`digest` equal to the source's."""
        aggregator = cls(default_region=snapshot["default_region"])
        aggregator._rollups = {
            key: FleetRollup.from_snapshot(payload)
            for key, payload in snapshot["rollups"].items()
        }
        aggregator._pending = {
            flow: _PendingFlow.from_snapshot(payload)
            for flow, payload in snapshot["pending"].items()
        }
        aggregator.n_intervals = snapshot["n_intervals"]
        aggregator.n_reports = snapshot["n_reports"]
        return aggregator


def fold_corpus(
    pipeline,
    sessions: Sequence,
    *,
    reports: Optional[Sequence] = None,
    regions: Optional[Sequence[Optional[str]]] = None,
    latency_ms: Optional[float] = None,
    qoe_mode: str = "exact",
    qoe_interval_s: float = 10.0,
    client_port_base: int = 52000,
    aggregator: Optional[FleetAggregator] = None,
) -> FleetAggregator:
    """Offline batch fold: the serial reference for the streaming rollups.

    Replays what the runtime does per session — seal measurement windows
    against the *corpus-wide* clock (so zero-traffic windows of short
    sessions seal exactly as they would in a live feed where other flows
    keep the clock running), build each window's :class:`QoEInterval` via
    the engine's shared :func:`~repro.runtime.engine.
    build_qoe_interval_event`, and close with the batched
    ``process_many`` report — then folds the resulting event stream into a
    :class:`FleetAggregator`.  The result is bit-identical
    (:meth:`FleetAggregator.digest`) to running the same sessions through a
    :class:`~repro.runtime.engine.StreamingEngine` over a
    :class:`~repro.runtime.feed.SessionFeed` (no start offsets, no idle
    timeout), single-process or sharded.

    Parameters mirror the feed: ``regions`` tags sessions positionally,
    ``client_port_base`` re-addresses each session to a distinct flow.
    ``reports`` short-circuits classification when the caller already has
    the ``process_many`` output for these sessions (same order and
    ``qoe_mode``).
    """
    from repro.runtime.engine import build_qoe_interval_event

    sessions = list(sessions)
    if regions is not None and len(regions) != len(sessions):
        raise ValueError(f"{len(sessions)} sessions but {len(regions)} regions")
    if reports is None:
        reports = pipeline.process_many(sessions, latency_ms, qoe_mode=qoe_mode)
    elif len(reports) != len(sessions):
        raise ValueError(f"{len(sessions)} sessions but {len(reports)} reports")
    if aggregator is None:
        aggregator = FleetAggregator()

    streams = [session.packets for session in sessions]
    ends = [
        float(stream.columns().timestamps[-1])
        for stream in streams
        if len(stream.columns())
    ]
    if not ends:
        return aggregator
    clock_end = max(ends)  # the feed clock every flow seals against

    for index, (session, stream, report) in enumerate(
        zip(sessions, streams, reports)
    ):
        columns = stream.columns()
        if not len(columns):
            continue
        origin = float(columns.timestamps[0])
        last_ts = float(columns.timestamps[-1])
        key = FlowKey(
            client_ip=session.client_ip,
            client_port=client_port_base + index,
            server_ip=session.server_ip,
            server_port=49004,
        )
        context = FlowContext(
            platform="GeForce NOW",
            rate_scale=session.rate_scale,
            region=regions[index] if regions is not None else None,
        )
        if qoe_mode == "approx":
            reducer = ApproxQoEIntervalReducer(qoe_interval_s)
        else:
            reducer = QoEIntervalReducer(qoe_interval_s)
        down_times = stream.timestamps(Direction.DOWNSTREAM)
        down_sizes = stream.payload_sizes(Direction.DOWNSTREAM)
        sequences = columns.rtp_sequence
        rtp_times = columns.rtp_timestamp
        if sequences is not None or rtp_times is not None:
            down_rows = stream.direction_indices(Direction.DOWNSTREAM)
        reducer.absorb_arrays(
            down_times,
            down_sizes,
            sequences[down_rows] if sequences is not None else None,
            rtp_times[down_rows] if rtp_times is not None else None,
            origin,
        )
        sealed = reducer.advance(clock_end, origin)
        sealed.extend(reducer.flush(origin, last_ts))
        contexts = {key: context}
        for interval in sealed:
            aggregator.observe(
                build_qoe_interval_event(
                    pipeline, key, context, interval, latency_ms=latency_ms
                ),
                contexts,
            )
        aggregator.observe(
            SessionReport(
                flow=key,
                time=clock_end,
                report=report,
                reason="eof",
                n_packets=len(columns),
                duration_s=last_ts - origin,
            ),
            contexts,
        )
    return aggregator
