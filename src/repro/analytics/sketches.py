"""Deterministic mergeable aggregates for the fleet analytics tier.

A fleet rollup folds values from millions of sessions across many shard
processes, offline batch folds and crash/replay recoveries — and the whole
point of the tier (DESIGN.md §10) is that every one of those paths produces
the *bit-identical* aggregate.  That rules out two standard ingredients:

* **floating-point accumulation** — float sums depend on fold order, so
  every sum here is an exact integer: values are scaled by ``2**20`` and
  rounded once on entry (:func:`scaled`), after which addition is
  arbitrary-precision integer arithmetic and therefore associative and
  commutative;
* **data-dependent bucket boundaries** — a true t-digest compresses
  centroids as it grows, so ``merge(a, b)`` and ``merge(b, a)`` diverge.
  The :class:`CentroidSketch` keeps the t-digest's *estimate* (interpolate
  between per-cluster means) but pins the cluster boundaries to a fixed
  log-spaced partition of the value axis, making its state a pure function
  of the value multiset.

Every sketch's state is consequently **order- and chunking-invariant**: any
partition of a value multiset, folded in any order across any number of
sketch instances and merged, yields byte-identical state (pinned by the
property tests in ``tests/test_fleet_analytics.py``).  All state is O(1) in
the number of values folded.

Three concrete sketches behind one :class:`MergeableSketch` API:

=====================  ======================================================
:class:`StatsAccumulator`   count / exact sum / min / max (no quantiles)
:class:`LogBucketHistogram` fixed log-spaced bins; quantiles within a
                            relative error of ``sqrt(growth) - 1``
:class:`CentroidSketch`     per-cell (count, exact sum); quantiles
                            interpolate between cell means — same worst-case
                            bound, far tighter on smooth distributions
=====================  ======================================================
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "CentroidSketch",
    "LogBucketHistogram",
    "MergeableSketch",
    "SCALE_BITS",
    "StatsAccumulator",
    "scaled",
    "state_digest",
    "unscaled",
]

#: Fixed-point precision of every sum: values are scaled by ``2**SCALE_BITS``
#: and rounded once on entry, so sums are exact integers (order-free).
SCALE_BITS = 20
_SCALE = float(1 << SCALE_BITS)


def scaled(values: np.ndarray) -> np.ndarray:
    """Values as fixed-point integers (round-half-even, like ``round``)."""
    return np.rint(np.asarray(values, dtype=float) * _SCALE).astype(np.int64)


def unscaled(total: int) -> float:
    """A fixed-point integer sum back as a float."""
    return float(total) / _SCALE


def _digest_update(hasher, item) -> None:
    """Fold one canonical-state item into a hash, type-tagged and exact.

    Floats go in via ``hex()`` (exact round-trip representation), ints and
    strings via ``repr``, arrays via raw bytes — so two states hash equal
    iff they are bit-identical.
    """
    if isinstance(item, tuple):
        hasher.update(b"(")
        for part in item:
            _digest_update(hasher, part)
        hasher.update(b")")
    elif isinstance(item, float):
        hasher.update(item.hex().encode())
    elif isinstance(item, bytes):
        hasher.update(item)
    else:
        hasher.update(repr(item).encode())
    hasher.update(b";")


def state_digest(state: tuple) -> str:
    """Hex digest of a canonical :meth:`MergeableSketch.state` tuple."""
    hasher = hashlib.sha256()
    _digest_update(hasher, state)
    return hasher.hexdigest()


class MergeableSketch:
    """API shared by every fleet-tier aggregate.

    Subclasses implement :meth:`add_many`, :meth:`merge`, :meth:`state`,
    :meth:`snapshot` / :meth:`restore` and :meth:`nbytes`; the base class
    provides scalar :meth:`add`, equality (exact state comparison) and the
    digest used by the bit-identity tests.
    """

    __slots__ = ()

    def add(self, value: float) -> None:
        """Fold one value."""
        self.add_many(np.asarray([value], dtype=float))

    def add_many(self, values: np.ndarray) -> None:
        """Fold a batch of values (order inside the batch is irrelevant)."""
        raise NotImplementedError

    def merge(self, other: "MergeableSketch") -> None:
        """Fold another sketch's state into this one (in place).

        Associative and commutative: any merge tree over the same leaf
        states produces byte-identical state.  Both sketches must share a
        configuration (same class, same bin layout).
        """
        raise NotImplementedError

    def state(self) -> tuple:
        """Canonical state: nested tuples of ints/floats/bytes.

        Two sketches fold the same value multiset iff their states compare
        equal — the contract the algebra property tests pin.
        """
        raise NotImplementedError

    def snapshot(self) -> dict:
        """Picklable state dict (rides the engine checkpoint protocol)."""
        raise NotImplementedError

    def restore(self, snapshot: dict) -> None:
        """Adopt a :meth:`snapshot`."""
        raise NotImplementedError

    def nbytes(self) -> int:
        """Approximate retained bytes (O(1) in values folded)."""
        raise NotImplementedError

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MergeableSketch":
        sketch = cls.__new__(cls)
        # restore() implementations only assign attributes, so a blank
        # instance is a valid target
        sketch.restore(snapshot)
        return sketch

    def digest(self) -> str:
        return state_digest(self.state())

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.state() == other.state()

    def __hash__(self):  # states are mutable; identity hashing only
        return id(self)

    def _require_same_layout(self, other: "MergeableSketch", fields) -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        for name in fields:
            if getattr(self, name) != getattr(other, name):
                raise ValueError(
                    f"cannot merge sketches with different {name}: "
                    f"{getattr(self, name)!r} != {getattr(other, name)!r}"
                )


class StatsAccumulator(MergeableSketch):
    """Exact count / sum / min / max of a value stream.

    The sum is fixed-point (:func:`scaled`), so accumulation is integer
    arithmetic — associative, commutative and overflow-free (Python ints).
    """

    __slots__ = ("count", "scaled_sum", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self.scaled_sum = 0
        self._min = float("inf")
        self._max = float("-inf")

    def add_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        if not values.size:
            return
        self.count += int(values.size)
        # sum the int64 fixed-point values under Python ints: exact
        self.scaled_sum += int(scaled(values).sum(dtype=object))
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))

    def merge(self, other: "StatsAccumulator") -> None:
        self._require_same_layout(other, ())
        self.count += other.count
        self.scaled_sum += other.scaled_sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def sum(self) -> float:
        return unscaled(self.scaled_sum)

    @property
    def mean(self) -> float:
        return unscaled(self.scaled_sum) / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def state(self) -> tuple:
        return ("stats", self.count, self.scaled_sum, self._min, self._max)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "scaled_sum": self.scaled_sum,
            "min": self._min,
            "max": self._max,
        }

    def restore(self, snapshot: dict) -> None:
        self.count = snapshot["count"]
        self.scaled_sum = snapshot["scaled_sum"]
        self._min = snapshot["min"]
        self._max = snapshot["max"]

    def nbytes(self) -> int:
        return 64  # four scalars


class _LogBinLayout:
    """Shared fixed log-spaced partition of ``[min_value, max_value]``.

    Bin ``i`` (0-based, after the underflow bin) covers
    ``[min_value * growth**i, min_value * growth**(i+1))``; values at or
    below ``min_value`` land in the underflow bin, values past
    ``max_value`` in the overflow bin.  The layout is configuration, not
    state: two sketches merge iff their layouts are equal.
    """

    __slots__ = ("min_value", "max_value", "growth", "n_bins", "_log_min", "_log_growth")

    def __init__(self, min_value: float, max_value: float, growth: float) -> None:
        if min_value <= 0 or max_value <= min_value:
            raise ValueError(
                f"need 0 < min_value < max_value, got {min_value} / {max_value}"
            )
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.growth = float(growth)
        self._log_min = np.log(self.min_value)
        self._log_growth = np.log(self.growth)
        self.n_bins = int(
            np.ceil((np.log(self.max_value) - self._log_min) / self._log_growth)
        )

    def indices(self, values: np.ndarray) -> np.ndarray:
        """Slot index per value: 0 = underflow, 1..n_bins, n_bins+1 = overflow."""
        out = np.zeros(values.size, dtype=np.int64)
        positive = values > self.min_value
        if positive.any():
            raw = np.floor(
                (np.log(values[positive]) - self._log_min) / self._log_growth
            ).astype(np.int64)
            out[positive] = np.clip(raw + 1, 1, self.n_bins + 1)
        return out

    def representative(self, slot: int) -> float:
        """The value a slot reports: the geometric midpoint of its bin.

        The underflow bin reports 0.0 (it holds zeros and sub-``min_value``
        values), the overflow bin ``max_value``.
        """
        if slot <= 0:
            return 0.0
        if slot > self.n_bins:
            return self.max_value
        lo = self.min_value * self.growth ** (slot - 1)
        return float(min(lo * np.sqrt(self.growth), self.max_value))

    def config(self) -> tuple:
        return (self.min_value, self.max_value, self.growth)


class LogBucketHistogram(MergeableSketch):
    """Fixed-bin log-bucket quantile histogram.

    ``n_bins + 2`` integer counters over a :class:`_LogBinLayout`; a
    quantile reports the geometric midpoint of the bin holding the target
    rank, so for values inside ``[min_value, max_value]`` the relative
    error is at most ``sqrt(growth) - 1`` (values in the underflow bin
    report 0.0 — an absolute error of at most ``min_value``).  Exact count
    / sum / min / max ride along in an embedded :class:`StatsAccumulator`.
    """

    __slots__ = ("layout", "counts", "stats")

    def __init__(
        self,
        min_value: float = 1e-3,
        max_value: float = 1e6,
        growth: float = 1.08,
    ) -> None:
        self.layout = _LogBinLayout(min_value, max_value, growth)
        self.counts = np.zeros(self.layout.n_bins + 2, dtype=np.int64)
        self.stats = StatsAccumulator()

    def add_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        if not values.size:
            return
        np.add.at(self.counts, self.layout.indices(values), 1)
        self.stats.add_many(values)

    def merge(self, other: "LogBucketHistogram") -> None:
        self._require_same_layout(other, ("_config",))
        self.counts += other.counts
        self.stats.merge(other.stats)

    @property
    def _config(self) -> tuple:
        return self.layout.config()

    @property
    def count(self) -> int:
        return self.stats.count

    def quantile(self, q: float) -> float:
        """The value at rank ``q`` (0..1), clamped to the observed range."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        total = self.stats.count
        if not total:
            return 0.0
        rank = q * (total - 1)
        cumulative = np.cumsum(self.counts)
        slot = int(np.searchsorted(cumulative, rank, side="right"))
        value = self.layout.representative(slot)
        return float(min(max(value, self.stats.min), self.stats.max))

    def state(self) -> tuple:
        return ("loghist", self._config, self.counts.tobytes(), self.stats.state())

    def snapshot(self) -> dict:
        return {
            "config": self._config,
            "counts": self.counts.copy(),
            "stats": self.stats.snapshot(),
        }

    def restore(self, snapshot: dict) -> None:
        self.layout = _LogBinLayout(*snapshot["config"])
        self.counts = snapshot["counts"].copy()
        self.stats = StatsAccumulator.from_snapshot(snapshot["stats"])

    def nbytes(self) -> int:
        return int(self.counts.nbytes) + self.stats.nbytes()


class CentroidSketch(MergeableSketch):
    """T-digest-style centroid sketch with *fixed* cluster boundaries.

    Like a t-digest, quantiles interpolate between per-cluster means — but
    the clusters are the fixed log-spaced cells of a :class:`_LogBinLayout`
    instead of data-dependent compressed centroids, so ``merge`` is exactly
    associative (per-cell count and fixed-point sum addition) and the state
    is a pure function of the value multiset.  Worst case the error matches
    the histogram's bin bound (a cell mean lies inside its cell); on smooth
    distributions interpolating between means is far tighter than bin
    midpoints.
    """

    __slots__ = ("layout", "counts", "scaled_sums", "stats")

    def __init__(
        self,
        min_value: float = 1e-3,
        max_value: float = 1e6,
        growth: float = 1.08,
    ) -> None:
        self.layout = _LogBinLayout(min_value, max_value, growth)
        size = self.layout.n_bins + 2
        self.counts = np.zeros(size, dtype=np.int64)
        # int64 cell sums are exact up to ~8.8e18: at 2**20 scaling that is
        # ~8e12 value units per cell, far past fleet scale for QoE metrics
        self.scaled_sums = np.zeros(size, dtype=np.int64)
        self.stats = StatsAccumulator()

    def add_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        if not values.size:
            return
        slots = self.layout.indices(values)
        np.add.at(self.counts, slots, 1)
        np.add.at(self.scaled_sums, slots, scaled(values))
        self.stats.add_many(values)

    def merge(self, other: "CentroidSketch") -> None:
        self._require_same_layout(other, ("_config",))
        self.counts += other.counts
        self.scaled_sums += other.scaled_sums
        self.stats.merge(other.stats)

    @property
    def _config(self) -> tuple:
        return self.layout.config()

    @property
    def count(self) -> int:
        return self.stats.count

    def quantile(self, q: float) -> float:
        """Interpolated value at rank ``q`` (0..1), t-digest style.

        Each occupied cell contributes a centroid (its exact mean) at the
        midpoint of its cumulative weight span; the rank interpolates
        linearly between adjacent centroids and clamps to the observed
        min/max at the tails.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        total = self.stats.count
        if not total:
            return 0.0
        occupied = np.flatnonzero(self.counts)
        weights = self.counts[occupied].astype(float)
        means = self.scaled_sums[occupied] / (weights * _SCALE)
        # centroid positions: cumulative weight up to the cell + half the cell
        positions = np.cumsum(weights) - weights / 2.0
        rank = q * total
        if rank <= positions[0]:
            value = self.stats.min + (means[0] - self.stats.min) * (
                rank / positions[0] if positions[0] > 0 else 0.0
            )
        elif rank >= positions[-1]:
            span = total - positions[-1]
            frac = (rank - positions[-1]) / span if span > 0 else 1.0
            value = means[-1] + (self.stats.max - means[-1]) * min(frac, 1.0)
        else:
            value = float(np.interp(rank, positions, means))
        return float(min(max(value, self.stats.min), self.stats.max))

    def state(self) -> tuple:
        return (
            "centroid",
            self._config,
            self.counts.tobytes(),
            self.scaled_sums.tobytes(),
            self.stats.state(),
        )

    def snapshot(self) -> dict:
        return {
            "config": self._config,
            "counts": self.counts.copy(),
            "scaled_sums": self.scaled_sums.copy(),
            "stats": self.stats.snapshot(),
        }

    def restore(self, snapshot: dict) -> None:
        self.layout = _LogBinLayout(*snapshot["config"])
        self.counts = snapshot["counts"].copy()
        self.scaled_sums = snapshot["scaled_sums"].copy()
        self.stats = StatsAccumulator.from_snapshot(snapshot["stats"])

    def nbytes(self) -> int:
        return (
            int(self.counts.nbytes) + int(self.scaled_sums.nbytes) + self.stats.nbytes()
        )
