"""The paper's primary contribution: cloud-gaming context classification.

This subpackage implements the two novel processes of Fig. 6 plus the
objective/effective QoE modules they calibrate:

* :mod:`repro.core.packet_groups` — labeling launch-stage downstream packets
  as *full*, *steady* or *sparse* (§4.2.1).
* :mod:`repro.core.features` — the 51 per-time-slot statistical attributes
  of the three packet groups (§4.2.2, Fig. 7).
* :mod:`repro.core.title_classifier` — game-title classification from the
  first N seconds of a streaming session (§4.2).
* :mod:`repro.core.volumetric` — EMA-smoothed relative volumetric attributes
  per I-second slot (§4.3.1).
* :mod:`repro.core.activity_classifier` — player-activity-stage
  classification (§4.3.1).
* :mod:`repro.core.transition` — the 3×3 stage-transition matrix modeler
  (§4.3.2).
* :mod:`repro.core.pattern_classifier` — confidence-gated gameplay-activity-
  pattern inference (§4.3.2).
* :mod:`repro.core.qoe` — objective QoE estimation and context-calibrated
  effective QoE (§5.3).
* :mod:`repro.core.pipeline` — the end-to-end real-time pipeline of Fig. 6.
"""

from repro.core.activity_classifier import PlayerActivityClassifier
from repro.core.features import (
    PACKET_GROUP_FEATURE_NAMES,
    launch_feature_matrix,
    launch_feature_names,
    launch_features,
    volumetric_launch_features,
)
from repro.core.packet_groups import PacketGroup, PacketGroupLabeler
from repro.core.pattern_classifier import GameplayPatternClassifier
from repro.core.pipeline import ContextClassificationPipeline, SessionContextReport
from repro.core.qoe import (
    EffectiveQoECalibrator,
    ObjectiveQoEEstimator,
    QoELevel,
    QoEThresholds,
)
from repro.core.title_classifier import GameTitleClassifier
from repro.core.transition import StageTransitionModeler, TRANSITION_FEATURE_NAMES
from repro.core.volumetric import VolumetricAttributeGenerator, VolumetricSlot

__all__ = [
    "PacketGroup",
    "PacketGroupLabeler",
    "PACKET_GROUP_FEATURE_NAMES",
    "launch_features",
    "launch_feature_matrix",
    "launch_feature_names",
    "volumetric_launch_features",
    "GameTitleClassifier",
    "VolumetricAttributeGenerator",
    "VolumetricSlot",
    "PlayerActivityClassifier",
    "StageTransitionModeler",
    "TRANSITION_FEATURE_NAMES",
    "GameplayPatternClassifier",
    "ObjectiveQoEEstimator",
    "EffectiveQoECalibrator",
    "QoELevel",
    "QoEThresholds",
    "ContextClassificationPipeline",
    "SessionContextReport",
]
