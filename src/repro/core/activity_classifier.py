"""Player-activity-stage classification (§4.3.1).

A Random Forest consumes the EMA-smoothed relative volumetric attributes of
each ``I``-second slot and labels the slot as *idle*, *passive* or *active*.
Training labels come from the ground-truth stage annotations of the lab
corpus; the launch stage is excluded (it is delimited separately by the
pipeline and handled by the game-title classifier).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.volumetric import VOLUMETRIC_FEATURE_NAMES, VolumetricAttributeGenerator
from repro.ml.base import BaseClassifier
from repro.ml.forest import RandomForestClassifier
from repro.net.packet import PacketStream
from repro.simulation.catalog import PlayerStage


class PlayerActivityClassifier:
    """Classifies per-slot player activity stages from volumetric attributes.

    Parameters
    ----------
    slot_duration:
        Classification slot ``I`` in seconds (1 second in deployment).
    alpha:
        EMA weight of the current slot (0.5 in deployment).
    model:
        Underlying classifier; defaults to a Random Forest (the paper's
        best performer for this task).
    """

    def __init__(
        self,
        slot_duration: float = 1.0,
        alpha: float = 0.5,
        model: Optional[BaseClassifier] = None,
        balance_classes: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        self.slot_duration = slot_duration
        self.alpha = alpha
        self.balance_classes = balance_classes
        self.generator = VolumetricAttributeGenerator(
            slot_duration=slot_duration, alpha=alpha
        )
        self.model = model or RandomForestClassifier(
            n_estimators=100, max_depth=10, random_state=random_state
        )
        self._random_state = random_state

    # ------------------------------------------------------------ features
    def feature_names(self) -> List[str]:
        """Names of the four volumetric attributes."""
        return list(VOLUMETRIC_FEATURE_NAMES)

    def session_features_and_labels(
        self,
        stream: PacketStream,
        slot_labels: Sequence[PlayerStage],
        skip_launch: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-slot feature matrix and aligned stage labels for one session.

        ``slot_labels`` must provide the ground-truth stage of every slot
        (as produced by :meth:`GameSession.slot_ground_truth`); slots beyond
        the provided labels are dropped, and launch slots are excluded when
        ``skip_launch`` is set.
        """
        features = self.generator.transform(stream)
        n = min(features.shape[0], len(slot_labels))
        features = features[:n]
        labels = list(slot_labels[:n])
        if skip_launch:
            keep = [label is not PlayerStage.LAUNCH for label in labels]
            features = features[np.array(keep, dtype=bool)]
            labels = [label for label in labels if label is not PlayerStage.LAUNCH]
        return features, np.array([label.value for label in labels])

    def corpus_features_and_labels(
        self,
        streams: Sequence[PacketStream],
        slot_labels: Sequence[Sequence[PlayerStage]],
        skip_launch: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate per-slot features/labels over a corpus of sessions."""
        if len(streams) != len(slot_labels):
            raise ValueError(
                f"{len(streams)} streams but {len(slot_labels)} label sequences"
            )
        feature_blocks = []
        label_blocks = []
        for stream, labels in zip(streams, slot_labels):
            X, y = self.session_features_and_labels(stream, labels, skip_launch)
            if X.shape[0]:
                feature_blocks.append(X)
                label_blocks.append(y)
        if not feature_blocks:
            raise ValueError("no labeled slots available for training")
        return np.vstack(feature_blocks), np.concatenate(label_blocks)

    # ------------------------------------------------------------ training
    def fit(
        self,
        streams: Sequence[PacketStream],
        slot_labels: Sequence[Sequence[PlayerStage]],
    ) -> "PlayerActivityClassifier":
        """Train on labeled sessions."""
        X, y = self.corpus_features_and_labels(streams, slot_labels)
        return self.fit_features(X, y)

    def fit_features(self, X: np.ndarray, y: np.ndarray) -> "PlayerActivityClassifier":
        """Train directly on a precomputed slot feature matrix.

        When ``balance_classes`` is set (default), minority stages (typically
        *passive*, which covers only a small share of slots in short
        sessions) are oversampled to the majority class size so the model is
        not biased toward the frequent stages.
        """
        if self.balance_classes:
            X, y = self._balanced_resample(X, y)
        self.model.fit(X, y)
        return self

    def _balanced_resample(
        self, X: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self._random_state)
        classes, counts = np.unique(y, return_counts=True)
        target = counts.max()
        X_parts = [X]
        y_parts = [y]
        for label, count in zip(classes, counts):
            deficit = int(target - count)
            if deficit <= 0:
                continue
            indices = np.flatnonzero(y == label)
            resampled = rng.choice(indices, size=deficit, replace=True)
            X_parts.append(X[resampled])
            y_parts.append(y[resampled])
        return np.vstack(X_parts), np.concatenate(y_parts)

    # ----------------------------------------------------------- inference
    def predict_slots(self, stream: PacketStream) -> List[PlayerStage]:
        """Predict the stage of every slot of a session."""
        features = self.generator.transform(stream)
        predicted = self.model.predict(features)
        return [PlayerStage(value) for value in predicted]

    def predict_features(self, X: np.ndarray) -> List[PlayerStage]:
        """Predict stages for precomputed slot features."""
        predicted = self.model.predict(np.atleast_2d(X))
        return [PlayerStage(value) for value in predicted]

    def predict_raw_slots(
        self, raw_matrix: np.ndarray, causal: bool = True
    ) -> List[PlayerStage]:
        """Predict the stage timeline from a raw per-slot counter matrix.

        ``raw_matrix`` holds the four raw volumetric attributes per slot
        (down Mbps, down pps, up Kbps, up pps) — the public entry point for
        deployment probes that retain only per-slot counters instead of
        packets.  The relative conversion and EMA smoothing run identically
        to :meth:`predict_slots`, so for a matrix equal to
        :meth:`VolumetricAttributeGenerator.raw_slot_matrix` of a stream the
        timeline is bit-identical (pinned by ``tests/test_runtime.py``).
        """
        raw = np.asarray(raw_matrix, dtype=float)
        if raw.shape[0] == 0:
            return []
        features = self.generator.smooth(
            self.generator.relative_matrix(raw, causal=causal)
        )
        return self.predict_features(features)

    def predict_slots_many(
        self, streams: Sequence[PacketStream]
    ) -> List[List[PlayerStage]]:
        """Batched :meth:`predict_slots`: one forest pass for a whole corpus.

        The per-slot volumetric attributes of every session are stacked into
        one matrix (the per-session extraction is already vectorised) and
        classified with a single ``model.predict`` call, then split back into
        per-session stage timelines.  Tree traversal is row-independent, so
        the timelines are identical to per-session :meth:`predict_slots`
        calls.
        """
        if not streams:
            return []
        return self._predict_feature_blocks(self.generator.transform_many(streams))

    def predict_raw_slots_many(
        self, raw_matrices: Sequence[np.ndarray], causal: bool = True
    ) -> List[List[PlayerStage]]:
        """Batched :meth:`predict_raw_slots`: timelines from counter matrices.

        Each ``(n_slots_i, 4)`` raw matrix holds the four raw volumetric
        attributes per slot (down Mbps, down pps, up Kbps, up pps) — the
        entry point for bounded session states and deployment probes that
        retain only per-slot counters.  The relative conversion runs per
        session, the EMA recurrences advance in lockstep
        (:meth:`VolumetricAttributeGenerator.smooth_many`) and one forest
        pass classifies every slot, so for matrices equal to
        ``raw_slot_matrix`` of the streams the timelines are bit-identical
        to :meth:`predict_slots_many` (and :meth:`predict_slots`).
        """
        if not len(raw_matrices):
            return []
        relatives = [
            self.generator.relative_matrix(np.asarray(raw, dtype=float), causal=causal)
            if np.asarray(raw).shape[0]
            else np.zeros((0, 4))
            for raw in raw_matrices
        ]
        return self._predict_feature_blocks(self.generator.smooth_many(relatives))

    def _predict_feature_blocks(
        self, blocks: Sequence[np.ndarray]
    ) -> List[List[PlayerStage]]:
        """One forest pass over stacked per-session slot features."""
        lengths = [block.shape[0] for block in blocks]
        if sum(lengths) == 0:
            return [[] for _ in lengths]
        predicted = self.model.predict(np.vstack([b for b in blocks if b.shape[0]]))
        stages = {value: PlayerStage(value) for value in np.unique(predicted)}
        timelines: List[List[PlayerStage]] = []
        cursor = 0
        for length in lengths:
            timelines.append(
                [stages[value] for value in predicted[cursor : cursor + length]]
            )
            cursor += length
        return timelines

    def evaluate(
        self,
        streams: Sequence[PacketStream],
        slot_labels: Sequence[Sequence[PlayerStage]],
    ) -> dict:
        """Per-stage and overall slot accuracy over a labeled corpus."""
        X, y = self.corpus_features_and_labels(streams, slot_labels)
        predicted = self.model.predict(X)
        overall = float(np.mean(predicted == y))
        per_stage = {}
        for stage in PlayerStage.gameplay_stages():
            mask = y == stage.value
            if mask.any():
                per_stage[stage] = float(np.mean(predicted[mask] == stage.value))
        return {"overall": overall, "per_stage": per_stage}
