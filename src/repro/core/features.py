"""The 51 launch-stage attributes used for game-title classification (§4.2.2).

Fig. 7 of the paper describes the attribute formulation: per ``T``-second
time slot, the packets of each group (full / steady / sparse) are summarised
with

* packet **count**: ``sum`` (1 attribute per group);
* payload **size**: ``sum, mean, median, min, max, stddev, kurtosis, skew``
  (8 attributes per group);
* **inter-arrival time**: ``sum, mean, median, min, max, stddev, kurtosis,
  skew`` (8 attributes per group);

giving 17 attributes per group and 51 in total per time slot.  A session's
feature vector concatenates the per-slot attributes of all slots in the
analysed window (first ``N`` seconds); for model training, per-slot vectors
are averaged over slots to obtain a fixed-length 51-dimensional description,
mirroring the batched processing of §4.2.3.

The module also provides the baseline "flow volumetric" attributes (packet
rate and throughput per slot) the paper compares against in Table 3.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import stats

from repro.core.packet_groups import LabeledSlot, PacketGroup, PacketGroupLabeler
from repro.net.packet import Direction, PacketStream

#: Statistical representation functions applied to payload sizes and
#: inter-arrival times (Fig. 7).
_STAT_NAMES = ("sum", "mean", "median", "min", "max", "stddev", "kurtosis", "skew")

#: Metric prefixes per packet group: ct = packet count, sz = payload size,
#: it = inter-arrival time.
_GROUP_PREFIXES = {
    PacketGroup.FULL: "full",
    PacketGroup.STEADY: "steady",
    PacketGroup.SPARSE: "sparse",
}


def _stat_vector(values: np.ndarray) -> List[float]:
    """The eight statistical representations of a value array.

    Empty arrays produce all-zero statistics (an absent group in a slot is
    itself a signal, e.g. scenes without sparse packets).
    """
    if values.size == 0:
        return [0.0] * len(_STAT_NAMES)
    if values.size == 1:
        value = float(values[0])
        return [value, value, value, value, value, 0.0, 0.0, 0.0]
    std = float(values.std())
    if std > 1e-12:
        with np.errstate(all="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            kurtosis = float(stats.kurtosis(values, bias=True))
            skew = float(stats.skew(values, bias=True))
        if not np.isfinite(kurtosis):
            kurtosis = 0.0
        if not np.isfinite(skew):
            skew = 0.0
    else:
        # a degenerate (constant) group has no higher-moment shape
        kurtosis = 0.0
        skew = 0.0
    return [
        float(values.sum()),
        float(values.mean()),
        float(np.median(values)),
        float(values.min()),
        float(values.max()),
        std,
        kurtosis,
        skew,
    ]


def _group_feature_names(prefix: str) -> List[str]:
    names = [f"{prefix}_ct_sum"]
    names.extend(f"{prefix}_sz_{stat}" for stat in _STAT_NAMES)
    names.extend(f"{prefix}_it_{stat}" for stat in _STAT_NAMES)
    return names


#: The 51 attribute names in canonical order (full, steady, sparse).
PACKET_GROUP_FEATURE_NAMES: List[str] = (
    _group_feature_names("full")
    + _group_feature_names("steady")
    + _group_feature_names("sparse")
)

#: Baseline flow-volumetric attribute names (per slot averages).
FLOW_VOLUMETRIC_FEATURE_NAMES: List[str] = [
    "down_packet_rate_mean",
    "down_packet_rate_std",
    "down_throughput_mean",
    "down_throughput_std",
]


def launch_feature_names() -> List[str]:
    """Return a copy of the 51 canonical attribute names."""
    return list(PACKET_GROUP_FEATURE_NAMES)


def slot_features(slot: LabeledSlot) -> np.ndarray:
    """The 51 attributes of a single labeled time slot."""
    features: List[float] = []
    for group in (PacketGroup.FULL, PacketGroup.STEADY, PacketGroup.SPARSE):
        mask = slot.group_mask(group)
        sizes = slot.payload_sizes[mask]
        times = slot.timestamps[mask]
        interarrivals = np.diff(np.sort(times)) if times.size >= 2 else np.array([])
        features.append(float(mask.sum()))        # <prefix>_ct_sum
        features.extend(_stat_vector(sizes))       # <prefix>_sz_*
        features.extend(_stat_vector(interarrivals))  # <prefix>_it_*
    return np.array(features, dtype=float)


def launch_features(
    stream: PacketStream,
    window_seconds: float = 5.0,
    labeler: Optional[PacketGroupLabeler] = None,
    aggregate: str = "mean",
) -> np.ndarray:
    """51-dimensional launch feature vector of one streaming session.

    Parameters
    ----------
    stream:
        The session's packet stream; only downstream packets of the first
        ``window_seconds`` are used.
    window_seconds:
        The classification window ``N`` (5 seconds in the deployed system).
    labeler:
        Packet-group labeler; defaults to the paper's configuration
        (``T`` = 1 s, ``V`` = 10%).
    aggregate:
        How per-slot attribute vectors are combined: ``"mean"`` (default) or
        ``"concat"`` (concatenation over slots, giving ``51 * n_slots``
        attributes).
    """
    if aggregate not in ("mean", "concat"):
        raise ValueError(f"aggregate must be 'mean' or 'concat', got {aggregate!r}")
    labeler = labeler or PacketGroupLabeler()
    slots = labeler.label_window(stream, window_seconds=window_seconds)
    if not slots:
        size = len(PACKET_GROUP_FEATURE_NAMES)
        return np.zeros(size if aggregate == "mean" else size)
    per_slot = np.stack([slot_features(slot) for slot in slots])
    if aggregate == "mean":
        return per_slot.mean(axis=0)
    return per_slot.reshape(-1)


def volumetric_launch_features(
    stream: PacketStream,
    window_seconds: float = 5.0,
    slot_duration: float = 1.0,
) -> np.ndarray:
    """Baseline flow-volumetric features (Table 3 comparison).

    Standard per-slot packet rate and throughput of the downstream direction,
    summarised by mean and standard deviation over the window.
    """
    if window_seconds <= 0 or slot_duration <= 0:
        raise ValueError("window_seconds and slot_duration must be positive")
    downstream = stream.filter_direction(Direction.DOWNSTREAM)
    origin = stream.start_time
    times = downstream.timestamps()
    sizes = downstream.payload_sizes()
    in_window = (times >= origin) & (times < origin + window_seconds)
    times = times[in_window]
    sizes = sizes[in_window]
    n_slots = max(1, int(np.ceil(window_seconds / slot_duration)))
    rates = np.zeros(n_slots)
    throughputs = np.zeros(n_slots)
    if times.size:
        indices = np.floor((times - origin) / slot_duration).astype(int)
        indices = np.clip(indices, 0, n_slots - 1)
        for slot in range(n_slots):
            mask = indices == slot
            rates[slot] = mask.sum() / slot_duration
            throughputs[slot] = sizes[mask].sum() * 8 / slot_duration / 1e6
    return np.array(
        [rates.mean(), rates.std(), throughputs.mean(), throughputs.std()],
        dtype=float,
    )


def launch_feature_matrix(
    streams: Sequence[PacketStream],
    window_seconds: float = 5.0,
    labeler: Optional[PacketGroupLabeler] = None,
) -> np.ndarray:
    """Stack launch feature vectors of many sessions into a matrix."""
    if not streams:
        raise ValueError("streams must not be empty")
    return np.stack(
        [
            launch_features(stream, window_seconds=window_seconds, labeler=labeler)
            for stream in streams
        ]
    )


def feature_dict(vector: np.ndarray) -> Dict[str, float]:
    """Map a 51-dimensional feature vector to ``{name: value}``."""
    if vector.shape[-1] != len(PACKET_GROUP_FEATURE_NAMES):
        raise ValueError(
            f"expected {len(PACKET_GROUP_FEATURE_NAMES)} attributes, got {vector.shape[-1]}"
        )
    return dict(zip(PACKET_GROUP_FEATURE_NAMES, vector.tolist()))
