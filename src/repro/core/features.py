"""The 51 launch-stage attributes used for game-title classification (§4.2.2).

Fig. 7 of the paper describes the attribute formulation: per ``T``-second
time slot, the packets of each group (full / steady / sparse) are summarised
with

* packet **count**: ``sum`` (1 attribute per group);
* payload **size**: ``sum, mean, median, min, max, stddev, kurtosis, skew``
  (8 attributes per group);
* **inter-arrival time**: ``sum, mean, median, min, max, stddev, kurtosis,
  skew`` (8 attributes per group);

giving 17 attributes per group and 51 in total per time slot.  A session's
feature vector concatenates the per-slot attributes of all slots in the
analysed window (first ``N`` seconds); for model training, per-slot vectors
are averaged over slots to obtain a fixed-length 51-dimensional description,
mirroring the batched processing of §4.2.3.

All 51 attributes of every slot of a batch are computed with grouped
reductions over a single concatenated value array (DESIGN.md §3): segment
ids combine (slot, group), counts/sums/moments come from ``np.bincount`` and
order statistics from one ``lexsort`` — no per-slot or per-group Python
loops.

The module also provides the baseline "flow volumetric" attributes (packet
rate and throughput per slot) the paper compares against in Table 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.packet_groups import LabeledSlot, PacketGroup, PacketGroupLabeler
from repro.net.packet import Direction, PacketStream

#: Statistical representation functions applied to payload sizes and
#: inter-arrival times (Fig. 7).
_STAT_NAMES = ("sum", "mean", "median", "min", "max", "stddev", "kurtosis", "skew")

#: Metric prefixes per packet group: ct = packet count, sz = payload size,
#: it = inter-arrival time.
_GROUP_PREFIXES = {
    PacketGroup.FULL: "full",
    PacketGroup.STEADY: "steady",
    PacketGroup.SPARSE: "sparse",
}

#: A slot with no packets of a group contributes all-zero statistics; a
#: degenerate (constant) group has no higher-moment shape.
_DEGENERATE_STD = 1e-12


def _grouped_stat_matrix(
    values: np.ndarray,
    segments: np.ndarray,
    n_segments: int,
    counts: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The eight :data:`_STAT_NAMES` statistics for every segment at once.

    ``segments`` assigns each value to one of ``n_segments`` groups; empty
    segments produce all-zero rows (an absent group in a slot is itself a
    signal) and single-value / constant segments have zero higher moments.
    Moments are accumulated with ``np.bincount`` (kurtosis/skew follow
    scipy's biased formulas) and order statistics are read from one
    value-sorted pass.  ``counts`` may supply a precomputed
    ``bincount(segments)``.
    """
    out = np.zeros((n_segments, len(_STAT_NAMES)))
    if counts is None:
        counts = np.bincount(segments, minlength=n_segments) if values.size else np.zeros(
            n_segments, dtype=int
        )
    nonempty = counts > 0
    if not nonempty.any():
        return out
    cnt = counts[nonempty].astype(float)

    sums = np.bincount(segments, weights=values, minlength=n_segments)
    mean = np.zeros(n_segments)
    mean[nonempty] = sums[nonempty] / cnt

    deviations = values - mean[segments]
    m2 = np.bincount(segments, weights=deviations * deviations, minlength=n_segments)
    m3 = np.bincount(segments, weights=deviations ** 3, minlength=n_segments)
    m4 = np.bincount(segments, weights=deviations ** 4, minlength=n_segments)
    m2[nonempty] /= cnt
    m3[nonempty] /= cnt
    m4[nonempty] /= cnt
    std = np.sqrt(m2)

    # order statistics: one value-sorted pass, segments stay contiguous
    order = np.lexsort((values, segments))
    sorted_values = values[order]
    starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
    ne_starts = starts[nonempty]
    ne_counts = counts[nonempty]
    mins = np.zeros(n_segments)
    maxs = np.zeros(n_segments)
    medians = np.zeros(n_segments)
    mins[nonempty] = sorted_values[ne_starts]
    maxs[nonempty] = sorted_values[ne_starts + ne_counts - 1]
    lower = sorted_values[ne_starts + (ne_counts - 1) // 2]
    upper = sorted_values[ne_starts + ne_counts // 2]
    medians[nonempty] = (lower + upper) / 2.0

    # degenerate (constant or single-value) segments have no shape
    shaped = nonempty & (std > _DEGENERATE_STD)
    kurtosis = np.zeros(n_segments)
    skew = np.zeros(n_segments)
    with np.errstate(all="ignore"):
        raw_kurtosis = m4 / (m2 * m2) - 3.0
        raw_skew = m3 / (m2 ** 1.5)
    kurtosis[shaped] = np.where(
        np.isfinite(raw_kurtosis[shaped]), raw_kurtosis[shaped], 0.0
    )
    skew[shaped] = np.where(np.isfinite(raw_skew[shaped]), raw_skew[shaped], 0.0)

    out[:, 0] = sums
    out[:, 1] = mean
    out[:, 2] = medians
    out[:, 3] = mins
    out[:, 4] = maxs
    out[:, 5] = std
    out[:, 6] = kurtosis
    out[:, 7] = skew
    return out


def _group_feature_names(prefix: str) -> List[str]:
    names = [f"{prefix}_ct_sum"]
    names.extend(f"{prefix}_sz_{stat}" for stat in _STAT_NAMES)
    names.extend(f"{prefix}_it_{stat}" for stat in _STAT_NAMES)
    return names


#: The 51 attribute names in canonical order (full, steady, sparse).
PACKET_GROUP_FEATURE_NAMES: List[str] = (
    _group_feature_names("full")
    + _group_feature_names("steady")
    + _group_feature_names("sparse")
)

#: Baseline flow-volumetric attribute names (per slot averages).
FLOW_VOLUMETRIC_FEATURE_NAMES: List[str] = [
    "down_packet_rate_mean",
    "down_packet_rate_std",
    "down_throughput_mean",
    "down_throughput_std",
]


def launch_feature_names() -> List[str]:
    """Return a copy of the 51 canonical attribute names."""
    return list(PACKET_GROUP_FEATURE_NAMES)


def slot_feature_matrix(slots: Sequence[LabeledSlot]) -> np.ndarray:
    """The 51 attributes of every labeled slot of a batch, in one pass.

    Returns an ``(n_slots, 51)`` matrix.  The slots may come from one
    session or many (concatenate and split afterwards) — each row depends
    only on its own slot's packets.
    """
    n_slots = len(slots)
    features = np.zeros((n_slots, len(PACKET_GROUP_FEATURE_NAMES)))
    if n_slots == 0:
        return features
    lengths = [slot.label_codes.size for slot in slots]
    total = int(np.sum(lengths))
    n_segments = n_slots * 3
    if total == 0:
        return features

    sizes = np.concatenate([slot.payload_sizes for slot in slots])
    times = np.concatenate([slot.timestamps for slot in slots])
    codes = np.concatenate([slot.label_codes for slot in slots]).astype(np.int64)
    slot_ids = np.repeat(np.arange(n_slots), lengths)
    segments = slot_ids * 3 + codes

    counts = np.bincount(segments, minlength=n_segments)
    size_stats = _grouped_stat_matrix(sizes, segments, n_segments, counts=counts)

    # inter-arrival times: sort by (segment, time) so consecutive
    # same-segment diffs reproduce np.diff(np.sort(times)) per (slot, group)
    # even for hand-built slots whose timestamps are not chronological
    order = np.lexsort((times, segments))
    seg_sorted = segments[order]
    time_sorted = times[order]
    same_segment = seg_sorted[1:] == seg_sorted[:-1]
    interarrivals = (time_sorted[1:] - time_sorted[:-1])[same_segment]
    ia_segments = seg_sorted[1:][same_segment]
    ia_stats = _grouped_stat_matrix(interarrivals, ia_segments, n_segments)

    for group_code in range(3):
        rows = np.arange(n_slots) * 3 + group_code
        base = group_code * 17
        features[:, base] = counts[rows]
        features[:, base + 1 : base + 9] = size_stats[rows]
        features[:, base + 9 : base + 17] = ia_stats[rows]
    return features


def slot_features(slot: LabeledSlot) -> np.ndarray:
    """The 51 attributes of a single labeled time slot."""
    return slot_feature_matrix([slot])[0]


def launch_features(
    stream: PacketStream,
    window_seconds: float = 5.0,
    labeler: Optional[PacketGroupLabeler] = None,
    aggregate: str = "mean",
) -> np.ndarray:
    """51-dimensional launch feature vector of one streaming session.

    Parameters
    ----------
    stream:
        The session's packet stream; only downstream packets of the first
        ``window_seconds`` are used.
    window_seconds:
        The classification window ``N`` (5 seconds in the deployed system).
    labeler:
        Packet-group labeler; defaults to the paper's configuration
        (``T`` = 1 s, ``V`` = 10%).
    aggregate:
        How per-slot attribute vectors are combined: ``"mean"`` (default) or
        ``"concat"`` (concatenation over slots, giving ``51 * n_slots``
        attributes).
    """
    if aggregate not in ("mean", "concat"):
        raise ValueError(f"aggregate must be 'mean' or 'concat', got {aggregate!r}")
    labeler = labeler or PacketGroupLabeler()
    slots = labeler.label_window(stream, window_seconds=window_seconds)
    if not slots:
        size = len(PACKET_GROUP_FEATURE_NAMES)
        return np.zeros(size if aggregate == "mean" else size)
    per_slot = slot_feature_matrix(slots)
    if aggregate == "mean":
        return per_slot.mean(axis=0)
    return per_slot.reshape(-1)


def volumetric_launch_features(
    stream: PacketStream,
    window_seconds: float = 5.0,
    slot_duration: float = 1.0,
) -> np.ndarray:
    """Baseline flow-volumetric features (Table 3 comparison).

    Standard per-slot packet rate and throughput of the downstream direction,
    summarised by mean and standard deviation over the window.
    """
    if window_seconds <= 0 or slot_duration <= 0:
        raise ValueError("window_seconds and slot_duration must be positive")
    downstream = stream.filter_direction(Direction.DOWNSTREAM)
    origin = stream.start_time
    times = downstream.timestamps()
    sizes = downstream.payload_sizes()
    in_window = (times >= origin) & (times < origin + window_seconds)
    times = times[in_window]
    sizes = sizes[in_window]
    n_slots = max(1, int(np.ceil(window_seconds / slot_duration)))
    rates = np.zeros(n_slots)
    throughputs = np.zeros(n_slots)
    if times.size:
        indices = np.floor((times - origin) / slot_duration).astype(int)
        indices = np.clip(indices, 0, n_slots - 1)
        rates = np.bincount(indices, minlength=n_slots) / slot_duration
        throughputs = (
            np.bincount(indices, weights=sizes, minlength=n_slots)
            * 8
            / slot_duration
            / 1e6
        )
    return np.array(
        [rates.mean(), rates.std(), throughputs.mean(), throughputs.std()],
        dtype=float,
    )


def launch_feature_matrix(
    streams: Sequence[PacketStream],
    window_seconds: float = 5.0,
    labeler: Optional[PacketGroupLabeler] = None,
    aggregate: str = "mean",
) -> np.ndarray:
    """Stack launch feature vectors of many sessions into a matrix.

    The slots of every session are labeled first, then all attributes of the
    whole batch are computed in one grouped reduction — the per-session cost
    is the labeling, not the statistics.

    Parameters
    ----------
    streams:
        The session packet streams (non-empty sequence).
    window_seconds:
        The classification window ``N`` applied to every session.
    labeler:
        Shared packet-group labeler; defaults to the paper's configuration.
    aggregate:
        ``"mean"`` (default) averages the per-slot attribute vectors, giving
        an ``(n_sessions, 51)`` matrix; ``"concat"`` concatenates them in
        slot order, giving ``(n_sessions, 51 * n_slots)``.  Every session
        labels the same number of slots (``ceil(window / T)``, empty slots
        included), so concatenated rows always align.

    Rows are identical to per-session :func:`launch_features` calls with the
    same ``aggregate``: each slot's statistics depend only on its own
    packets, and the grouped reductions accumulate per-segment values in the
    same order regardless of how slots are batched.
    """
    if not streams:
        raise ValueError("streams must not be empty")
    if aggregate not in ("mean", "concat"):
        raise ValueError(f"aggregate must be 'mean' or 'concat', got {aggregate!r}")
    labeler = labeler or PacketGroupLabeler()
    per_stream_slots = [
        labeler.label_window(stream, window_seconds=window_seconds)
        for stream in streams
    ]
    flat_slots = [slot for slots in per_stream_slots for slot in slots]
    per_slot = slot_feature_matrix(flat_slots)
    width = len(PACKET_GROUP_FEATURE_NAMES)
    expected_slots = max(
        1, int(np.ceil(window_seconds / labeler.slot_duration))
    )
    rows = []
    cursor = 0
    for slots in per_stream_slots:
        n = len(slots)
        if n == 0:
            rows.append(
                np.zeros(width if aggregate == "mean" else width * expected_slots)
            )
        elif aggregate == "mean":
            rows.append(per_slot[cursor : cursor + n].mean(axis=0))
        else:
            rows.append(per_slot[cursor : cursor + n].reshape(-1))
        cursor += n
    return np.stack(rows)


def feature_dict(vector: np.ndarray) -> Dict[str, float]:
    """Map a 51-dimensional feature vector to ``{name: value}``."""
    if vector.shape[-1] != len(PACKET_GROUP_FEATURE_NAMES):
        raise ValueError(
            f"expected {len(PACKET_GROUP_FEATURE_NAMES)} attributes, got {vector.shape[-1]}"
        )
    return dict(zip(PACKET_GROUP_FEATURE_NAMES, vector.tolist()))
