"""Labeling launch-stage packets as *full*, *steady* or *sparse* (§4.2.1).

The paper observes that the downstream packets carrying the launch animation
fall into three groups per time slot of ``T`` seconds:

* **full** — packets at the maximum payload size (e.g. 1432 bytes), present
  in every slot;
* **steady** — packets whose payload is within a ±V band of their
  neighbours in the same slot (a narrow payload band per scene);
* **sparse** — packets whose payload varies widely versus their neighbours.

Full packets are labeled by payload equality with the maximum observed size;
the remaining packets are split into steady/sparse by a majority-voting rule
with a tunable relative variation parameter ``V`` (10% in the paper's
implementation, evaluated between 1% and 20% in §4.4.1).

The labeler is fully vectorised (DESIGN.md §3): slots are carved out of the
sorted timestamp column with ``searchsorted``, the majority vote runs on
shifted array comparisons instead of a per-packet loop, and labels are
stored as an int8 code array per slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.packet import Direction, PacketStream


class PacketGroup(Enum):
    """The three launch-stage packet groups."""

    FULL = "full"
    STEADY = "steady"
    SPARSE = "sparse"


#: Integer codes used by the columnar label representation.
FULL_CODE = 0
STEADY_CODE = 1
SPARSE_CODE = 2

GROUP_CODES: Dict[PacketGroup, int] = {
    PacketGroup.FULL: FULL_CODE,
    PacketGroup.STEADY: STEADY_CODE,
    PacketGroup.SPARSE: SPARSE_CODE,
}
_GROUPS_BY_CODE = (PacketGroup.FULL, PacketGroup.STEADY, PacketGroup.SPARSE)


@dataclass
class LabeledSlot:
    """Per-slot labeling result.

    Attributes
    ----------
    slot_index:
        Index of the ``T``-second slot within the analysis window.
    timestamps / payload_sizes:
        Arrays aligned with ``label_codes`` for the packets of this slot.
    label_codes:
        One int8 group code per packet (0=full, 1=steady, 2=sparse).  A list
        of :class:`PacketGroup` is also accepted and converted.
    """

    slot_index: int
    timestamps: np.ndarray
    payload_sizes: np.ndarray
    label_codes: np.ndarray

    def __post_init__(self) -> None:
        codes = self.label_codes
        if isinstance(codes, np.ndarray) and codes.dtype != object:
            self.label_codes = codes.astype(np.int8, copy=False)
        else:
            # lists / object arrays may mix ints and PacketGroup members
            self.label_codes = np.asarray(
                [
                    GROUP_CODES[code] if isinstance(code, PacketGroup) else code
                    for code in codes
                ],
                dtype=np.int8,
            )
        if self.label_codes.size != np.asarray(self.payload_sizes).size:
            raise ValueError(
                f"label_codes ({self.label_codes.size}) must match "
                f"payload_sizes ({np.asarray(self.payload_sizes).size})"
            )
        if self.label_codes.size and not (
            0 <= self.label_codes.min() and self.label_codes.max() <= SPARSE_CODE
        ):
            raise ValueError(
                "label_codes must be within 0..2 (full/steady/sparse)"
            )

    @property
    def labels(self) -> List[PacketGroup]:
        """Labels as :class:`PacketGroup` objects (materialised on demand)."""
        return [_GROUPS_BY_CODE[code] for code in self.label_codes]

    def group_mask(self, group: PacketGroup) -> np.ndarray:
        """Boolean mask selecting the packets of one group."""
        return self.label_codes == GROUP_CODES[group]

    def group_count(self, group: PacketGroup) -> int:
        """Number of packets labeled as ``group`` in this slot."""
        return int(np.count_nonzero(self.label_codes == GROUP_CODES[group]))


class PacketGroupLabeler:
    """Labels downstream launch packets into full/steady/sparse groups.

    Parameters
    ----------
    slot_duration:
        Slot size ``T`` in seconds (1 second in the deployed system).
    size_variation:
        The relative payload variation ``V`` (default 0.10) allowed between
        a packet and its neighbours for it to count as *steady*.
    full_size:
        Absolute payload size of full packets.  When ``None`` (default) the
        maximum payload observed in the analysed window is used, following
        the paper's description of full packets as "the same fixed (maximum)
        payload size".
    full_tolerance:
        Payload slack (bytes) when matching the full size, to absorb
        padding differences between platforms.
    neighbor_window:
        Number of adjacent packets on each side considered by the
        majority-voting rule.
    """

    def __init__(
        self,
        slot_duration: float = 1.0,
        size_variation: float = 0.10,
        full_size: Optional[int] = None,
        full_tolerance: int = 4,
        neighbor_window: int = 2,
    ) -> None:
        if slot_duration <= 0:
            raise ValueError(f"slot_duration must be positive, got {slot_duration}")
        if not 0.0 < size_variation < 1.0:
            raise ValueError(
                f"size_variation must be within (0, 1), got {size_variation}"
            )
        if full_tolerance < 0:
            raise ValueError(f"full_tolerance must be non-negative, got {full_tolerance}")
        if neighbor_window < 1:
            raise ValueError(f"neighbor_window must be >= 1, got {neighbor_window}")
        self.slot_duration = slot_duration
        self.size_variation = size_variation
        self.full_size = full_size
        self.full_tolerance = full_tolerance
        self.neighbor_window = neighbor_window

    # ----------------------------------------------------------- labeling
    def label_window(
        self,
        stream: PacketStream,
        window_seconds: Optional[float] = None,
        origin: Optional[float] = None,
    ) -> List[LabeledSlot]:
        """Label the downstream packets of the first ``window_seconds``.

        Returns one :class:`LabeledSlot` per slot (including empty slots, so
        that attribute vectors are aligned across sessions).
        """
        # cached per-direction views of the columnar stream; no child stream
        all_times = stream.timestamps(Direction.DOWNSTREAM)
        origin = stream.start_time if origin is None else origin
        if window_seconds is None:
            downstream_span = (
                float(all_times[-1] - all_times[0]) if all_times.size >= 2 else 0.0
            )
            window_seconds = max(downstream_span, self.slot_duration)
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")

        # the window is a contiguous range of the sorted timestamp column
        lo = int(np.searchsorted(all_times, origin, side="left"))
        hi = int(np.searchsorted(all_times, origin + window_seconds, side="left"))
        times = all_times[lo:hi]
        sizes = stream.payload_sizes(Direction.DOWNSTREAM)[lo:hi]

        full_size = self.full_size
        if full_size is None:
            full_size = int(sizes.max()) if sizes.size else 0

        n_slots = int(np.ceil(window_seconds / self.slot_duration))
        # times are sorted, so slot indices are non-decreasing and each slot
        # is a contiguous range — no per-slot boolean mask needed
        slot_of_packet = (
            np.floor((times - origin) / self.slot_duration).astype(int)
            if times.size
            else np.array([], dtype=int)
        )
        bounds = np.searchsorted(slot_of_packet, np.arange(n_slots + 1), side="left")
        slots: List[LabeledSlot] = []
        for slot_index in range(n_slots):
            start, stop = int(bounds[slot_index]), int(bounds[slot_index + 1])
            slot_sizes = sizes[start:stop]
            slots.append(
                LabeledSlot(
                    slot_index=slot_index,
                    timestamps=times[start:stop],
                    payload_sizes=slot_sizes,
                    label_codes=self._label_slot_codes(slot_sizes, full_size),
                )
            )
        return slots

    def _label_slot_codes(self, sizes: np.ndarray, full_size: int) -> np.ndarray:
        """Vectorised labeling of one slot, returning int8 group codes."""
        codes = np.full(sizes.size, SPARSE_CODE, dtype=np.int8)
        if sizes.size == 0:
            return codes
        is_full = np.abs(sizes - full_size) <= self.full_tolerance
        codes[is_full] = FULL_CODE
        non_full_indices = np.flatnonzero(~is_full)
        steady = self._steady_votes(sizes[non_full_indices])
        codes[non_full_indices[steady]] = STEADY_CODE
        return codes

    def _steady_votes(self, sizes: np.ndarray) -> np.ndarray:
        """Majority vote: is each non-full packet steady w.r.t. its neighbours?

        A packet is steady when the majority of its up-to ``neighbor_window``
        neighbours on each side (within the same slot) have payload sizes
        within ±``size_variation`` of its own size.  Implemented with shifted
        array comparisons: offset ``k`` compares every packet with its
        ``k``-th left/right neighbour at once.
        """
        count = sizes.size
        if count == 0:
            return np.array([], dtype=bool)
        if count == 1:
            # a lone non-full packet has no band to belong to
            return np.array([False])
        tolerance = self.size_variation * sizes
        close = np.zeros(count, dtype=np.int64)
        neighbors = np.zeros(count, dtype=np.int64)
        for offset in range(1, self.neighbor_window + 1):
            if offset >= count:
                break
            gap = np.abs(sizes[offset:] - sizes[:-offset])
            # left neighbour of index i >= offset
            close[offset:] += gap <= tolerance[offset:]
            neighbors[offset:] += 1
            # right neighbour of index i <= count - 1 - offset
            close[:-offset] += gap <= tolerance[:-offset]
            neighbors[:-offset] += 1
        return (close * 2 >= neighbors) & (neighbors > 0)

    # ------------------------------------------------------------ summary
    def group_counts(
        self, slots: Sequence[LabeledSlot]
    ) -> Dict[PacketGroup, int]:
        """Total packet count per group across all slots."""
        if slots:
            codes = np.concatenate([slot.label_codes for slot in slots])
            totals = np.bincount(codes, minlength=3)
        else:
            totals = np.zeros(3, dtype=int)
        return {group: int(totals[GROUP_CODES[group]]) for group in PacketGroup}

    def group_scatter(
        self, slots: Sequence[LabeledSlot]
    ) -> Dict[PacketGroup, Tuple[np.ndarray, np.ndarray]]:
        """(timestamps, payload sizes) per group — the data behind Fig. 3."""
        if slots:
            times = np.concatenate([slot.timestamps for slot in slots])
            sizes = np.concatenate([slot.payload_sizes for slot in slots])
            codes = np.concatenate([slot.label_codes for slot in slots])
        else:
            times = sizes = np.array([], dtype=float)
            codes = np.array([], dtype=np.int8)
        scatter: Dict[PacketGroup, Tuple[np.ndarray, np.ndarray]] = {}
        for group in PacketGroup:
            mask = codes == GROUP_CODES[group]
            scatter[group] = (times[mask], sizes[mask])
        return scatter
