"""Labeling launch-stage packets as *full*, *steady* or *sparse* (§4.2.1).

The paper observes that the downstream packets carrying the launch animation
fall into three groups per time slot of ``T`` seconds:

* **full** — packets at the maximum payload size (e.g. 1432 bytes), present
  in every slot;
* **steady** — packets whose payload is within a ±V band of their
  neighbours in the same slot (a narrow payload band per scene);
* **sparse** — packets whose payload varies widely versus their neighbours.

Full packets are labeled by payload equality with the maximum observed size;
the remaining packets are split into steady/sparse by a majority-voting rule
with a tunable relative variation parameter ``V`` (10% in the paper's
implementation, evaluated between 1% and 20% in §4.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.packet import Direction, Packet, PacketStream


class PacketGroup(Enum):
    """The three launch-stage packet groups."""

    FULL = "full"
    STEADY = "steady"
    SPARSE = "sparse"


@dataclass
class LabeledSlot:
    """Per-slot labeling result.

    Attributes
    ----------
    slot_index:
        Index of the ``T``-second slot within the analysis window.
    timestamps / payload_sizes:
        Arrays aligned with ``labels`` for the packets of this slot.
    labels:
        One :class:`PacketGroup` per packet.
    """

    slot_index: int
    timestamps: np.ndarray
    payload_sizes: np.ndarray
    labels: List[PacketGroup]

    def group_mask(self, group: PacketGroup) -> np.ndarray:
        """Boolean mask selecting the packets of one group."""
        return np.array([label is group for label in self.labels], dtype=bool)

    def group_count(self, group: PacketGroup) -> int:
        """Number of packets labeled as ``group`` in this slot."""
        return int(self.group_mask(group).sum())


class PacketGroupLabeler:
    """Labels downstream launch packets into full/steady/sparse groups.

    Parameters
    ----------
    slot_duration:
        Slot size ``T`` in seconds (1 second in the deployed system).
    size_variation:
        The relative payload variation ``V`` (default 0.10) allowed between
        a packet and its neighbours for it to count as *steady*.
    full_size:
        Absolute payload size of full packets.  When ``None`` (default) the
        maximum payload observed in the analysed window is used, following
        the paper's description of full packets as "the same fixed (maximum)
        payload size".
    full_tolerance:
        Payload slack (bytes) when matching the full size, to absorb
        padding differences between platforms.
    neighbor_window:
        Number of adjacent packets on each side considered by the
        majority-voting rule.
    """

    def __init__(
        self,
        slot_duration: float = 1.0,
        size_variation: float = 0.10,
        full_size: Optional[int] = None,
        full_tolerance: int = 4,
        neighbor_window: int = 2,
    ) -> None:
        if slot_duration <= 0:
            raise ValueError(f"slot_duration must be positive, got {slot_duration}")
        if not 0.0 < size_variation < 1.0:
            raise ValueError(
                f"size_variation must be within (0, 1), got {size_variation}"
            )
        if full_tolerance < 0:
            raise ValueError(f"full_tolerance must be non-negative, got {full_tolerance}")
        if neighbor_window < 1:
            raise ValueError(f"neighbor_window must be >= 1, got {neighbor_window}")
        self.slot_duration = slot_duration
        self.size_variation = size_variation
        self.full_size = full_size
        self.full_tolerance = full_tolerance
        self.neighbor_window = neighbor_window

    # ----------------------------------------------------------- labeling
    def label_window(
        self,
        stream: PacketStream,
        window_seconds: Optional[float] = None,
        origin: Optional[float] = None,
    ) -> List[LabeledSlot]:
        """Label the downstream packets of the first ``window_seconds``.

        Returns one :class:`LabeledSlot` per slot (including empty slots, so
        that attribute vectors are aligned across sessions).
        """
        downstream = stream.filter_direction(Direction.DOWNSTREAM)
        origin = stream.start_time if origin is None else origin
        if window_seconds is None:
            window_seconds = max(downstream.duration, self.slot_duration)
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")

        times = downstream.timestamps()
        sizes = downstream.payload_sizes()
        in_window = (times >= origin) & (times < origin + window_seconds)
        times = times[in_window]
        sizes = sizes[in_window]

        full_size = self.full_size
        if full_size is None:
            full_size = int(sizes.max()) if sizes.size else 0

        n_slots = int(np.ceil(window_seconds / self.slot_duration))
        slots: List[LabeledSlot] = []
        slot_of_packet = (
            np.floor((times - origin) / self.slot_duration).astype(int)
            if times.size
            else np.array([], dtype=int)
        )
        for slot_index in range(n_slots):
            mask = slot_of_packet == slot_index
            slot_times = times[mask]
            slot_sizes = sizes[mask]
            order = np.argsort(slot_times, kind="mergesort")
            slot_times = slot_times[order]
            slot_sizes = slot_sizes[order]
            labels = self._label_slot(slot_sizes, full_size)
            slots.append(
                LabeledSlot(
                    slot_index=slot_index,
                    timestamps=slot_times,
                    payload_sizes=slot_sizes,
                    labels=labels,
                )
            )
        return slots

    def _label_slot(self, sizes: np.ndarray, full_size: int) -> List[PacketGroup]:
        """Label the packets of a single slot."""
        labels: List[PacketGroup] = []
        if sizes.size == 0:
            return labels
        is_full = np.abs(sizes - full_size) <= self.full_tolerance
        non_full_indices = np.flatnonzero(~is_full)
        non_full_sizes = sizes[non_full_indices]

        steady_flags = self._steady_votes(non_full_sizes)
        steady_lookup = dict(zip(non_full_indices.tolist(), steady_flags))

        for index in range(sizes.size):
            if is_full[index]:
                labels.append(PacketGroup.FULL)
            elif steady_lookup.get(index, False):
                labels.append(PacketGroup.STEADY)
            else:
                labels.append(PacketGroup.SPARSE)
        return labels

    def _steady_votes(self, sizes: np.ndarray) -> List[bool]:
        """Majority vote: is each non-full packet steady w.r.t. its neighbours?

        A packet is steady when the majority of its up-to ``neighbor_window``
        neighbours on each side (within the same slot) have payload sizes
        within ±``size_variation`` of its own size.
        """
        count = sizes.size
        if count == 0:
            return []
        if count == 1:
            # a lone non-full packet has no band to belong to
            return [False]
        flags: List[bool] = []
        for index in range(count):
            low = max(0, index - self.neighbor_window)
            high = min(count, index + self.neighbor_window + 1)
            neighbors = np.concatenate([sizes[low:index], sizes[index + 1 : high]])
            if neighbors.size == 0:
                flags.append(False)
                continue
            tolerance = self.size_variation * sizes[index]
            close = np.abs(neighbors - sizes[index]) <= tolerance
            flags.append(bool(close.sum() * 2 >= neighbors.size))
        return flags

    # ------------------------------------------------------------ summary
    def group_counts(
        self, slots: Sequence[LabeledSlot]
    ) -> Dict[PacketGroup, int]:
        """Total packet count per group across all slots."""
        counts = {group: 0 for group in PacketGroup}
        for slot in slots:
            for group in PacketGroup:
                counts[group] += slot.group_count(group)
        return counts

    def group_scatter(
        self, slots: Sequence[LabeledSlot]
    ) -> Dict[PacketGroup, Tuple[np.ndarray, np.ndarray]]:
        """(timestamps, payload sizes) per group — the data behind Fig. 3."""
        scatter: Dict[PacketGroup, Tuple[List[float], List[float]]] = {
            group: ([], []) for group in PacketGroup
        }
        for slot in slots:
            for group in PacketGroup:
                mask = slot.group_mask(group)
                scatter[group][0].extend(slot.timestamps[mask].tolist())
                scatter[group][1].extend(slot.payload_sizes[mask].tolist())
        return {
            group: (np.array(times), np.array(sizes))
            for group, (times, sizes) in scatter.items()
        }
