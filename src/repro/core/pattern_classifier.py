"""Gameplay-activity-pattern inference (§4.3.2).

When the game title cannot be confidently classified, the paper falls back
to inferring the coarse-grained gameplay activity pattern — *continuous-play*
vs *spectate-and-play* — from the stochastic transition behaviour of the
classified player activity stages.  A Random Forest consumes the nine
normalised transition attributes; a prediction is only emitted once its
confidence exceeds a threshold (75% in deployment), trading responsiveness
against accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.transition import (
    StageTransitionModeler,
    TRANSITION_FEATURE_NAMES,
    prefix_transition_features,
    transition_features_from_stages,
)
from repro.ml.base import BaseClassifier
from repro.ml.forest import RandomForestClassifier
from repro.simulation.catalog import ActivityPattern, PlayerStage


@dataclass
class PatternPrediction:
    """Result of one gameplay-activity-pattern inference."""

    pattern: Optional[ActivityPattern]
    confidence: float
    confident: bool
    slots_observed: int

    @property
    def label(self) -> str:
        """The pattern value, or "undecided" before the confidence gate opens."""
        return self.pattern.value if self.pattern is not None else "undecided"


class GameplayPatternClassifier:
    """Infers the gameplay activity pattern from stage-transition attributes.

    Parameters
    ----------
    confidence_threshold:
        Minimum predicted-class probability before a result is emitted
        (0.75 in the deployed system).
    min_slots:
        Minimum number of observed gameplay slots before attempting an
        inference ("upon receiving a sufficient number of past states").
    model:
        Underlying classifier; defaults to a Random Forest with 100 trees
        and maximum depth 10 (the paper's best performer, Fig. 15).
    """

    def __init__(
        self,
        confidence_threshold: float = 0.75,
        min_slots: int = 30,
        model: Optional[BaseClassifier] = None,
        balance_classes: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if not 0.0 <= confidence_threshold <= 1.0:
            raise ValueError(
                f"confidence_threshold must be in [0, 1], got {confidence_threshold}"
            )
        if min_slots < 1:
            raise ValueError(f"min_slots must be >= 1, got {min_slots}")
        self.confidence_threshold = confidence_threshold
        self.min_slots = min_slots
        self.balance_classes = balance_classes
        self._random_state = random_state
        self.model = model or RandomForestClassifier(
            n_estimators=100, max_depth=10, random_state=random_state
        )

    # ------------------------------------------------------------ features
    def feature_names(self) -> List[str]:
        """Names of the nine transition attributes."""
        return list(TRANSITION_FEATURE_NAMES)

    def features_from_stages(self, stages: Sequence[PlayerStage]) -> np.ndarray:
        """Nine transition attributes of a per-slot stage sequence."""
        return transition_features_from_stages(stages)

    # ------------------------------------------------------------ training
    def fit_stage_sequences(
        self,
        stage_sequences: Sequence[Sequence[PlayerStage]],
        patterns: Sequence[ActivityPattern],
    ) -> "GameplayPatternClassifier":
        """Train from per-session stage sequences and their pattern labels."""
        if len(stage_sequences) != len(patterns):
            raise ValueError(
                f"{len(stage_sequences)} sequences but {len(patterns)} pattern labels"
            )
        X = np.stack([self.features_from_stages(seq) for seq in stage_sequences])
        return self.fit_features(X, patterns)

    def fit_features(self, X: np.ndarray, y: Sequence) -> "GameplayPatternClassifier":
        """Train directly on precomputed transition-attribute vectors.

        When ``balance_classes`` is set (default), the minority pattern is
        oversampled to the majority size — the Table 1 catalog is heavily
        skewed toward spectate-and-play titles, which would otherwise bias
        the model against continuous-play sessions.
        """
        X = np.atleast_2d(X)
        labels = np.array(
            [p.value if isinstance(p, ActivityPattern) else p for p in y]
        )
        if self.balance_classes:
            rng = np.random.default_rng(self._random_state)
            classes, counts = np.unique(labels, return_counts=True)
            target = counts.max()
            X_parts, y_parts = [X], [labels]
            for label, count in zip(classes, counts):
                deficit = int(target - count)
                if deficit <= 0:
                    continue
                indices = np.flatnonzero(labels == label)
                resampled = rng.choice(indices, size=deficit, replace=True)
                X_parts.append(X[resampled])
                y_parts.append(labels[resampled])
            X = np.vstack(X_parts)
            labels = np.concatenate(y_parts)
        self.model.fit(X, labels)
        return self

    # ----------------------------------------------------------- inference
    def predict_features(self, features: np.ndarray) -> PatternPrediction:
        """Predict from a nine-attribute vector (confidence-gated)."""
        proba = self.model.predict_proba(features.reshape(1, -1))[0]
        best = int(np.argmax(proba))
        confidence = float(proba[best])
        pattern = ActivityPattern(str(self.model.classes_[best]))
        confident = confidence >= self.confidence_threshold
        return PatternPrediction(
            pattern=pattern if confident else None,
            confidence=confidence,
            confident=confident,
            slots_observed=0,
        )

    def predict_stages(self, stages: Sequence[PlayerStage]) -> PatternPrediction:
        """Predict from a full per-slot stage sequence."""
        gameplay_slots = [s for s in stages if s in PlayerStage.gameplay_stages()]
        if len(gameplay_slots) < self.min_slots:
            return PatternPrediction(
                pattern=None,
                confidence=0.0,
                confident=False,
                slots_observed=len(gameplay_slots),
            )
        prediction = self.predict_features(self.features_from_stages(stages))
        prediction.slots_observed = len(gameplay_slots)
        return prediction

    def predict_incremental(
        self, stages: Sequence[PlayerStage]
    ) -> Tuple[PatternPrediction, int]:
        """Replay a stage sequence slot-by-slot until the confidence gate opens.

        Returns the first confident prediction and the number of gameplay
        slots that were needed (the paper's "time to confident inference",
        about five minutes on average at the 75% threshold).  When no
        confident prediction is reached, the final undecided prediction and
        the total slot count are returned.
        """
        modeler = StageTransitionModeler()
        gameplay_seen = 0
        last = PatternPrediction(pattern=None, confidence=0.0, confident=False, slots_observed=0)
        for stage in stages:
            modeler.update(stage)
            if stage in PlayerStage.gameplay_stages():
                gameplay_seen += 1
            if gameplay_seen < self.min_slots:
                continue
            prediction = self.predict_features(modeler.feature_vector())
            prediction.slots_observed = gameplay_seen
            last = prediction
            if prediction.confident:
                return prediction, gameplay_seen
        return last, gameplay_seen

    #: first chunk size (eligible slots per session per round) of the
    #: batched incremental replay; later rounds grow geometrically
    _BATCH_CHUNK = 16

    def predict_incremental_many(
        self, stage_sequences: Sequence[Sequence[PlayerStage]]
    ) -> List[Tuple[PatternPrediction, int]]:
        """Batched :meth:`predict_incremental` over many stage sequences.

        Semantically identical to calling :meth:`predict_incremental` per
        sequence, but vectorised on both axes: the per-slot replay of the
        transition modeler becomes one cumulative prefix-attribute matrix
        per session (:func:`~repro.core.transition.
        prefix_transition_features`), and the forest evaluates the eligible
        slots of *all* unresolved sessions together, a growing chunk per
        round.  Chunking preserves the sequential early exit — a session
        whose confidence gate opens in its first few eligible slots never
        pays for the rest of its timeline — while keeping the number of
        ``predict_proba`` calls logarithmic instead of one per slot.
        """
        prefixes = [prefix_transition_features(seq) for seq in stage_sequences]
        n_sessions = len(prefixes)
        results: List[Optional[Tuple[PatternPrediction, int]]] = [None] * n_sessions

        pending: List[int] = []
        positions = [0] * n_sessions
        eligible: List[np.ndarray] = []
        for index, (features, gameplay_seen) in enumerate(prefixes):
            slots = np.flatnonzero(gameplay_seen >= self.min_slots)
            eligible.append(slots)
            if slots.size:
                pending.append(index)
            else:
                total = int(gameplay_seen[-1]) if gameplay_seen.size else 0
                results[index] = (
                    PatternPrediction(
                        pattern=None, confidence=0.0, confident=False, slots_observed=0
                    ),
                    total,
                )

        chunk = self._BATCH_CHUNK
        while pending:
            spans: List[Tuple[int, np.ndarray]] = []
            blocks: List[np.ndarray] = []
            for index in pending:
                slots = eligible[index][positions[index] : positions[index] + chunk]
                spans.append((index, slots))
                blocks.append(prefixes[index][0][slots])
            proba = self.model.predict_proba(np.vstack(blocks))
            classes = self.model.classes_

            cursor = 0
            still_pending: List[int] = []
            for index, slots in spans:
                rows = proba[cursor : cursor + slots.size]
                cursor += slots.size
                best = np.argmax(rows, axis=1)
                confidences = rows[np.arange(slots.size), best]
                confident = confidences >= self.confidence_threshold
                gameplay_seen = prefixes[index][1]
                if confident.any():
                    winner = int(np.argmax(confident))
                    observed = int(gameplay_seen[slots[winner]])
                    results[index] = (
                        PatternPrediction(
                            pattern=ActivityPattern(str(classes[int(best[winner])])),
                            confidence=float(confidences[winner]),
                            confident=True,
                            slots_observed=observed,
                        ),
                        observed,
                    )
                    continue
                positions[index] += slots.size
                if positions[index] >= eligible[index].size:
                    # never confident: the sequential replay reports the
                    # prediction of the final slot (the last eligible one)
                    total = int(gameplay_seen[-1])
                    results[index] = (
                        PatternPrediction(
                            pattern=None,
                            confidence=float(confidences[-1]),
                            confident=False,
                            slots_observed=int(gameplay_seen[slots[-1]]),
                        ),
                        total,
                    )
                else:
                    still_pending.append(index)
            pending = still_pending
            chunk *= 4
        return results  # type: ignore[return-value]

    def evaluate(
        self,
        stage_sequences: Sequence[Sequence[PlayerStage]],
        patterns: Sequence[ActivityPattern],
    ) -> dict:
        """Accuracy per pattern over labeled sequences (confidence gate off)."""
        correct = {pattern: 0 for pattern in ActivityPattern}
        totals = {pattern: 0 for pattern in ActivityPattern}
        for stages, truth in zip(stage_sequences, patterns):
            features = self.features_from_stages(stages)
            proba = self.model.predict_proba(features.reshape(1, -1))[0]
            predicted = ActivityPattern(
                str(self.model.classes_[int(np.argmax(proba))])
            )
            totals[truth] += 1
            if predicted is truth:
                correct[truth] += 1
        per_pattern = {
            pattern: (correct[pattern] / totals[pattern]) if totals[pattern] else float("nan")
            for pattern in ActivityPattern
        }
        overall_total = sum(totals.values())
        overall = sum(correct.values()) / overall_total if overall_total else float("nan")
        return {"overall": overall, "per_pattern": per_pattern}
