"""The end-to-end real-time context classification pipeline (Fig. 6).

The pipeline chains every component of the paper's methodology:

1. the **cloud gaming packet filter** selects streaming flows;
2. the **game title classification** process consumes the first ``N``
   seconds of downstream packets;
3. the **player activity stage** process continuously classifies per-slot
   stages, feeds the stage transition modeler and, once confident, infers
   the gameplay activity pattern;
4. the **objective QoE module** measures frame rate, throughput, lag and
   loss, and the **effective QoE calibration** corrects the objective label
   using the classified context.

Training uses a labeled corpus of sessions (:class:`~repro.simulation.
lab_dataset.LabDataset` or any list of :class:`GameSession`); inference
accepts raw packets, a flow, or a generated session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as dataclasses_replace
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.activity_classifier import PlayerActivityClassifier
from repro.core.pattern_classifier import GameplayPatternClassifier, PatternPrediction
from repro.core.qoe import (
    EffectiveQoECalibrator,
    ObjectiveQoEEstimator,
    QoELevel,
    QoEMetrics,
)
from repro.core.title_classifier import GameTitleClassifier, TitlePrediction
from repro.core.transition import StageTransitionModeler
from repro.net.filter import CloudGamingFlowDetector
from repro.net.packet import Packet, PacketStream
from repro.simulation.catalog import (
    CATALOG,
    ActivityPattern,
    PlayerStage,
    UNKNOWN_TITLE,
)
from repro.simulation.session import GameSession


@dataclass
class SessionContextReport:
    """Everything the pipeline reports for one streaming session."""

    platform: Optional[str]
    title: TitlePrediction
    stage_timeline: List[PlayerStage]
    stage_fractions: Dict[PlayerStage, float]
    pattern: PatternPrediction
    objective_metrics: QoEMetrics
    objective_qoe: QoELevel
    effective_qoe: QoELevel

    @property
    def context_label(self) -> str:
        """Human-readable context summary (title, or pattern fallback)."""
        if not self.title.is_unknown:
            return self.title.title
        if self.pattern.pattern is not None:
            return f"unknown title ({self.pattern.pattern.value})"
        return "unknown title (pattern undecided)"


class ContextClassificationPipeline:
    """Trainable end-to-end pipeline combining all classification processes.

    Parameters mirror the deployed configuration of the paper: a 5-second
    title window with 1-second slots and V = 10%, 1-second activity slots
    with EMA weight 0.5, and a 75% confidence threshold for pattern
    inference.
    """

    def __init__(
        self,
        title_window_seconds: float = 5.0,
        title_slot_duration: float = 1.0,
        activity_slot_duration: float = 1.0,
        activity_alpha: float = 0.5,
        pattern_confidence_threshold: float = 0.75,
        title_confidence_threshold: float = 0.4,
        random_state: Optional[int] = None,
    ) -> None:
        self.detector = CloudGamingFlowDetector()
        self.title_classifier = GameTitleClassifier(
            window_seconds=title_window_seconds,
            slot_duration=title_slot_duration,
            confidence_threshold=title_confidence_threshold,
            random_state=random_state,
        )
        self.activity_classifier = PlayerActivityClassifier(
            slot_duration=activity_slot_duration,
            alpha=activity_alpha,
            random_state=random_state,
        )
        self.pattern_classifier = GameplayPatternClassifier(
            confidence_threshold=pattern_confidence_threshold,
            random_state=random_state,
        )
        self.qoe_estimator = ObjectiveQoEEstimator()
        self.qoe_calibrator = EffectiveQoECalibrator()
        self._fitted = False

    # ------------------------------------------------------------ training
    def fit(self, sessions: Sequence[GameSession]) -> "ContextClassificationPipeline":
        """Train all three classifiers from a labeled session corpus.

        Feature extraction runs on the batch paths: the title classifier's
        launch attributes come from one grouped reduction over the whole
        corpus, and the stage sequences feeding the pattern classifier are
        classified with one forest pass
        (:meth:`PlayerActivityClassifier.predict_slots_many`) so training
        matches the deployed cascade including its classification noise.
        """
        if not sessions:
            raise ValueError("cannot fit the pipeline on an empty corpus")

        # 1. game title classifier: launch windows + title labels
        launch_streams = [session.packets for session in sessions]
        titles = [session.title_name for session in sessions]
        self.title_classifier.fit(launch_streams, titles)

        # 2. player activity stage classifier: per-slot volumetric features
        slot_labels = [
            session.slot_ground_truth(self.activity_classifier.slot_duration)
            for session in sessions
        ]
        gameplay_sessions = [
            (session, labels)
            for session, labels in zip(sessions, slot_labels)
            if any(label is not PlayerStage.LAUNCH for label in labels)
        ]
        if gameplay_sessions:
            self.activity_classifier.fit(
                [session.packets for session, _ in gameplay_sessions],
                [labels for _, labels in gameplay_sessions],
            )

            # 3. gameplay activity pattern classifier: trained on the stage
            #    sequences *as classified* by the previous process so that
            #    training matches the deployed cascade (classification noise
            #    included), labeled by the title's ground-truth pattern
            classified_sequences = self.activity_classifier.predict_slots_many(
                [session.packets for session, _ in gameplay_sessions]
            )
            self.pattern_classifier.fit_stage_sequences(
                classified_sequences,
                [session.pattern for session, _ in gameplay_sessions],
            )
        self._fitted = True
        return self

    # ----------------------------------------------------------- inference
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("pipeline is not fitted; call fit() first")

    def _as_stream(self, source) -> tuple[Optional[str], PacketStream, float]:
        """Normalise the input into (platform, PacketStream, rate_scale).

        ``rate_scale`` records the fidelity a synthetic session was generated
        at so that absolute QoE metrics (throughput) can be reported at
        physical scale; real captures always use 1.0.
        """
        if isinstance(source, GameSession):
            return "GeForce NOW", source.packets, source.rate_scale
        if isinstance(source, PacketStream):
            stream = source
        else:
            stream = PacketStream(source)
        sessions = self.detector.detect(stream.to_list())
        if sessions:
            largest = max(sessions, key=lambda s: s.flow.bytes())
            return largest.platform, largest.flow.packets, 1.0
        return None, stream, 1.0

    def process(self, source, latency_ms: Optional[float] = None) -> SessionContextReport:
        """Classify the context of one session and report calibrated QoE.

        Parameters
        ----------
        source:
            A :class:`GameSession`, a :class:`PacketStream` or an iterable of
            :class:`Packet` objects (in which case the cloud-gaming flow
            detector selects the streaming flow first).
        latency_ms:
            Optional out-of-band access latency for the QoE metrics.

        Returns
        -------
        SessionContextReport
            The classified context and QoE labels.  This is the sequential
            real-time path (per-slot incremental pattern inference);
            :meth:`process_many` produces identical reports for whole
            corpora several times faster.
        """
        platform, stream, rate_scale = self._as_stream(source)
        return self.classify_stream(
            stream, platform=platform, rate_scale=rate_scale, latency_ms=latency_ms
        )

    def classify_stream(
        self,
        stream: PacketStream,
        platform: Optional[str] = None,
        rate_scale: float = 1.0,
        latency_ms: Optional[float] = None,
    ) -> SessionContextReport:
        """Classify one already-demultiplexed session stream (Fig. 6 cascade).

        The body of :meth:`process` after flow selection: callers that have
        already isolated a streaming flow (the batch engine's normalisation,
        or the streaming runtime's per-flow session states) classify it here
        without re-running the cloud-gaming packet filter.  The streaming
        runtime (:mod:`repro.runtime`) invokes this on each session's
        accumulated packets at close time, which is what makes its final
        reports bit-identical to offline :meth:`process` calls.

        Parameters
        ----------
        stream:
            The session's packet stream (one streaming flow).
        platform:
            Detected platform name carried into the report (``None`` when
            unknown).
        rate_scale:
            Packet-count fidelity the stream was generated at (1.0 for real
            captures); throughput is rescaled to physical scale before the
            QoE expectations apply.
        latency_ms:
            Optional out-of-band access latency for the QoE metrics.
        """
        self._require_fitted()

        title_prediction = self.title_classifier.predict_stream(stream)
        stage_timeline = self.activity_classifier.predict_slots(stream)

        modeler = StageTransitionModeler()
        modeler.update_sequence(stage_timeline)
        pattern_prediction, _slots_needed = self.pattern_classifier.predict_incremental(
            stage_timeline
        )

        stage_fractions = self._stage_fractions(stage_timeline)
        metrics = self.qoe_estimator.estimate(stream, latency_ms=latency_ms)
        if rate_scale != 1.0:
            # rescale throughput of reduced-fidelity synthetic sessions back
            # to physical scale before applying QoE expectations
            metrics = dataclasses_replace(
                metrics, throughput_mbps=metrics.throughput_mbps / rate_scale
            )
        objective = self.qoe_calibrator.objective_level(metrics)

        known_pattern = self._resolve_pattern(title_prediction, pattern_prediction)
        effective = self.qoe_calibrator.effective_level(
            metrics,
            title_name=None if title_prediction.is_unknown else title_prediction.title,
            pattern=known_pattern,
            stage_fractions=stage_fractions,
        )
        return SessionContextReport(
            platform=platform,
            title=title_prediction,
            stage_timeline=stage_timeline,
            stage_fractions=stage_fractions,
            pattern=pattern_prediction,
            objective_metrics=metrics,
            objective_qoe=objective,
            effective_qoe=effective,
        )

    def process_many(
        self, sources: Iterable, latency_ms: Optional[float] = None
    ) -> List[SessionContextReport]:
        """Classify a whole corpus of sessions through the batched engine.

        Produces reports identical to ``[process(s) for s in sources]`` but
        runs every pipeline stage on the whole batch at once instead of one
        session at a time:

        1. **launch attributes** — the 51 packet-group attributes of all
           sessions' launch windows come from one grouped bincount/lexsort
           reduction over a session-and-slot segment-id column
           (:func:`~repro.core.features.launch_feature_matrix`), and the
           title forest traverses all rows in a single ``predict_proba``;
        2. **stage timelines** — per-slot volumetric attributes are stacked
           across sessions and classified with one forest pass
           (:meth:`~repro.core.activity_classifier.PlayerActivityClassifier.
           predict_slots_many`);
        3. **pattern inference** — the slot-by-slot incremental replay is
           vectorised into prefix transition-attribute matrices and one
           forest pass over every eligible (session, slot) row
           (:meth:`~repro.core.pattern_classifier.GameplayPatternClassifier.
           predict_incremental_many`);
        4. **QoE** — objective metrics are estimated per session on the
           columnar arrays, then the objective and context-calibrated levels
           of the whole batch are mapped in one vectorised pass
           (:meth:`~repro.core.qoe.EffectiveQoECalibrator.effective_levels`).

        Parameters
        ----------
        sources:
            Iterable of sessions; each element accepts the same forms as
            :meth:`process` (a :class:`GameSession`, a :class:`PacketStream`
            or an iterable of :class:`Packet` objects).
        latency_ms:
            Optional out-of-band access latency applied to every session.

        Returns
        -------
        list of SessionContextReport
            One report per source, in input order.
        """
        self._require_fitted()
        normalised = [self._as_stream(source) for source in sources]
        if not normalised:
            return []
        streams = [stream for _, stream, _ in normalised]

        title_predictions = self.title_classifier.predict_streams(streams)
        stage_timelines = self.activity_classifier.predict_slots_many(streams)
        pattern_predictions = [
            prediction
            for prediction, _slots_needed in self.pattern_classifier.predict_incremental_many(
                stage_timelines
            )
        ]
        stage_fractions = [
            self._stage_fractions(timeline) for timeline in stage_timelines
        ]

        metrics_list = self.qoe_estimator.estimate_many(streams, latency_ms=latency_ms)
        metrics_list = [
            metrics
            if rate_scale == 1.0
            else dataclasses_replace(
                metrics, throughput_mbps=metrics.throughput_mbps / rate_scale
            )
            for metrics, (_, _, rate_scale) in zip(metrics_list, normalised)
        ]
        objective_levels = self.qoe_calibrator.objective_levels(metrics_list)
        resolved_patterns = [
            self._resolve_pattern(title, pattern)
            for title, pattern in zip(title_predictions, pattern_predictions)
        ]
        effective_levels = self.qoe_calibrator.effective_levels(
            metrics_list,
            title_names=[
                None if title.is_unknown else title.title
                for title in title_predictions
            ],
            patterns=resolved_patterns,
            stage_fractions=stage_fractions,
        )

        return [
            SessionContextReport(
                platform=platform,
                title=title,
                stage_timeline=timeline,
                stage_fractions=fractions,
                pattern=pattern,
                objective_metrics=metrics,
                objective_qoe=objective,
                effective_qoe=effective,
            )
            for (platform, _, _), title, timeline, fractions, pattern, metrics, objective, effective in zip(
                normalised,
                title_predictions,
                stage_timelines,
                stage_fractions,
                pattern_predictions,
                metrics_list,
                objective_levels,
                effective_levels,
            )
        ]

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _stage_fractions(stages: Sequence[PlayerStage]) -> Dict[PlayerStage, float]:
        gameplay = [s for s in stages if s in PlayerStage.gameplay_stages()]
        if not gameplay:
            return {stage: 0.0 for stage in PlayerStage.gameplay_stages()}
        return {
            stage: sum(1 for s in gameplay if s is stage) / len(gameplay)
            for stage in PlayerStage.gameplay_stages()
        }

    @staticmethod
    def _resolve_pattern(
        title: TitlePrediction, pattern: PatternPrediction
    ) -> Optional[ActivityPattern]:
        """Cross-validate the two processes: title implies a pattern."""
        if not title.is_unknown and title.title in CATALOG:
            return CATALOG[title.title].pattern
        return pattern.pattern
