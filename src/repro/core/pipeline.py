"""The end-to-end real-time context classification pipeline (Fig. 6).

The pipeline chains every component of the paper's methodology:

1. the **cloud gaming packet filter** selects streaming flows;
2. the **game title classification** process consumes the first ``N``
   seconds of downstream packets;
3. the **player activity stage** process continuously classifies per-slot
   stages, feeds the stage transition modeler and, once confident, infers
   the gameplay activity pattern;
4. the **objective QoE module** measures frame rate, throughput, lag and
   loss, and the **effective QoE calibration** corrects the objective label
   using the classified context.

Training uses a labeled corpus of sessions (:class:`~repro.simulation.
lab_dataset.LabDataset` or any list of :class:`GameSession`); inference
accepts raw packets, a flow, or a generated session.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace as dataclasses_replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.activity_classifier import PlayerActivityClassifier
from repro.core.pattern_classifier import GameplayPatternClassifier, PatternPrediction
from repro.core.qoe import (
    EffectiveQoECalibrator,
    ObjectiveQoEEstimator,
    QoELevel,
    QoEMetrics,
)
from repro.core.reducers import SessionReducerCascade
from repro.core.title_classifier import GameTitleClassifier, TitlePrediction
from repro.net.filter import CloudGamingFlowDetector
from repro.net.packet import PacketStream
from repro.simulation.catalog import (
    CATALOG,
    ActivityPattern,
    PlayerStage,
)
from repro.simulation.session import GameSession


@dataclass
class SessionContextReport:
    """Everything the pipeline reports for one streaming session.

    ``qoe_approximate`` is ``True`` when the QoE metrics came from the
    O(intervals) approximate tier (``qoe_mode="approx"`` /
    ``session_mode="approx"``) instead of the exact downstream columns —
    consumers aggregating exact and approximate sessions can tell them
    apart.  Context fields (platform, title, stages, pattern) are never
    approximate: only the QoE stage has a lossy tier.
    """

    platform: Optional[str]
    title: TitlePrediction
    stage_timeline: List[PlayerStage]
    stage_fractions: Dict[PlayerStage, float]
    pattern: PatternPrediction
    objective_metrics: QoEMetrics
    objective_qoe: QoELevel
    effective_qoe: QoELevel
    qoe_approximate: bool = False

    @property
    def context_label(self) -> str:
        """Human-readable context summary (title, or pattern fallback)."""
        if not self.title.is_unknown:
            return self.title.title
        if self.pattern.pattern is not None:
            return f"unknown title ({self.pattern.pattern.value})"
        return "unknown title (pattern undecided)"


class ContextClassificationPipeline:
    """Trainable end-to-end pipeline combining all classification processes.

    Parameters mirror the deployed configuration of the paper: a 5-second
    title window with 1-second slots and V = 10%, 1-second activity slots
    with EMA weight 0.5, and a 75% confidence threshold for pattern
    inference.
    """

    def __init__(
        self,
        title_window_seconds: float = 5.0,
        title_slot_duration: float = 1.0,
        activity_slot_duration: float = 1.0,
        activity_alpha: float = 0.5,
        pattern_confidence_threshold: float = 0.75,
        title_confidence_threshold: float = 0.4,
        random_state: Optional[int] = None,
    ) -> None:
        self.detector = CloudGamingFlowDetector()
        self.title_classifier = GameTitleClassifier(
            window_seconds=title_window_seconds,
            slot_duration=title_slot_duration,
            confidence_threshold=title_confidence_threshold,
            random_state=random_state,
        )
        self.activity_classifier = PlayerActivityClassifier(
            slot_duration=activity_slot_duration,
            alpha=activity_alpha,
            random_state=random_state,
        )
        self.pattern_classifier = GameplayPatternClassifier(
            confidence_threshold=pattern_confidence_threshold,
            random_state=random_state,
        )
        self.qoe_estimator = ObjectiveQoEEstimator()
        self.qoe_calibrator = EffectiveQoECalibrator()
        self._fitted = False
        self._digest = None

    # ------------------------------------------------------------ training
    def fit(self, sessions: Sequence[GameSession]) -> "ContextClassificationPipeline":
        """Train all three classifiers from a labeled session corpus.

        Feature extraction runs on the batch paths: the title classifier's
        launch attributes come from one grouped reduction over the whole
        corpus, and the stage sequences feeding the pattern classifier are
        classified with one forest pass
        (:meth:`PlayerActivityClassifier.predict_slots_many`) so training
        matches the deployed cascade including its classification noise.
        """
        if not sessions:
            raise ValueError("cannot fit the pipeline on an empty corpus")

        # 1. game title classifier: launch windows + title labels
        launch_streams = [session.packets for session in sessions]
        titles = [session.title_name for session in sessions]
        self.title_classifier.fit(launch_streams, titles)

        # 2. player activity stage classifier: per-slot volumetric features
        slot_labels = [
            session.slot_ground_truth(self.activity_classifier.slot_duration)
            for session in sessions
        ]
        gameplay_sessions = [
            (session, labels)
            for session, labels in zip(sessions, slot_labels)
            if any(label is not PlayerStage.LAUNCH for label in labels)
        ]
        if gameplay_sessions:
            self.activity_classifier.fit(
                [session.packets for session, _ in gameplay_sessions],
                [labels for _, labels in gameplay_sessions],
            )

            # 3. gameplay activity pattern classifier: trained on the stage
            #    sequences *as classified* by the previous process so that
            #    training matches the deployed cascade (classification noise
            #    included), labeled by the title's ground-truth pattern
            classified_sequences = self.activity_classifier.predict_slots_many(
                [session.packets for session, _ in gameplay_sessions]
            )
            self.pattern_classifier.fit_stage_sequences(
                classified_sequences,
                [session.pattern for session, _ in gameplay_sessions],
            )
        self._fitted = True
        self._digest = None
        self.compile_kernels()
        return self

    def compile_kernels(self) -> "ContextClassificationPipeline":
        """Compile every fitted forest into its fused inference kernel.

        Touching :attr:`RandomForestClassifier.kernel` builds the
        rank-quantised level tables eagerly, so the first session processed
        after :meth:`fit` (or after :func:`repro.runtime.persistence.load_pipeline`)
        pays no compilation latency.  Idempotent; unfitted forests are
        skipped.
        """
        for classifier in (
            self.title_classifier,
            self.activity_classifier,
            self.pattern_classifier,
        ):
            model = classifier.model
            if hasattr(model, "classes_"):
                model.kernel  # noqa: B018 - force eager compilation
        return self

    # ----------------------------------------------------------- inference
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("pipeline is not fitted; call fit() first")

    def _as_stream(self, source) -> tuple[Optional[str], PacketStream, float]:
        """Normalise the input into (platform, PacketStream, rate_scale).

        ``rate_scale`` records the fidelity a synthetic session was generated
        at so that absolute QoE metrics (throughput) can be reported at
        physical scale; real captures always use 1.0.
        """
        if isinstance(source, GameSession):
            return "GeForce NOW", source.packets, source.rate_scale
        if isinstance(source, PacketStream):
            stream = source
        else:
            stream = PacketStream(source)
        sessions = self.detector.detect(stream.to_list())
        if sessions:
            largest = max(sessions, key=lambda s: s.flow.bytes())
            return largest.platform, largest.flow.packets, 1.0
        return None, stream, 1.0

    def process(
        self,
        source,
        latency_ms: Optional[float] = None,
        qoe_mode: str = "exact",
    ) -> SessionContextReport:
        """Classify the context of one session and report calibrated QoE.

        Parameters
        ----------
        source:
            A :class:`GameSession`, a :class:`PacketStream` or an iterable of
            :class:`Packet` objects (in which case the cloud-gaming flow
            detector selects the streaming flow first).
        latency_ms:
            Optional out-of-band access latency for the QoE metrics.
        qoe_mode:
            ``"exact"`` (default) or ``"approx"`` — the O(intervals)
            approximate QoE tier; the report then carries
            ``qoe_approximate=True`` and equals the streaming runtime's
            ``session_mode="approx"`` close report on the same packets.

        Returns
        -------
        SessionContextReport
            The classified context and QoE labels.  Single-session wrapper
            over the reducer cascade; :meth:`process_many` produces
            identical reports for whole corpora several times faster.
        """
        platform, stream, rate_scale = self._as_stream(source)
        return self.classify_stream(
            stream,
            platform=platform,
            rate_scale=rate_scale,
            latency_ms=latency_ms,
            qoe_mode=qoe_mode,
        )

    def new_cascade(
        self,
        qoe_interval_seconds: float = float("inf"),
        keep_history: bool = False,
        qoe_mode: str = "exact",
    ) -> SessionReducerCascade:
        """A fresh per-session reducer cascade in this pipeline's geometry.

        The cascade's slot duration, EMA weight and title window come from
        the fitted classifiers, so folding a session's packets through it
        and finalising (:meth:`finalize_cascades`) reproduces the offline
        cascade exactly.  The default QoE interval is infinite — one
        measurement window covering the whole session, right for one-shot
        offline classification; the streaming runtime passes its provisional
        window width (10 s) instead.  ``qoe_mode="approx"`` selects the
        O(intervals) approximate QoE tier.
        """
        return SessionReducerCascade(
            slot_duration=self.activity_classifier.slot_duration,
            alpha=self.activity_classifier.alpha,
            window_seconds=self.title_classifier.window_seconds,
            qoe_interval_seconds=qoe_interval_seconds,
            keep_history=keep_history,
            qoe_mode=qoe_mode,
        )

    def classify_stream(
        self,
        stream: PacketStream,
        platform: Optional[str] = None,
        rate_scale: float = 1.0,
        latency_ms: Optional[float] = None,
        qoe_mode: str = "exact",
    ) -> SessionContextReport:
        """Classify one already-demultiplexed session stream (Fig. 6 cascade).

        The body of :meth:`process` after flow selection: the stream's
        columns are folded through a :class:`SessionReducerCascade` in one
        batch and finalised — the *same* reducer implementations the
        streaming runtime folds live batches through, which is what makes
        runtime close-time reports bit-identical to offline :meth:`process`
        without replaying packet history.

        Parameters
        ----------
        stream:
            The session's packet stream (one streaming flow).
        platform:
            Detected platform name carried into the report (``None`` when
            unknown).
        rate_scale:
            Packet-count fidelity the stream was generated at (1.0 for real
            captures); throughput is rescaled to physical scale before the
            QoE expectations apply.
        latency_ms:
            Optional out-of-band access latency for the QoE metrics.
        qoe_mode:
            ``"exact"`` (default) or ``"approx"`` (the O(intervals) QoE
            tier; the report carries ``qoe_approximate=True``).
        """
        self._require_fitted()
        cascade = self.new_cascade(qoe_mode=qoe_mode)
        cascade.absorb_stream(stream)
        return self.finalize_cascades(
            [cascade], [platform], [rate_scale], latency_ms=latency_ms
        )[0]

    def finalize_cascades(
        self,
        cascades: Sequence[SessionReducerCascade],
        platforms: Optional[Sequence[Optional[str]]] = None,
        rate_scales: Optional[Sequence[float]] = None,
        latency_ms: Optional[float] = None,
    ) -> List[SessionContextReport]:
        """Finalise folded session cascades into offline-identical reports.

        The single driver behind :meth:`process`, :meth:`process_many` and
        the streaming runtime's close path.  Every stage finalises batched
        across the given sessions:

        1. **title** — launch attributes of all window buffers in one
           grouped reduction + one forest pass (the window buffer produces
           the same features as the full stream, since the labeler never
           reads past the window);
        2. **stage timelines** — the integer-exact slot counters convert to
           raw matrices and classify via
           :meth:`PlayerActivityClassifier.predict_raw_slots_many`
           (lockstep EMA, one forest pass);
        3. **pattern** — prefix transition attributes of the final
           timelines through the chunked early-exit
           :meth:`GameplayPatternClassifier.predict_incremental_many`;
        4. **QoE** — exact cascades: the per-interval downstream columns
           reproduce the sorted stream's views, so
           :meth:`ObjectiveQoEEstimator.estimate_arrays` equals offline
           ``estimate``; approx cascades (``qoe_mode="approx"``) finalise
           their O(1) session aggregates through
           :meth:`ObjectiveQoEEstimator.estimate_approx` and the report
           carries ``qoe_approximate=True``.  Objective and calibrated
           levels map in one vectorised pass either way.
        """
        self._require_fitted()
        cascades = list(cascades)
        if not cascades:
            return []
        n = len(cascades)
        if platforms is None:
            platforms = [None] * n
        if rate_scales is None:
            rate_scales = [1.0] * n

        title_predictions = self.title_classifier.predict_streams(
            [cascade.launch_stream() for cascade in cascades]
        )
        stage_timelines = self.activity_classifier.predict_raw_slots_many(
            [cascade.final_raw_matrix() for cascade in cascades]
        )
        pattern_predictions = [
            prediction
            for prediction, _slots_needed in self.pattern_classifier.predict_incremental_many(
                stage_timelines
            )
        ]
        stage_fractions = [
            self._stage_fractions(timeline) for timeline in stage_timelines
        ]

        metrics_list = [
            self.qoe_estimator.estimate_approx(
                latency_ms=latency_ms, **cascade.qoe_approx_arrays()
            )
            if cascade.qoe_mode == "approx"
            else self.qoe_estimator.estimate_arrays(
                latency_ms=latency_ms, **cascade.qoe_arrays()
            )
            for cascade in cascades
        ]
        metrics_list = [
            metrics
            if rate_scale == 1.0
            else dataclasses_replace(
                # rescale throughput of reduced-fidelity synthetic sessions
                # back to physical scale before the QoE expectations apply
                metrics, throughput_mbps=metrics.throughput_mbps / rate_scale
            )
            for metrics, rate_scale in zip(metrics_list, rate_scales)
        ]
        objective_levels = self.qoe_calibrator.objective_levels(metrics_list)
        resolved_patterns = [
            self._resolve_pattern(title, pattern)
            for title, pattern in zip(title_predictions, pattern_predictions)
        ]
        effective_levels = self.qoe_calibrator.effective_levels(
            metrics_list,
            title_names=[
                None if title.is_unknown else title.title
                for title in title_predictions
            ],
            patterns=resolved_patterns,
            stage_fractions=stage_fractions,
        )

        return [
            SessionContextReport(
                platform=platform,
                title=title,
                stage_timeline=timeline,
                stage_fractions=fractions,
                pattern=pattern,
                objective_metrics=metrics,
                objective_qoe=objective,
                effective_qoe=effective,
                qoe_approximate=cascade.qoe_mode == "approx",
            )
            for platform, title, timeline, fractions, pattern, metrics, objective, effective, cascade in zip(
                platforms,
                title_predictions,
                stage_timelines,
                stage_fractions,
                pattern_predictions,
                metrics_list,
                objective_levels,
                effective_levels,
                cascades,
            )
        ]

    def process_many(
        self,
        sources: Iterable,
        latency_ms: Optional[float] = None,
        qoe_mode: str = "exact",
    ) -> List[SessionContextReport]:
        """Classify a whole corpus of sessions through the batched engine.

        Produces reports identical to ``[process(s) for s in sources]``:
        every session's columns fold through a
        :class:`~repro.core.reducers.SessionReducerCascade` and the whole
        batch finalises together (:meth:`finalize_cascades`) — launch
        attributes in one grouped reduction + one forest pass, stage
        timelines from the slot counters with lockstep EMA in one forest
        pass, pattern inference through the chunked early-exit incremental
        replay, and QoE levels in one vectorised calibration pass.

        Parameters
        ----------
        sources:
            Iterable of sessions; each element accepts the same forms as
            :meth:`process` (a :class:`GameSession`, a :class:`PacketStream`
            or an iterable of :class:`Packet` objects).
        latency_ms:
            Optional out-of-band access latency applied to every session.
        qoe_mode:
            ``"exact"`` (default) or ``"approx"`` applied to every session.

        Returns
        -------
        list of SessionContextReport
            One report per source, in input order.
        """
        self._require_fitted()
        normalised = [self._as_stream(source) for source in sources]
        if not normalised:
            return []
        cascades = []
        for _, stream, _ in normalised:
            cascade = self.new_cascade(qoe_mode=qoe_mode)
            cascade.absorb_stream(stream)
            cascades.append(cascade)
        return self.finalize_cascades(
            cascades,
            platforms=[platform for platform, _, _ in normalised],
            rate_scales=[rate_scale for _, _, rate_scale in normalised],
            latency_ms=latency_ms,
        )

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _stage_fractions(stages: Sequence[PlayerStage]) -> Dict[PlayerStage, float]:
        gameplay = [s for s in stages if s in PlayerStage.gameplay_stages()]
        if not gameplay:
            return {stage: 0.0 for stage in PlayerStage.gameplay_stages()}
        return {
            stage: sum(1 for s in gameplay if s is stage) / len(gameplay)
            for stage in PlayerStage.gameplay_stages()
        }

    @staticmethod
    def _resolve_pattern(
        title: TitlePrediction, pattern: PatternPrediction
    ) -> Optional[ActivityPattern]:
        """Cross-validate the two processes: title implies a pattern."""
        if not title.is_unknown and title.title in CATALOG:
            return CATALOG[title.title].pattern
        return pattern.pattern
