"""Objective QoE measurement and context-calibrated effective QoE (§5.3).

The ISP's existing observability module (the gray box of Fig. 6) labels each
game streaming session's objective QoE as *good*, *medium* or *bad* by
mapping measured frame rate, throughput, latency and packet loss onto fixed
expected ranges (e.g. below 30 FPS or below 8 Mbps → bad).  The paper's
contribution is the *calibration* of those expectations with the classified
gameplay context: low-demand titles (e.g. Hearthstone) and low-demand stages
(idle/passive) legitimately stream at lower frame rates and bitrates, so the
frame-rate and throughput expectations are scaled down accordingly, while
the latency and loss expectations stay unchanged.

This module provides:

* :class:`ObjectiveQoEEstimator` — frame rate, streaming lag, resolution and
  loss estimated from the RTP streaming flow (the "state-of-the-art QoE
  measurement module" the paper builds upon [32]);
* :class:`QoEThresholds` / :func:`qoe_level_from_metrics` — the ISP's
  objective QoE mapping;
* :class:`EffectiveQoECalibrator` — the context-based calibration producing
  effective QoE levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.net.packet import Direction, PacketStream
from repro.simulation.catalog import (
    CATALOG,
    ActivityPattern,
    GameTitle,
    PlayerStage,
    UNKNOWN_TITLE,
)
from repro.simulation.traffic import DOWNSTREAM_STAGE_LEVELS, FRAME_RATE_STAGE_LEVELS


#: Downstream inter-arrival gaps larger than this are *inter-frame* gaps
#: (frame pacing rather than intra-burst spacing); their 95th percentile
#: approximates worst-case frame delivery lag.  Shared with the approximate
#: QoE reducer (:class:`repro.core.reducers.ApproxQoEIntervalReducer`) so
#: both tiers measure the same gap population.
FRAME_GAP_SECONDS = 0.002

#: Larger spacing marks the start of a new delivery burst — the RTP-free
#: fallback for frame-rate estimation counts these bursts.
BURST_GAP_SECONDS = 0.004


class QoELevel(Enum):
    """The three QoE levels used by the ISP observability system."""

    GOOD = "good"
    MEDIUM = "medium"
    BAD = "bad"


@dataclass(frozen=True)
class QoEMetrics:
    """Objective QoE / QoS metrics of one streaming session (or interval)."""

    frame_rate: float
    throughput_mbps: float
    latency_ms: float
    loss_rate: float
    streaming_lag_ms: Optional[float] = None
    resolution_estimate: Optional[str] = None


@dataclass(frozen=True)
class QoEThresholds:
    """Expected value ranges mapping metrics onto QoE levels.

    A metric below its ``bad`` threshold (or above, for latency/loss) makes
    the session *bad*; between ``bad`` and ``good`` thresholds makes it
    *medium*; otherwise *good*.  Defaults follow §5.3 ("a session with a
    streaming frame rate lower than 30 FPS and/or a throughput below 8 Mbps
    will be labeled with bad objective QoE").
    """

    frame_rate_good: float = 50.0
    frame_rate_bad: float = 30.0
    throughput_good_mbps: float = 12.0
    throughput_bad_mbps: float = 8.0
    latency_good_ms: float = 40.0
    latency_bad_ms: float = 80.0
    loss_good: float = 0.005
    loss_bad: float = 0.02

    def __post_init__(self) -> None:
        if self.frame_rate_bad > self.frame_rate_good:
            raise ValueError("frame_rate_bad must not exceed frame_rate_good")
        if self.throughput_bad_mbps > self.throughput_good_mbps:
            raise ValueError("throughput_bad_mbps must not exceed throughput_good_mbps")
        if self.latency_good_ms > self.latency_bad_ms:
            raise ValueError("latency_good_ms must not exceed latency_bad_ms")
        if self.loss_good > self.loss_bad:
            raise ValueError("loss_good must not exceed loss_bad")


def _level_low_is_bad(value: float, good: float, bad: float) -> QoELevel:
    if value < bad:
        return QoELevel.BAD
    if value < good:
        return QoELevel.MEDIUM
    return QoELevel.GOOD


def _level_high_is_bad(value: float, good: float, bad: float) -> QoELevel:
    if value > bad:
        return QoELevel.BAD
    if value > good:
        return QoELevel.MEDIUM
    return QoELevel.GOOD


_LEVEL_RANK = {QoELevel.GOOD: 0, QoELevel.MEDIUM: 1, QoELevel.BAD: 2}
_LEVELS_BY_RANK = (QoELevel.GOOD, QoELevel.MEDIUM, QoELevel.BAD)


def _rank_levels(
    frame_rate: np.ndarray,
    throughput: np.ndarray,
    latency: np.ndarray,
    loss: np.ndarray,
    frame_rate_good,
    frame_rate_bad,
    throughput_good,
    throughput_bad,
    latency_good,
    latency_bad,
    loss_good,
    loss_bad,
) -> np.ndarray:
    """Worst-verdict QoE rank (0=good, 1=medium, 2=bad) per session.

    Thresholds may be scalars (shared expectations) or per-session arrays
    (calibrated expectations).  Comparisons are the same strict ones as the
    scalar mapping (value < bad ⇒ bad, value < good ⇒ medium, else good;
    flipped for latency/loss), so ranks match per-session calls exactly.
    """

    def low_is_bad(value, good, bad):
        return np.where(value < bad, 2, np.where(value < good, 1, 0))

    def high_is_bad(value, good, bad):
        return np.where(value > bad, 2, np.where(value > good, 1, 0))

    return np.maximum.reduce(
        [
            low_is_bad(frame_rate, frame_rate_good, frame_rate_bad),
            low_is_bad(throughput, throughput_good, throughput_bad),
            high_is_bad(latency, latency_good, latency_bad),
            high_is_bad(loss, loss_good, loss_bad),
        ]
    )


def _metric_arrays(metrics: Sequence[QoEMetrics]) -> tuple:
    """The four gated metrics of a batch as stacked arrays."""
    return (
        np.array([m.frame_rate for m in metrics]),
        np.array([m.throughput_mbps for m in metrics]),
        np.array([m.latency_ms for m in metrics]),
        np.array([m.loss_rate for m in metrics]),
    )


def qoe_levels_from_metrics_batch(
    metrics: Sequence[QoEMetrics],
    thresholds: Sequence[QoEThresholds],
) -> List[QoELevel]:
    """Vectorised :func:`qoe_level_from_metrics` over many sessions.

    ``thresholds`` supplies one (possibly calibrated) expected-range set per
    session.  The four per-metric verdicts of every session are computed on
    stacked arrays with the same strict comparisons as the scalar mapping
    (value < bad ⇒ bad, value < good ⇒ medium, else good; flipped for
    latency/loss) and the worst verdict wins, so results match per-session
    calls exactly.
    """
    if len(metrics) != len(thresholds):
        raise ValueError(
            f"{len(metrics)} metric sets but {len(thresholds)} threshold sets"
        )
    if not metrics:
        return []
    frame_rate, throughput, latency, loss = _metric_arrays(metrics)
    ranks = _rank_levels(
        frame_rate,
        throughput,
        latency,
        loss,
        np.array([t.frame_rate_good for t in thresholds]),
        np.array([t.frame_rate_bad for t in thresholds]),
        np.array([t.throughput_good_mbps for t in thresholds]),
        np.array([t.throughput_bad_mbps for t in thresholds]),
        np.array([t.latency_good_ms for t in thresholds]),
        np.array([t.latency_bad_ms for t in thresholds]),
        np.array([t.loss_good for t in thresholds]),
        np.array([t.loss_bad for t in thresholds]),
    )
    return [_LEVELS_BY_RANK[rank] for rank in ranks]


def qoe_level_from_metrics(
    metrics: QoEMetrics, thresholds: Optional[QoEThresholds] = None
) -> QoELevel:
    """Map session metrics onto a QoE level (worst individual verdict wins)."""
    thresholds = thresholds or QoEThresholds()
    verdicts = [
        _level_low_is_bad(
            metrics.frame_rate, thresholds.frame_rate_good, thresholds.frame_rate_bad
        ),
        _level_low_is_bad(
            metrics.throughput_mbps,
            thresholds.throughput_good_mbps,
            thresholds.throughput_bad_mbps,
        ),
        _level_high_is_bad(
            metrics.latency_ms, thresholds.latency_good_ms, thresholds.latency_bad_ms
        ),
        _level_high_is_bad(metrics.loss_rate, thresholds.loss_good, thresholds.loss_bad),
    ]
    return max(verdicts, key=lambda level: _LEVEL_RANK[level])


def _distinct_count(values: np.ndarray) -> int:
    """Number of distinct values (``np.unique(values).size`` via one sort)."""
    if values.size == 0:
        return 0
    ordered = np.sort(values)
    return int(1 + np.count_nonzero(ordered[1:] != ordered[:-1]))


class ObjectiveQoEEstimator:
    """Estimates objective QoE metrics from a game streaming flow.

    Frame rate is inferred from distinct RTP timestamps (one per rendered
    frame); packet loss from RTP sequence gaps; streaming lag is approximated
    from the spread of per-frame packet bursts (a congested link stretches
    frame delivery); resolution is coarsely estimated from the per-frame
    byte budget.
    """

    def __init__(self, slot_duration: float = 1.0) -> None:
        if slot_duration <= 0:
            raise ValueError(f"slot_duration must be positive, got {slot_duration}")
        self.slot_duration = slot_duration

    def estimate(
        self,
        stream: PacketStream,
        latency_ms: Optional[float] = None,
    ) -> QoEMetrics:
        """Estimate session-average metrics from packets.

        ``latency_ms`` may be supplied from out-of-band measurements (e.g.
        TWAMP probes); when omitted a lag-based proxy is used.

        All inputs are read as cached per-direction views of the columnar
        stream (no per-packet work, no intermediate child stream) and fed
        through :meth:`estimate_arrays`, the same core the streaming
        runtime's bounded QoE reducer finalises through.
        """
        return self.estimate_arrays(
            duration_s=stream.duration,
            down_times=stream.timestamps(Direction.DOWNSTREAM),
            down_payload_bytes=float(
                stream.payload_sizes(Direction.DOWNSTREAM).sum()
            ),
            rtp_timestamps=stream.rtp_timestamps(Direction.DOWNSTREAM),
            rtp_sequences=stream.rtp_sequences(Direction.DOWNSTREAM),
            latency_ms=latency_ms,
        )

    def estimate_arrays(
        self,
        duration_s: float,
        down_times: np.ndarray,
        down_payload_bytes: float,
        rtp_timestamps: np.ndarray,
        rtp_sequences: np.ndarray,
        latency_ms: Optional[float] = None,
    ) -> QoEMetrics:
        """Estimate metrics from the QoE-relevant downstream columns.

        ``down_times`` / ``rtp_timestamps`` / ``rtp_sequences`` must be in
        stream (time-sorted arrival) order, exactly the per-direction views
        of a sorted :class:`PacketStream`; ``down_payload_bytes`` is the
        downstream payload byte total (integral, so accumulation order
        cannot change it).  Given equal inputs the result is bit-identical
        to :meth:`estimate` — this is the entry point for bounded session
        state that retains columns instead of packets.
        """
        duration = max(duration_s, 1e-9)
        throughput = down_payload_bytes * 8 / duration / 1e6

        if rtp_timestamps.size:
            frame_rate = _distinct_count(rtp_timestamps) / duration
        else:
            # fall back to burst detection on arrival times
            frame_rate = (
                float(np.sum(np.diff(down_times) > BURST_GAP_SECONDS) + 1) / duration
                if down_times.size > 1
                else 0.0
            )

        loss = self._loss_from_sequences(rtp_sequences)
        lag = self._lag_from_bursts(down_times)
        resolution = self._resolution_from_bitrate(throughput, frame_rate)
        return QoEMetrics(
            frame_rate=float(frame_rate),
            throughput_mbps=float(throughput),
            latency_ms=float(latency_ms if latency_ms is not None else lag),
            loss_rate=float(loss),
            streaming_lag_ms=float(lag),
            resolution_estimate=resolution,
        )

    def estimate_many(
        self,
        streams: Sequence[PacketStream],
        latency_ms: Optional[float] = None,
    ) -> List[QoEMetrics]:
        """Estimate metrics for a corpus of sessions.

        Each session's estimate is already fully vectorised (unique RTP
        timestamps, sequence-gap expansion and burst percentiles run on the
        columnar arrays), so the batch form simply maps over sessions;
        results equal per-session :meth:`estimate` calls.
        """
        return [self.estimate(stream, latency_ms=latency_ms) for stream in streams]

    def estimate_approx(
        self,
        duration_s: float,
        down_payload_bytes: float,
        n_down_packets: int,
        n_frames: int,
        n_rtp: int,
        burst_gap_count: int,
        gap_count: int,
        gap_max_s: float,
        gap_samples: np.ndarray,
        seq_received: int,
        seq_lost: int,
        latency_ms: Optional[float] = None,
    ) -> QoEMetrics:
        """Estimate metrics from O(1) per-session aggregates (the approx tier).

        The inputs are the fixed-size fold state of
        :class:`repro.core.reducers.ApproxQoEIntervalReducer` — no packet
        columns exist any more at this point.  Each metric mirrors the exact
        formula of :meth:`estimate_arrays` on its aggregate:

        * **throughput** — byte total over duration, *exact* (the byte sum
          is integral and order-free);
        * **frame rate** — ``n_frames`` counts strict record highs of the
          RTP timestamp, which equals the distinct count whenever the RTP
          clock is non-decreasing in arrival order (undercounts under
          cross-batch frame interleaving, never overcounts).  Without RTP,
          ``burst_gap_count`` reproduces the burst-detection fallback
          exactly (same :data:`BURST_GAP_SECONDS` population);
        * **loss** — sequence-range minus counting-set arithmetic, exact
          while the session's sequence numbers span at most one 16-bit wrap
          and the stream has no resets (see the reducer's docstring for the
          error model past that);
        * **lag** — the 95th percentile of the reservoir-sampled inter-frame
          gaps; exact while ``gap_count`` fits the reservoir, a fixed-seed
          unbiased sample estimate beyond it.
        """
        duration = max(duration_s, 1e-9)
        throughput = down_payload_bytes * 8 / duration / 1e6

        if n_rtp:
            frame_rate = n_frames / duration
        else:
            frame_rate = (
                float(burst_gap_count + 1) / duration if n_down_packets > 1 else 0.0
            )

        # mirror _loss_from_sequences: fewer than two observed sequence
        # numbers cannot witness a gap
        if seq_received >= 2 and (seq_received + seq_lost) > 0:
            loss = seq_lost / (seq_received + seq_lost)
        else:
            loss = 0.0

        # mirror _lag_from_bursts: below 10 packets the percentile is noise
        if n_down_packets < 10 or gap_count == 0:
            lag = 0.0
        elif gap_samples.size:
            lag = float(np.percentile(gap_samples, 95) * 1000.0)
        else:  # defensive: aggregates from a foreign producer
            lag = float(gap_max_s * 1000.0)

        resolution = self._resolution_from_bitrate(throughput, frame_rate)
        return QoEMetrics(
            frame_rate=float(frame_rate),
            throughput_mbps=float(throughput),
            latency_ms=float(latency_ms if latency_ms is not None else lag),
            loss_rate=float(loss),
            streaming_lag_ms=float(lag),
            resolution_estimate=resolution,
        )

    def _loss_from_sequences(self, sequences: np.ndarray) -> float:
        """Loss rate from downstream RTP sequence numbers (arrival order)."""
        if sequences.size < 2:
            return 0.0
        received = int(sequences.size)
        gaps = (sequences[1:] - sequences[:-1] - 1) & 0xFFFF
        # small gaps are candidate losses; large jumps are stream resets
        # (e.g. a new RTP segment), not loss bursts.  A skipped sequence
        # number that still shows up elsewhere in the flow was merely
        # reordered by jitter, not lost.
        candidate = (gaps > 0) & (gaps < 200)
        lost = 0
        if candidate.any():
            gap_sizes = gaps[candidate]
            gap_starts = sequences[:-1][candidate]
            # expand every gap into its skipped sequence numbers at once:
            # start_i + (1 .. gap_i), flattened across all gaps
            offsets = np.arange(int(gap_sizes.sum())) - np.repeat(
                np.cumsum(gap_sizes) - gap_sizes, gap_sizes
            )
            skipped = (np.repeat(gap_starts, gap_sizes) + offsets + 1) & 0xFFFF
            if sequences.min() >= 0 and sequences.max() <= 0xFFFF:
                # membership via a 64k table instead of unique + isin
                seen_mask = np.zeros(0x10000, dtype=bool)
                seen_mask[sequences] = True
                lost = int(np.count_nonzero(~seen_mask[skipped]))
            else:
                lost = int(
                    np.count_nonzero(~np.isin(skipped, np.unique(sequences)))
                )
        total = received + lost
        return lost / total if total else 0.0

    def _lag_from_bursts(self, times: np.ndarray) -> float:
        """95th-percentile inter-frame gap (ms) from downstream timestamps."""
        if times.size < 10:
            return 0.0
        gaps = np.diff(times)
        # inter-frame gaps (larger than intra-burst spacing) indicate pacing;
        # their 95th percentile approximates worst-case frame delivery lag
        frame_gaps = gaps[gaps > FRAME_GAP_SECONDS]
        if frame_gaps.size == 0:
            return 0.0
        return float(np.percentile(frame_gaps, 95) * 1000.0)

    def _resolution_from_bitrate(self, throughput_mbps: float, frame_rate: float) -> str:
        if frame_rate <= 0 or throughput_mbps <= 0:
            return "unknown"
        bits_per_frame = throughput_mbps * 1e6 / frame_rate
        if bits_per_frame < 1.5e5:
            return "SD"
        if bits_per_frame < 3.5e5:
            return "HD"
        if bits_per_frame < 7e5:
            return "FHD"
        if bits_per_frame < 1.2e6:
            return "QHD"
        return "UHD"


@dataclass
class EffectiveQoECalibrator:
    """Calibrates objective QoE expectations with the classified game context.

    Parameters
    ----------
    base_thresholds:
        The ISP's uncalibrated expected value ranges.
    pattern_demand:
        Relative bandwidth/frame-rate demand assumed for sessions known only
        by their gameplay activity pattern (vs an average high-demand title).
    min_scale:
        Lower bound on the demand scaling so expectations never collapse to
        zero.
    """

    base_thresholds: QoEThresholds = field(default_factory=QoEThresholds)
    pattern_demand: Dict[ActivityPattern, float] = field(
        default_factory=lambda: {
            ActivityPattern.SPECTATE_AND_PLAY: 0.85,
            ActivityPattern.CONTINUOUS_PLAY: 0.75,
        }
    )
    min_scale: float = 0.15
    #: Reference throughput (Mbps) corresponding to a demand scale of 1.0 —
    #: roughly the active-stage bitrate of the most demanding titles at FHD.
    reference_demand_mbps: float = 28.0

    # ------------------------------------------------------------ scaling
    def _title_demand_scale(self, title: Optional[GameTitle]) -> float:
        """How demanding a title is relative to the reference (0..1]."""
        if title is None:
            return 1.0
        clusters = title.bitrate_clusters_mbps
        mid_cluster = clusters[min(1, len(clusters) - 1)]
        typical = (mid_cluster[0] + mid_cluster[1]) / 2.0
        return float(np.clip(typical / self.reference_demand_mbps, self.min_scale, 1.0))

    def _stage_demand_scale(
        self, stage_fractions: Optional[Dict[PlayerStage, float]]
    ) -> Dict[str, float]:
        """Throughput and frame-rate scales implied by the stage mix."""
        if not stage_fractions:
            return {"throughput": 1.0, "frame_rate": 1.0}
        total = sum(
            stage_fractions.get(stage, 0.0) for stage in PlayerStage.gameplay_stages()
        )
        if total <= 0:
            return {"throughput": 1.0, "frame_rate": 1.0}
        throughput_scale = 0.0
        frame_scale = 0.0
        for stage in PlayerStage.gameplay_stages():
            weight = stage_fractions.get(stage, 0.0) / total
            throughput_scale += weight * DOWNSTREAM_STAGE_LEVELS[stage]
            frame_scale += weight * FRAME_RATE_STAGE_LEVELS[stage]
        return {
            "throughput": float(np.clip(throughput_scale, self.min_scale, 1.0)),
            "frame_rate": float(np.clip(frame_scale, self.min_scale, 1.0)),
        }

    def _calibration_scales_batch(
        self,
        title_names: Sequence[Optional[str]],
        patterns: Sequence[Optional[ActivityPattern]],
        stage_fractions: Sequence[Optional[Dict[PlayerStage, float]]],
        fps_settings: Sequence[Optional[int]],
    ) -> tuple:
        """Per-session (frame_scale, throughput_scale) arrays, vectorised.

        The context-demand derivation of :meth:`calibrated_thresholds` for a
        whole batch at once: the demand of each *distinct* title/pattern is
        derived once (the catalog lookup and clip run per unique context, not
        per session), the stage-mix scaling runs on one stacked fraction
        matrix, and the final clips/caps are elementwise array ops.  Every
        arithmetic step applies the same float64 operations in the same
        association order as the scalar path, so the scales are bit-identical
        to per-session :meth:`calibrated_thresholds` calls.
        """
        n = len(title_names)
        # ---- intrinsic demand per distinct context (title beats pattern)
        tokens: List[str] = []
        for name, pattern in zip(title_names, patterns):
            title = CATALOG.get(name) if name and name != UNKNOWN_TITLE else None
            if title is not None:
                tokens.append(f"t:{name}")
            elif pattern is not None:
                tokens.append(f"p:{pattern.value}")
            else:
                tokens.append("-")
        unique_tokens, inverse = np.unique(np.asarray(tokens, dtype=object), return_inverse=True)
        unique_demand = np.empty(unique_tokens.size)
        for index, token in enumerate(unique_tokens.tolist()):
            if token.startswith("t:"):
                unique_demand[index] = self._title_demand_scale(CATALOG[token[2:]])
            elif token.startswith("p:"):
                unique_demand[index] = self.pattern_demand.get(
                    ActivityPattern(token[2:]), 1.0
                )
            else:
                unique_demand[index] = 1.0
        demand = unique_demand[inverse]

        # ---- stage-mix scaling on one stacked fraction matrix
        stages = PlayerStage.gameplay_stages()
        fractions = np.zeros((n, len(stages)))
        for row, mix in enumerate(stage_fractions):
            if mix:
                fractions[row] = [mix.get(stage, 0.0) for stage in stages]
        # accumulate in stage order, matching the scalar loop's association
        totals = np.zeros(n)
        for column in range(len(stages)):
            totals = totals + fractions[:, column]
        scaled_mix = totals > 0
        safe_totals = np.where(scaled_mix, totals, 1.0)
        weights = fractions / safe_totals[:, None]
        throughput_stage = np.zeros(n)
        frame_stage = np.zeros(n)
        for column, stage in enumerate(stages):
            throughput_stage = throughput_stage + weights[:, column] * DOWNSTREAM_STAGE_LEVELS[stage]
            frame_stage = frame_stage + weights[:, column] * FRAME_RATE_STAGE_LEVELS[stage]
        throughput_stage = np.where(
            scaled_mix, np.clip(throughput_stage, self.min_scale, 1.0), 1.0
        )
        frame_stage = np.where(
            scaled_mix, np.clip(frame_stage, self.min_scale, 1.0), 1.0
        )

        throughput_scale = np.maximum(self.min_scale, demand * throughput_stage)
        frame_scale = np.maximum(self.min_scale, demand * frame_stage)
        # None means "no cap"; the mask must come from None-ness, not a
        # numeric sentinel, to match the scalar path for any fps value
        capped = np.array(
            [value is not None and value < 60 for value in fps_settings], dtype=bool
        )
        if capped.any():
            fps = np.array(
                [60.0 if value is None else float(value) for value in fps_settings]
            )
            frame_scale = np.where(
                capped, np.minimum(frame_scale, fps / 60.0), frame_scale
            )
        return frame_scale, throughput_scale

    def calibrated_thresholds_batch(
        self,
        title_names: Sequence[Optional[str]],
        patterns: Sequence[Optional[ActivityPattern]],
        stage_fractions: Sequence[Optional[Dict[PlayerStage, float]]],
        fps_settings: Optional[Sequence[Optional[int]]] = None,
    ) -> List[QoEThresholds]:
        """Batched :meth:`calibrated_thresholds`: one threshold set per session.

        The numeric derivation runs once on stacked arrays
        (:meth:`_calibration_scales_batch`); only the final
        :class:`QoEThresholds` construction remains per session.  Results are
        identical to per-session :meth:`calibrated_thresholds` calls.
        """
        if fps_settings is None:
            fps_settings = [None] * len(title_names)
        frame_scale, throughput_scale = self._calibration_scales_batch(
            title_names, patterns, stage_fractions, fps_settings
        )
        base = self.base_thresholds
        return [
            replace(
                base,
                frame_rate_good=base.frame_rate_good * fs,
                frame_rate_bad=base.frame_rate_bad * fs,
                throughput_good_mbps=base.throughput_good_mbps * ts,
                throughput_bad_mbps=base.throughput_bad_mbps * ts,
            )
            for fs, ts in zip(frame_scale, throughput_scale)
        ]

    def calibrated_thresholds(
        self,
        title_name: Optional[str] = None,
        pattern: Optional[ActivityPattern] = None,
        stage_fractions: Optional[Dict[PlayerStage, float]] = None,
        fps_setting: Optional[int] = None,
    ) -> QoEThresholds:
        """Expected value ranges calibrated for the given context.

        Frame-rate and throughput expectations scale down with the title's
        intrinsic demand (or the pattern's, when the title is unknown) and
        with the session's idle/passive share; latency and loss expectations
        are left unchanged (as in the paper).
        """
        title = CATALOG.get(title_name) if title_name and title_name != UNKNOWN_TITLE else None
        if title is not None:
            demand = self._title_demand_scale(title)
        elif pattern is not None:
            demand = self.pattern_demand.get(pattern, 1.0)
        else:
            demand = 1.0
        stage_scales = self._stage_demand_scale(stage_fractions)

        throughput_scale = max(self.min_scale, demand * stage_scales["throughput"])
        # frame-rate expectations also relax for low-demand contexts: a card
        # game with near-static scenes neither needs 60 fps nor high bitrate
        frame_scale = max(self.min_scale, demand * stage_scales["frame_rate"])
        if fps_setting is not None and fps_setting < 60:
            # a user streaming at 30 fps cannot be expected to exceed it
            frame_scale = min(frame_scale, fps_setting / 60.0)

        base = self.base_thresholds
        return replace(
            base,
            frame_rate_good=base.frame_rate_good * frame_scale,
            frame_rate_bad=base.frame_rate_bad * frame_scale,
            throughput_good_mbps=base.throughput_good_mbps * throughput_scale,
            throughput_bad_mbps=base.throughput_bad_mbps * throughput_scale,
        )

    # ------------------------------------------------------------ labeling
    def objective_level(self, metrics: QoEMetrics) -> QoELevel:
        """Uncalibrated (objective) QoE level."""
        return qoe_level_from_metrics(metrics, self.base_thresholds)

    def objective_levels(self, metrics: Sequence[QoEMetrics]) -> List[QoELevel]:
        """Uncalibrated QoE levels for a batch of sessions (vectorised).

        The shared base expectations broadcast against the stacked metric
        arrays, so no per-session threshold objects are materialised.
        """
        if not metrics:
            return []
        base = self.base_thresholds
        frame_rate, throughput, latency, loss = _metric_arrays(metrics)
        ranks = _rank_levels(
            frame_rate,
            throughput,
            latency,
            loss,
            base.frame_rate_good,
            base.frame_rate_bad,
            base.throughput_good_mbps,
            base.throughput_bad_mbps,
            base.latency_good_ms,
            base.latency_bad_ms,
            base.loss_good,
            base.loss_bad,
        )
        return [_LEVELS_BY_RANK[rank] for rank in ranks]

    def effective_levels(
        self,
        metrics: Sequence[QoEMetrics],
        title_names: Sequence[Optional[str]],
        patterns: Sequence[Optional[ActivityPattern]],
        stage_fractions: Sequence[Optional[Dict[PlayerStage, float]]],
        fps_settings: Optional[Sequence[Optional[int]]] = None,
    ) -> List[QoELevel]:
        """Context-calibrated QoE levels for a batch of sessions.

        Per-session calibrated expectations are derived from the classified
        context in one vectorised pass (:meth:`_calibration_scales_batch` —
        no per-session ``QoEThresholds`` objects are built), then the
        metric-to-level mapping runs once over the stacked arrays.  Levels
        equal per-session :meth:`effective_level` calls exactly.
        ``title_names`` / ``patterns`` / ``stage_fractions`` (and optional
        ``fps_settings``) must align index-wise with ``metrics``.
        """
        if not (len(metrics) == len(title_names) == len(patterns) == len(stage_fractions)):
            raise ValueError("batch calibration inputs must have equal lengths")
        if not metrics:
            return []
        if fps_settings is None:
            fps_settings = [None] * len(metrics)
        frame_scale, throughput_scale = self._calibration_scales_batch(
            title_names, patterns, stage_fractions, fps_settings
        )
        base = self.base_thresholds
        frame_rate, throughput, latency, loss = _metric_arrays(metrics)
        ranks = _rank_levels(
            frame_rate,
            throughput,
            latency,
            loss,
            base.frame_rate_good * frame_scale,
            base.frame_rate_bad * frame_scale,
            base.throughput_good_mbps * throughput_scale,
            base.throughput_bad_mbps * throughput_scale,
            base.latency_good_ms,
            base.latency_bad_ms,
            base.loss_good,
            base.loss_bad,
        )
        return [_LEVELS_BY_RANK[rank] for rank in ranks]

    def effective_level(
        self,
        metrics: QoEMetrics,
        title_name: Optional[str] = None,
        pattern: Optional[ActivityPattern] = None,
        stage_fractions: Optional[Dict[PlayerStage, float]] = None,
        fps_setting: Optional[int] = None,
    ) -> QoELevel:
        """Context-calibrated (effective) QoE level."""
        thresholds = self.calibrated_thresholds(
            title_name=title_name,
            pattern=pattern,
            stage_fractions=stage_fractions,
            fps_setting=fps_setting,
        )
        return qoe_level_from_metrics(metrics, thresholds)
