"""Incremental stage reducers: one bounded-memory fold for the Fig. 6 cascade.

The paper's cascade is inherently incremental — a 5 s launch window, per-slot
stage classification with a carried EMA, confidence-gated pattern inference
over transition prefixes, and windowed QoE measurement.  This module makes
the *code* incremental too: every stage declares the bounded state it folds
packet batches into, plus the finalisation view that yields exactly the
offline report.  Offline ``process()`` / ``process_many()``, the streaming
runtime's per-flow session states and the sharded workers are all drivers
over the same four reducers (DESIGN.md §7):

* :class:`LaunchWindowReducer` — keeps only the packets of the title window
  (``timestamp <= origin + N``); the window stream it assembles produces
  launch features identical to extracting them from the full session,
  because the packet-group labeler never reads past the window;
* :class:`SlotStageReducer` — integer-exact per-slot payload/packet counters
  per direction (one pair of ``bincount`` adds per batch) plus the causal
  :class:`~repro.core.volumetric.OnlineVolumetricTracker` EMA for the
  provisional per-slot stage gate;
* the **transition prefix** state
  (:class:`~repro.core.transition.PrefixTransitionTracker`, carried by the
  runtime's :class:`~repro.runtime.state.SessionState`) — nine cumulative
  counts feeding the online pattern gate;
* :class:`QoEIntervalReducer` — a compact per-interval store of only the
  QoE-relevant downstream columns (timestamps + RTP sequence/timestamp),
  consolidated and time-sorted per sealed interval.  Sealed intervals back
  the provisional per-window ``QoEInterval`` events; their concatenation
  reproduces the downstream views of the offline-sorted stream exactly, so
  the close-time QoE metrics stay bit-identical to offline ``estimate()``.

:class:`SessionReducerCascade` bundles the reducers with the shared session
aggregates (origin, last timestamp, per-direction byte totals, RTP flag).
In the default **bounded** mode the cascade holds no packet history: state
is O(slots) counters + O(launch-window packets) + the three downstream QoE
columns (~24 bytes per downstream packet instead of the full columnar
history).  With ``keep_history=True`` (the runtime's ``"full"`` mode) the
raw batches are additionally retained, which allows an exact refold when a
packet older than the current session origin arrives across batches.

Bit-identical finalisation relies on two properties of the data:

* payload sizes are integral (true for generated traffic and real
  captures), so byte sums are exact under any accumulation order;
* stable time sorting commutes with direction selection and with interval
  bucketing, so the reducer's consolidated downstream columns equal the
  offline stream's per-direction views element for element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.volumetric import OnlineVolumetricTracker
from repro.net.packet import (
    DOWNSTREAM_CODE,
    RTP_NONE,
    PacketColumns,
    PacketStream,
)

__all__ = [
    "LaunchWindowReducer",
    "QoEIntervalReducer",
    "SealedQoEInterval",
    "SessionReducerCascade",
    "SlotStageReducer",
]

_EMPTY_FEATURES = np.zeros((0, 4))
_EMPTY_SLOTS = np.zeros(0, dtype=np.int64)
_EMPTY_FLOAT = np.zeros(0, dtype=float)
_EMPTY_INT = np.zeros(0, dtype=np.int64)


# ---------------------------------------------------------------------------
# launch window (title stage)
# ---------------------------------------------------------------------------
class LaunchWindowReducer:
    """Bounded buffer of the title window's packets.

    Keeps every row with ``timestamp <= origin + window_seconds`` (both
    directions: the window origin is the session's first packet, which may
    be upstream).  The assembled stream yields launch features identical to
    extracting them from the whole session because
    :meth:`PacketGroupLabeler.label_window` only reads ``[origin, origin +
    window)`` of the downstream direction and normalises against the maximum
    payload observed *within* the window.

    Late window packets (arriving in a later batch, still inside the window)
    are absorbed like any others — which is what lets the runtime
    re-classify the title when the window fills retroactively.
    """

    __slots__ = ("window_seconds", "_chunks", "n_rows")

    def __init__(self, window_seconds: float) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        self.window_seconds = window_seconds
        self._chunks: List[PacketColumns] = []
        self.n_rows = 0

    def absorb(self, columns: PacketColumns, origin: float) -> int:
        """Keep the batch's window rows; return how many were kept."""
        timestamps = columns.timestamps
        upper = origin + self.window_seconds
        if timestamps.size < 2 or bool(np.all(timestamps[1:] >= timestamps[:-1])):
            # sorted batch: the window rows are a prefix — zero-copy slice
            if float(timestamps[0]) > upper:
                return 0
            count = int(np.searchsorted(timestamps, upper, side="right"))
            kept = columns if count == len(columns) else columns.take(slice(0, count))
        else:
            mask = timestamps <= upper
            count = int(np.count_nonzero(mask))
            if not count:
                return 0
            kept = (
                columns
                if count == len(columns)
                else columns.take(np.flatnonzero(mask))
            )
        if count:
            self._chunks.append(kept)
            self.n_rows += count
        return count

    def stream(self) -> PacketStream:
        """The buffered window as a time-sorted stream."""
        if not self._chunks:
            return PacketStream()
        return PacketStream.from_columns(PacketColumns.concat(self._chunks))

    def nbytes(self) -> int:
        return sum(chunk.nbytes() for chunk in self._chunks)


# ---------------------------------------------------------------------------
# slot counters + provisional EMA (stage classification)
# ---------------------------------------------------------------------------
class SlotStageReducer:
    """Integer-exact per-slot volumetric counters plus the online EMA state.

    Columns of the counter matrix are (down payload bytes, down packets,
    up payload bytes, up packets) per ``I``-second slot.  The counts are
    grown with one pair of ``bincount`` adds per batch and equal
    :meth:`VolumetricAttributeGenerator.raw_slot_matrix` of the packets seen
    so far exactly; :meth:`raw_matrix` converts them to the offline rates.
    The EMA tracker and slot cursor feed the runtime's *provisional* stage
    gate (causal running-peak attributes, classified per completed slot).
    """

    __slots__ = ("slot_duration", "_raw", "_max_slot", "_cursor", "_tracker")

    def __init__(self, slot_duration: float, alpha: float) -> None:
        if slot_duration <= 0:
            raise ValueError(f"slot_duration must be positive, got {slot_duration}")
        self.slot_duration = slot_duration
        self._raw = np.zeros((64, 4))
        self._max_slot = -1
        self._cursor = 0
        self._tracker = OnlineVolumetricTracker(alpha=alpha)

    def _ensure_capacity(self, slot: int) -> None:
        if slot < self._raw.shape[0]:
            return
        grown = np.zeros((max(slot + 1, self._raw.shape[0] * 2), 4))
        grown[: self._raw.shape[0]] = self._raw
        self._raw = grown

    def reset_counts(self) -> None:
        """Zero the counters (exact refold after an origin shift).

        The EMA tracker and cursor are deliberately left untouched: the
        provisional timeline already emitted cannot be retracted, and the
        authoritative timeline is recomputed from the refolded counters at
        finalisation anyway.
        """
        self._raw = np.zeros((64, 4))
        self._max_slot = -1

    def absorb(
        self,
        timestamps: np.ndarray,
        sizes: np.ndarray,
        down: np.ndarray,
        origin: float,
    ) -> None:
        """Fold one batch's rows into the per-slot counters."""
        indices = np.floor((timestamps - origin) / self.slot_duration).astype(np.int64)
        # a packet older than the session origin (cross-batch reordering)
        # folds into slot 0; bounded mode accepts the approximation, the
        # full-history mode refolds with the corrected origin instead
        np.clip(indices, 0, None, out=indices)
        top = int(indices.max())
        self._ensure_capacity(top)
        self._max_slot = max(self._max_slot, top)
        length = top + 1
        if down.any():
            idx = indices[down]
            self._raw[:length, 0] += np.bincount(
                idx, weights=sizes[down], minlength=length
            )
            self._raw[:length, 1] += np.bincount(idx, minlength=length)
        up = ~down
        if up.any():
            idx = indices[up]
            self._raw[:length, 2] += np.bincount(
                idx, weights=sizes[up], minlength=length
            )
            self._raw[:length, 3] += np.bincount(idx, minlength=length)

    def absorb_directional(
        self,
        down_times: np.ndarray,
        down_sizes: np.ndarray,
        up_times: np.ndarray,
        up_sizes: np.ndarray,
        origin: float,
    ) -> None:
        """Fold pre-split per-direction rows (offline whole-session path).

        Counter-identical to :meth:`absorb` on the interleaved batch: each
        direction's rows keep their relative order, so every ``bincount``
        accumulates the same weights in the same order.
        """
        top = -1
        per_direction = []
        for times, sizes in ((down_times, down_sizes), (up_times, up_sizes)):
            if times.size:
                indices = np.floor((times - origin) / self.slot_duration).astype(
                    np.int64
                )
                np.clip(indices, 0, None, out=indices)
                top = max(top, int(indices.max()))
                per_direction.append((indices, sizes))
            else:
                per_direction.append(None)
        if top < 0:
            return
        self._ensure_capacity(top)
        self._max_slot = max(self._max_slot, top)
        length = top + 1
        for column, entry in ((0, per_direction[0]), (2, per_direction[1])):
            if entry is None:
                continue
            indices, sizes = entry
            self._raw[:length, column] += np.bincount(
                indices, weights=sizes, minlength=length
            )
            self._raw[:length, column + 1] += np.bincount(indices, minlength=length)

    def advance(
        self, clock: float, origin: Optional[float], total_slots: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Complete every slot the feed clock has passed (provisional gate).

        Returns the causal (running-peak, EMA-carried) feature rows and slot
        indices of the newly completed slots; pass ``clock=inf`` at close
        time to flush the final partial slot.
        """
        if origin is None:
            return _EMPTY_FEATURES, _EMPTY_SLOTS
        if np.isfinite(clock):
            complete = min(
                int(np.floor((clock - origin) / self.slot_duration)), total_slots
            )
        else:  # close-time flush: every observed slot completes
            complete = total_slots
        if complete <= self._cursor:
            return _EMPTY_FEATURES, _EMPTY_SLOTS
        self._ensure_capacity(complete - 1)
        converted = self._convert(self._raw[self._cursor : complete])
        features = np.empty_like(converted)
        for row in range(converted.shape[0]):
            features[row] = self._tracker.update(converted[row])
        slots = np.arange(self._cursor, complete, dtype=np.int64)
        self._cursor = complete
        return features, slots

    def _convert(self, raw: np.ndarray) -> np.ndarray:
        """Counters -> offline rate units (same expressions as the generator)."""
        interval = self.slot_duration
        converted = np.empty_like(raw)
        converted[:, 0] = raw[:, 0] * 8 / interval / 1e6  # down Mbps
        converted[:, 1] = raw[:, 1] / interval            # down pkt/s
        converted[:, 2] = raw[:, 2] * 8 / interval / 1e3  # up Kbps
        converted[:, 3] = raw[:, 3] / interval            # up pkt/s
        return converted

    def raw_matrix(self, total_slots: int) -> np.ndarray:
        """The offline ``raw_slot_matrix`` equivalent of the counters.

        ``total_slots`` is the offline slot count (``ceil(duration / I)``,
        at least 1); any counter row past it (a packet exactly on the final
        slot boundary) is truncated, exactly as the offline matrix drops it.
        """
        n = max(1, total_slots)
        self._ensure_capacity(n - 1)
        return self._convert(self._raw[:n])

    def nbytes(self) -> int:
        return self._raw.nbytes


# ---------------------------------------------------------------------------
# per-interval QoE store
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SealedQoEInterval:
    """One completed (or close-flushed) QoE measurement window."""

    index: int
    start_s: float
    end_s: float
    duration_s: float
    down_times: np.ndarray
    rtp_timestamps: np.ndarray
    rtp_sequences: np.ndarray
    payload_bytes: float
    n_packets: int
    partial: bool


class _IntervalStore:
    """Downstream (timestamp, rtp_seq, rtp_ts) columns of one interval."""

    __slots__ = ("chunks", "payload_bytes", "n_packets", "_ts", "_seq", "_rts")

    def __init__(self) -> None:
        self.chunks: List[Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]] = []
        self.payload_bytes = 0.0
        self.n_packets = 0
        self._ts: Optional[np.ndarray] = None
        self._seq: Optional[np.ndarray] = None
        self._rts: Optional[np.ndarray] = None

    def append(
        self,
        timestamps: np.ndarray,
        sequences: Optional[np.ndarray],
        rtp_timestamps: Optional[np.ndarray],
        payload_sum: float,
    ) -> None:
        self.chunks.append((timestamps, sequences, rtp_timestamps))
        self.payload_bytes += payload_sum
        self.n_packets += int(timestamps.size)

    def consolidate(self) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """Merge pending chunks into one stably time-sorted column triple.

        Stable sorting the concatenation of an already-consolidated (sorted)
        prefix with later arrivals equals one stable sort over all arrivals
        in their original order, so late rows landing in a sealed interval
        still finalise exactly.
        """
        if self.chunks:
            parts = self.chunks
            if self._ts is not None:
                parts = [(self._ts, self._seq, self._rts)] + parts
            if len(parts) == 1:
                ts, seq, rts = parts[0]
            else:
                ts = np.concatenate([part[0] for part in parts])

                def optional(slot: int) -> Optional[np.ndarray]:
                    if all(part[slot] is None for part in parts):
                        return None
                    return np.concatenate(
                        [
                            part[slot]
                            if part[slot] is not None
                            else np.full(part[0].size, RTP_NONE, dtype=np.int64)
                            for part in parts
                        ]
                    )

                seq, rts = optional(1), optional(2)
            if ts.size > 1 and not bool(np.all(ts[1:] >= ts[:-1])):
                order = np.argsort(ts, kind="stable")
                ts = ts[order]
                seq = seq[order] if seq is not None else None
                rts = rts[order] if rts is not None else None
            self._ts, self._seq, self._rts = ts, seq, rts
            self.chunks = []
        if self._ts is None:
            return _EMPTY_FLOAT, None, None
        return self._ts, self._seq, self._rts

    def nbytes(self) -> int:
        total = 0
        for arrays in ([(self._ts, self._seq, self._rts)] + self.chunks):
            for column in arrays:
                if column is not None:
                    total += column.nbytes
        return total


class QoEIntervalReducer:
    """Per ``W``-second interval store of the QoE-relevant downstream columns.

    Each interval holds only the three columns the objective QoE estimator
    reads — downstream arrival timestamps, RTP sequence numbers and RTP
    timestamps — consolidated and stably time-sorted when the interval
    seals.  Sealed intervals drive the provisional :class:`QoEInterval`
    events; :meth:`final_arrays` concatenates them (interval order equals
    global time order) into exactly the downstream views offline
    ``ObjectiveQoEEstimator.estimate`` reads from the sorted stream.
    """

    __slots__ = ("interval_seconds", "_stores", "_sealed_upto")

    def __init__(self, interval_seconds: float = 10.0) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        self.interval_seconds = interval_seconds
        self._stores: Dict[int, _IntervalStore] = {}
        self._sealed_upto = 0  # first interval index not yet sealed

    def absorb_arrays(
        self,
        timestamps: np.ndarray,
        sizes: np.ndarray,
        sequences: Optional[np.ndarray],
        rtp_times: Optional[np.ndarray],
        origin: float,
    ) -> None:
        """Bucket pre-selected downstream rows by interval index.

        The common case — time-sorted rows (offline full-session folds and
        time-sliced feed batches) — partitions into contiguous runs with one
        boundary scan, storing zero-copy views; unsorted batches fall back
        to per-interval masks (arrival order within an interval is preserved
        either way, which is what keeps finalisation stable-sort exact).
        """
        if not timestamps.size:
            return
        indices = np.floor((timestamps - origin) / self.interval_seconds).astype(
            np.int64
        )
        np.clip(indices, 0, None, out=indices)
        if bool(np.all(indices[1:] >= indices[:-1])):
            boundaries = np.flatnonzero(indices[1:] != indices[:-1]) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [indices.size]))
            for start, end in zip(starts, ends):
                self._append(
                    int(indices[start]),
                    timestamps[start:end],
                    sequences[start:end] if sequences is not None else None,
                    rtp_times[start:end] if rtp_times is not None else None,
                    float(sizes[start:end].sum()),
                )
        else:
            for interval in np.unique(indices):
                mask = indices == interval
                self._append(
                    int(interval),
                    timestamps[mask],
                    sequences[mask] if sequences is not None else None,
                    rtp_times[mask] if rtp_times is not None else None,
                    float(sizes[mask].sum()),
                )

    def _append(
        self,
        key: int,
        timestamps: np.ndarray,
        sequences: Optional[np.ndarray],
        rtp_times: Optional[np.ndarray],
        payload_sum: float,
    ) -> None:
        store = self._stores.get(key)
        if store is None:
            store = self._stores[key] = _IntervalStore()
        # late rows landing in an already-sealed interval simply queue as
        # pending chunks; consolidate() re-sorts them stably at finalise,
        # so the close-time columns stay exact (the already-emitted
        # provisional event for that window is not retracted)
        store.append(timestamps, sequences, rtp_times, payload_sum)

    # ------------------------------------------------------------ sealing
    def _sealed_view(
        self, index: int, origin: float, end_s: float, partial: bool
    ) -> SealedQoEInterval:
        # index 0 starts at the origin directly: with the infinite-interval
        # sentinel (one window spanning the whole session) 0 * inf is NaN
        start = origin if index == 0 else origin + index * self.interval_seconds
        store = self._stores.get(index)
        if store is None:
            ts, seq, rts = _EMPTY_FLOAT, None, None
            payload, count = 0.0, 0
        else:
            ts, seq, rts = store.consolidate()
            payload, count = store.payload_bytes, store.n_packets
        return SealedQoEInterval(
            index=index,
            start_s=start,
            end_s=end_s,
            # floor at 1 ms: a close-flushed partial window whose last packet
            # sits exactly on the interval boundary has zero span, and rates
            # over a sub-millisecond window would be monitoring noise
            duration_s=max(end_s - start, 1e-3),
            down_times=ts,
            rtp_timestamps=rts[rts != RTP_NONE] if rts is not None else _EMPTY_INT,
            rtp_sequences=seq[seq != RTP_NONE] if seq is not None else _EMPTY_INT,
            payload_bytes=payload,
            n_packets=count,
            partial=partial,
        )

    def advance(self, clock: float, origin: Optional[float]) -> List[SealedQoEInterval]:
        """Seal every interval whose end the feed clock has passed."""
        if origin is None or not np.isfinite(clock):
            return []
        complete = int(np.floor((clock - origin) / self.interval_seconds))
        if complete <= self._sealed_upto:
            return []
        sealed = [
            self._sealed_view(
                index,
                origin,
                end_s=origin + (index + 1) * self.interval_seconds,
                partial=False,
            )
            for index in range(self._sealed_upto, complete)
        ]
        self._sealed_upto = complete
        return sealed

    def flush(self, origin: Optional[float], last_ts: float) -> List[SealedQoEInterval]:
        """Seal the trailing partial interval at close time (if any)."""
        if origin is None:
            return []
        k_last = max(0, int(np.floor((last_ts - origin) / self.interval_seconds)))
        if k_last < self._sealed_upto:
            return []
        sealed = []
        for index in range(self._sealed_upto, k_last + 1):
            partial = index == k_last
            end = last_ts if partial else origin + (index + 1) * self.interval_seconds
            sealed.append(self._sealed_view(index, origin, end_s=end, partial=partial))
        self._sealed_upto = k_last + 1
        return sealed

    # ------------------------------------------------------------ finalise
    def final_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All downstream (times, rtp_timestamps, rtp_sequences), time-sorted.

        Equals the offline stream's ``timestamps(DOWNSTREAM)`` /
        ``rtp_timestamps(DOWNSTREAM)`` / ``rtp_sequences(DOWNSTREAM)`` views
        exactly: each interval is stably sorted, intervals partition time in
        ascending order, and equal timestamps never straddle intervals.
        """
        if not self._stores:
            return _EMPTY_FLOAT, _EMPTY_INT, _EMPTY_INT
        triples = [self._stores[key].consolidate() for key in sorted(self._stores)]
        if len(triples) == 1:
            times, seq, rts = triples[0]
            return (
                times,
                rts[rts != RTP_NONE] if rts is not None else _EMPTY_INT,
                seq[seq != RTP_NONE] if seq is not None else _EMPTY_INT,
            )
        times = np.concatenate([ts for ts, _, _ in triples])
        any_seq = any(seq is not None for _, seq, _ in triples)
        any_rts = any(rts is not None for _, _, rts in triples)
        if any_seq:
            seq = np.concatenate(
                [
                    seq if seq is not None else np.full(ts.size, RTP_NONE, np.int64)
                    for ts, seq, _ in triples
                ]
            )
            seq = seq[seq != RTP_NONE]
        else:
            seq = _EMPTY_INT
        if any_rts:
            rts = np.concatenate(
                [
                    rts if rts is not None else np.full(ts.size, RTP_NONE, np.int64)
                    for ts, _, rts in triples
                ]
            )
            rts = rts[rts != RTP_NONE]
        else:
            rts = _EMPTY_INT
        return times, rts, seq

    def nbytes(self) -> int:
        return sum(store.nbytes() for store in self._stores.values())


# ---------------------------------------------------------------------------
# the cascade: shared aggregates + the reducers, one absorb() entry point
# ---------------------------------------------------------------------------
class SessionReducerCascade:
    """Bounded fold state of one session across every cascade stage.

    Parameters
    ----------
    slot_duration / alpha:
        Stage-classification slot ``I`` and EMA weight (from the fitted
        activity classifier).
    window_seconds:
        Title window ``N`` (from the fitted title classifier).
    qoe_interval_seconds:
        Width of the provisional QoE measurement windows (10 s by default).
    keep_history:
        Retain the raw batches (the runtime's ``"full"`` mode): enables
        :meth:`assembled_stream` and the exact refold when a packet older
        than the session origin arrives in a later batch.  The default
        (bounded) mode holds no packet history.
    """

    __slots__ = (
        "origin",
        "last_ts",
        "n_packets",
        "down_bytes",
        "up_bytes",
        "has_downstream",
        "has_rtp",
        "origin_shifts",
        "launch",
        "slots",
        "qoe",
        "_history",
        "_window_seconds",
        "_alpha",
        "_qoe_interval_seconds",
    )

    def __init__(
        self,
        slot_duration: float,
        alpha: float,
        window_seconds: float,
        qoe_interval_seconds: float = 10.0,
        keep_history: bool = False,
    ) -> None:
        self.origin: Optional[float] = None
        self.last_ts = float("-inf")
        self.n_packets = 0
        self.down_bytes = 0.0
        self.up_bytes = 0.0
        self.has_downstream = False
        self.has_rtp = False
        self.origin_shifts = 0
        self._window_seconds = window_seconds
        self._alpha = alpha
        self._qoe_interval_seconds = qoe_interval_seconds
        self.launch = LaunchWindowReducer(window_seconds)
        self.slots = SlotStageReducer(slot_duration, alpha)
        self.qoe = QoEIntervalReducer(qoe_interval_seconds)
        self._history: Optional[List[PacketColumns]] = [] if keep_history else None

    # ------------------------------------------------------------ ingestion
    def absorb(self, columns: PacketColumns) -> int:
        """Fold one batch into every reducer; return new launch-window rows.

        The return value counts rows that landed inside the title window —
        the runtime uses a non-zero count after the title gate fired as the
        re-classification trigger.
        """
        if not len(columns):
            return 0
        timestamps = columns.timestamps
        batch_min = float(timestamps.min())
        if self.origin is None:
            self.origin = batch_min
        elif batch_min < self.origin and self._history is not None:
            # exact refold: an older packet surfaced, so every slot/interval
            # assignment shifts.  Only possible with retained history.
            self.origin_shifts += 1
            self._history.append(columns)
            self._refold(batch_min)
            mask = timestamps <= self.origin + self._window_seconds
            return int(np.count_nonzero(mask))
        elif batch_min < self.origin:
            # bounded mode: keep the anchored origin; pre-origin rows clip
            # into slot/interval 0 (the provisional counters absorb the
            # approximation, the final QoE columns stay exact)
            self.origin_shifts += 1
        if self._history is not None:
            self._history.append(columns)
        return self._fold(columns)

    def _fold(self, columns: PacketColumns) -> int:
        timestamps = columns.timestamps
        self.last_ts = max(self.last_ts, float(timestamps.max()))
        self.n_packets += len(columns)
        down = columns.directions == DOWNSTREAM_CODE
        sizes = columns.payload_sizes
        # one downstream gather, shared by the byte totals and the QoE store
        down_times = timestamps[down]
        down_sizes = sizes[down]
        if down_times.size:
            self.has_downstream = True
            down_sum = float(down_sizes.sum())
            self.down_bytes += down_sum
            # integral payload sizes make the subtraction exact
            self.up_bytes += float(sizes.sum()) - down_sum
        else:
            self.up_bytes += float(sizes.sum())
        ssrc = columns.rtp_ssrc
        if not self.has_rtp and ssrc is not None and bool(np.any(ssrc != RTP_NONE)):
            self.has_rtp = True
        new_window_rows = self.launch.absorb(columns, self.origin)
        self.slots.absorb(timestamps, sizes, down, self.origin)
        sequences = columns.rtp_sequence
        rtp_times = columns.rtp_timestamp
        self.qoe.absorb_arrays(
            down_times,
            down_sizes,
            sequences[down] if sequences is not None else None,
            rtp_times[down] if rtp_times is not None else None,
            self.origin,
        )
        return new_window_rows

    def absorb_stream(self, stream: PacketStream) -> int:
        """Fold a whole sorted session stream (the offline one-shot path).

        Fold-identical to ``absorb(stream.columns())`` but reads the
        stream's cached per-direction views instead of re-deriving them, so
        repeated offline classification of the same corpus pays the
        direction split once per stream, not once per fold.  Only valid as
        the first fold of the cascade; later folds fall back to
        :meth:`absorb`.
        """
        columns = stream.columns()
        if not len(columns) or self.origin is not None:
            return self.absorb(columns)
        from repro.net.packet import Direction  # local: avoid cycle at import

        timestamps = columns.timestamps
        self.origin = float(timestamps[0])  # sorted stream
        self.last_ts = float(timestamps[-1])
        self.n_packets = len(columns)
        if self._history is not None:
            self._history.append(columns)
        down_times = stream.timestamps(Direction.DOWNSTREAM)
        down_sizes = stream.payload_sizes(Direction.DOWNSTREAM)
        up_times = stream.timestamps(Direction.UPSTREAM)
        up_sizes = stream.payload_sizes(Direction.UPSTREAM)
        if down_times.size:
            self.has_downstream = True
            self.down_bytes += float(down_sizes.sum())
        self.up_bytes += float(up_sizes.sum())
        ssrc = columns.rtp_ssrc
        if ssrc is not None and bool(np.any(ssrc != RTP_NONE)):
            self.has_rtp = True
        new_window_rows = self.launch.absorb(columns, self.origin)
        self.slots.absorb_directional(
            down_times, down_sizes, up_times, up_sizes, self.origin
        )
        sequences = columns.rtp_sequence
        rtp_times = columns.rtp_timestamp
        if sequences is not None or rtp_times is not None:
            down_rows = stream.direction_indices(Direction.DOWNSTREAM)
        self.qoe.absorb_arrays(
            down_times,
            down_sizes,
            sequences[down_rows] if sequences is not None else None,
            rtp_times[down_rows] if rtp_times is not None else None,
            self.origin,
        )
        return new_window_rows

    def _refold(self, new_origin: float) -> None:
        """Re-fold the retained history against a corrected (earlier) origin."""
        history = self._history or []
        self.origin = new_origin
        self.last_ts = float("-inf")
        self.n_packets = 0
        self.down_bytes = 0.0
        self.up_bytes = 0.0
        self.has_downstream = False
        self.has_rtp = False
        self.launch = LaunchWindowReducer(self._window_seconds)
        self.slots.reset_counts()
        # like the slot cursor, the seal watermark survives the refold:
        # already-emitted provisional QoEInterval events cannot be
        # retracted, so the rebuilt store must not re-seal (re-emit) them
        sealed_upto = self.qoe._sealed_upto
        self.qoe = QoEIntervalReducer(self._qoe_interval_seconds)
        self.qoe._sealed_upto = sealed_upto
        for batch in history:
            self._fold(batch)

    # ------------------------------------------------------------ aggregates
    @property
    def duration(self) -> float:
        """Seconds between the first and last packet (the offline value)."""
        if self.origin is None:
            return 0.0
        return max(0.0, self.last_ts - self.origin)

    def total_slots(self) -> int:
        """Slot count of the session so far (the offline ``n_slots``)."""
        if self.origin is None:
            return 0
        return max(
            1,
            int(np.ceil((self.last_ts - self.origin) / self.slots.slot_duration)),
        )

    # ------------------------------------------------------------ provisional
    def advance_slots(self, clock: float) -> Tuple[np.ndarray, np.ndarray]:
        """Provisional stage gate: feature rows of newly completed slots."""
        return self.slots.advance(clock, self.origin, self.total_slots())

    def advance_qoe(self, clock: float) -> List[SealedQoEInterval]:
        """Provisional QoE gate: seal intervals the clock has passed."""
        return self.qoe.advance(clock, self.origin)

    def flush_qoe(self) -> List[SealedQoEInterval]:
        """Seal the trailing partial interval at close time."""
        if self.origin is None:
            return []
        return self.qoe.flush(self.origin, self.last_ts)

    # ------------------------------------------------------------ finalise
    def launch_stream(self) -> PacketStream:
        """The title window's packets as a time-sorted stream."""
        return self.launch.stream()

    def final_raw_matrix(self) -> np.ndarray:
        """The offline raw slot matrix of everything absorbed so far."""
        if self.origin is None:
            return np.zeros((1, 4))
        return self.slots.raw_matrix(self.total_slots())

    def qoe_arrays(self) -> dict:
        """Keyword arguments for ``ObjectiveQoEEstimator.estimate_arrays``."""
        down_times, rtp_timestamps, rtp_sequences = self.qoe.final_columns()
        return {
            "duration_s": self.duration,
            "down_times": down_times,
            "down_payload_bytes": self.down_bytes,
            "rtp_timestamps": rtp_timestamps,
            "rtp_sequences": rtp_sequences,
        }

    def flow_summary(self, server_port: int) -> dict:
        """The flow-metadata fields the platform signatures read.

        Matches :meth:`repro.net.flow.Flow.summary` bit for bit: byte totals
        are integral, so the mean-throughput and byte-ratio arithmetic below
        reproduces the stream-backed computation exactly.
        """
        duration = self.duration
        down = int(self.down_bytes)
        total = down + int(self.up_bytes)
        return {
            "duration_s": duration,
            "downstream_mbps": (
                down * 8 / duration / 1e6 if duration > 0 else 0.0
            ),
            "downstream_fraction": down / total if total else 0.0,
            "is_rtp": self.has_rtp,
            "server_port": server_port,
        }

    # ------------------------------------------------------------ history
    @property
    def keeps_history(self) -> bool:
        return self._history is not None

    @property
    def history(self) -> List[PacketColumns]:
        if self._history is None:
            raise RuntimeError(
                "packet history is not retained in bounded mode; construct the "
                "cascade with keep_history=True (runtime mode='full')"
            )
        return self._history

    def assembled_stream(self) -> PacketStream:
        """The full packet history as one time-sorted stream (full mode)."""
        return PacketStream.from_columns(PacketColumns.concat(self.history))

    # ------------------------------------------------------------ accounting
    def state_nbytes(self) -> int:
        """Approximate bytes of live per-session state (arrays only).

        Bounded mode counts the slot counters, the launch-window buffer and
        the per-interval QoE columns; full-history mode additionally counts
        every retained batch's columns.
        """
        total = self.launch.nbytes() + self.slots.nbytes() + self.qoe.nbytes()
        if self._history is not None:
            total += sum(batch.nbytes() for batch in self._history)
        return total
