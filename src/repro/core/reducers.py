"""Incremental stage reducers: one bounded-memory fold for the Fig. 6 cascade.

The paper's cascade is inherently incremental — a 5 s launch window, per-slot
stage classification with a carried EMA, confidence-gated pattern inference
over transition prefixes, and windowed QoE measurement.  This module makes
the *code* incremental too: every stage declares the bounded state it folds
packet batches into, plus the finalisation view that yields exactly the
offline report.  Offline ``process()`` / ``process_many()``, the streaming
runtime's per-flow session states and the sharded workers are all drivers
over the same four reducers (DESIGN.md §7):

* :class:`LaunchWindowReducer` — keeps only the packets of the title window
  (``timestamp <= origin + N``); the window stream it assembles produces
  launch features identical to extracting them from the full session,
  because the packet-group labeler never reads past the window;
* :class:`SlotStageReducer` — integer-exact per-slot payload/packet counters
  per direction (one pair of ``bincount`` adds per batch) plus the causal
  :class:`~repro.core.volumetric.OnlineVolumetricTracker` EMA for the
  provisional per-slot stage gate;
* the **transition prefix** state
  (:class:`~repro.core.transition.PrefixTransitionTracker`, carried by the
  runtime's :class:`~repro.runtime.state.SessionState`) — nine cumulative
  counts feeding the online pattern gate;
* :class:`QoEIntervalReducer` — a compact per-interval store of only the
  QoE-relevant downstream columns (timestamps + RTP sequence/timestamp),
  consolidated and time-sorted per sealed interval.  Sealed intervals back
  the provisional per-window ``QoEInterval`` events; their concatenation
  reproduces the downstream views of the offline-sorted stream exactly, so
  the close-time QoE metrics stay bit-identical to offline ``estimate()``;
* :class:`ApproxQoEIntervalReducer` — the **approximate** QoE tier
  (``qoe_mode="approx"``): no downstream columns at all.  Packets fold into
  fixed-size aggregates — streaming count/sum/max of inter-frame gaps plus
  a deterministic reservoir sample for the p95 lag estimate, strict record
  highs of the RTP timestamp for the frame count (the last-seen RTP
  timestamp carried across windows doubles as freeze detection), and
  unwrapped sequence-range + counting-set arithmetic for loss — so
  per-session state is O(intervals) with a hard constant per interval,
  independent of the packet rate.  Close metrics come from
  :meth:`ObjectiveQoEEstimator.estimate_approx` on session-level aggregates
  only, which is what makes offline and streaming approx reports identical
  across batch sizes and within-batch shuffles (the fold sorts each batch;
  feeds are time-ordered across batches).

:class:`SessionReducerCascade` bundles the reducers with the shared session
aggregates (origin, last timestamp, per-direction byte totals, RTP flag).
In the default **bounded** mode the cascade holds no packet history: state
is O(slots) counters + O(launch-window packets) + the three downstream QoE
columns (~24 bytes per downstream packet instead of the full columnar
history).  With ``keep_history=True`` (the runtime's ``"full"`` mode) the
raw batches are additionally retained, which allows an exact refold when a
packet older than the current session origin arrives across batches.

Bit-identical finalisation relies on two properties of the data:

* payload sizes are integral (true for generated traffic and real
  captures), so byte sums are exact under any accumulation order;
* stable time sorting commutes with direction selection and with interval
  bucketing, so the reducer's consolidated downstream columns equal the
  offline stream's per-direction views element for element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.qoe import BURST_GAP_SECONDS, FRAME_GAP_SECONDS
from repro.core.volumetric import OnlineVolumetricTracker
from repro.net.packet import (
    DOWNSTREAM_CODE,
    RTP_NONE,
    PacketColumns,
    PacketStream,
)

__all__ = [
    "ApproxQoEIntervalReducer",
    "LaunchWindowReducer",
    "QOE_MODES",
    "QoEIntervalReducer",
    "SealedApproxQoEInterval",
    "SealedQoEInterval",
    "SessionReducerCascade",
    "SlotStageReducer",
]

#: Valid values of ``SessionReducerCascade(qoe_mode=...)``.
QOE_MODES = ("exact", "approx")

_EMPTY_FEATURES = np.zeros((0, 4))
_EMPTY_SLOTS = np.zeros(0, dtype=np.int64)
_EMPTY_FLOAT = np.zeros(0, dtype=float)
_EMPTY_INT = np.zeros(0, dtype=np.int64)


# ---------------------------------------------------------------------------
# launch window (title stage)
# ---------------------------------------------------------------------------
class LaunchWindowReducer:
    """Bounded buffer of the title window's packets.

    Keeps every row with ``timestamp <= origin + window_seconds`` (both
    directions: the window origin is the session's first packet, which may
    be upstream).  The assembled stream yields launch features identical to
    extracting them from the whole session because
    :meth:`PacketGroupLabeler.label_window` only reads ``[origin, origin +
    window)`` of the downstream direction and normalises against the maximum
    payload observed *within* the window.

    Late window packets (arriving in a later batch, still inside the window)
    are absorbed like any others — which is what lets the runtime
    re-classify the title when the window fills retroactively.
    """

    __slots__ = ("window_seconds", "_chunks", "n_rows")

    def __init__(self, window_seconds: float) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        self.window_seconds = window_seconds
        self._chunks: List[PacketColumns] = []
        self.n_rows = 0

    def absorb(self, columns: PacketColumns, origin: float) -> int:
        """Keep the batch's window rows; return how many were kept."""
        timestamps = columns.timestamps
        upper = origin + self.window_seconds
        if timestamps.size < 2 or bool(np.all(timestamps[1:] >= timestamps[:-1])):
            # sorted batch: the window rows are a prefix — zero-copy slice
            if float(timestamps[0]) > upper:
                return 0
            count = int(np.searchsorted(timestamps, upper, side="right"))
            kept = columns if count == len(columns) else columns.take(slice(0, count))
        else:
            mask = timestamps <= upper
            count = int(np.count_nonzero(mask))
            if not count:
                return 0
            kept = (
                columns
                if count == len(columns)
                else columns.take(np.flatnonzero(mask))
            )
        if count:
            self._chunks.append(kept)
            self.n_rows += count
        return count

    def stream(self) -> PacketStream:
        """The buffered window as a time-sorted stream."""
        if not self._chunks:
            return PacketStream()
        return PacketStream.from_columns(PacketColumns.concat(self._chunks))

    def nbytes(self) -> int:
        return sum(chunk.nbytes() for chunk in self._chunks)

    def snapshot(self) -> dict:
        # absorbed chunks are append-only and their arrays never mutate in
        # place, so a shallow list copy captures the buffer exactly
        return {
            "window_seconds": self.window_seconds,
            "chunks": list(self._chunks),
            "n_rows": self.n_rows,
        }

    def restore(self, snapshot: dict) -> None:
        self.window_seconds = snapshot["window_seconds"]
        self._chunks = list(snapshot["chunks"])
        self.n_rows = snapshot["n_rows"]


# ---------------------------------------------------------------------------
# slot counters + provisional EMA (stage classification)
# ---------------------------------------------------------------------------
class SlotStageReducer:
    """Integer-exact per-slot volumetric counters plus the online EMA state.

    Columns of the counter matrix are (down payload bytes, down packets,
    up payload bytes, up packets) per ``I``-second slot.  The counts are
    grown with one pair of ``bincount`` adds per batch and equal
    :meth:`VolumetricAttributeGenerator.raw_slot_matrix` of the packets seen
    so far exactly; :meth:`raw_matrix` converts them to the offline rates.
    The EMA tracker and slot cursor feed the runtime's *provisional* stage
    gate (causal running-peak attributes, classified per completed slot).
    """

    __slots__ = ("slot_duration", "_raw", "_max_slot", "_cursor", "_tracker")

    def __init__(self, slot_duration: float, alpha: float) -> None:
        if slot_duration <= 0:
            raise ValueError(f"slot_duration must be positive, got {slot_duration}")
        self.slot_duration = slot_duration
        self._raw = np.zeros((64, 4))
        self._max_slot = -1
        self._cursor = 0
        self._tracker = OnlineVolumetricTracker(alpha=alpha)

    def _ensure_capacity(self, slot: int) -> None:
        if slot < self._raw.shape[0]:
            return
        grown = np.zeros((max(slot + 1, self._raw.shape[0] * 2), 4))
        grown[: self._raw.shape[0]] = self._raw
        self._raw = grown

    def reset_counts(self) -> None:
        """Zero the counters (exact refold after an origin shift).

        The EMA tracker and cursor are deliberately left untouched: the
        provisional timeline already emitted cannot be retracted, and the
        authoritative timeline is recomputed from the refolded counters at
        finalisation anyway.
        """
        self._raw = np.zeros((64, 4))
        self._max_slot = -1

    def absorb(
        self,
        timestamps: np.ndarray,
        sizes: np.ndarray,
        down: np.ndarray,
        origin: float,
    ) -> None:
        """Fold one batch's rows into the per-slot counters."""
        indices = np.floor((timestamps - origin) / self.slot_duration).astype(np.int64)
        # a packet older than the session origin (cross-batch reordering)
        # folds into slot 0; bounded mode accepts the approximation, the
        # full-history mode refolds with the corrected origin instead
        np.clip(indices, 0, None, out=indices)
        top = int(indices.max())
        self._ensure_capacity(top)
        self._max_slot = max(self._max_slot, top)
        length = top + 1
        if down.any():
            idx = indices[down]
            self._raw[:length, 0] += np.bincount(
                idx, weights=sizes[down], minlength=length
            )
            self._raw[:length, 1] += np.bincount(idx, minlength=length)
        up = ~down
        if up.any():
            idx = indices[up]
            self._raw[:length, 2] += np.bincount(
                idx, weights=sizes[up], minlength=length
            )
            self._raw[:length, 3] += np.bincount(idx, minlength=length)

    def absorb_directional(
        self,
        down_times: np.ndarray,
        down_sizes: np.ndarray,
        up_times: np.ndarray,
        up_sizes: np.ndarray,
        origin: float,
    ) -> None:
        """Fold pre-split per-direction rows (offline whole-session path).

        Counter-identical to :meth:`absorb` on the interleaved batch: each
        direction's rows keep their relative order, so every ``bincount``
        accumulates the same weights in the same order.
        """
        top = -1
        per_direction = []
        for times, sizes in ((down_times, down_sizes), (up_times, up_sizes)):
            if times.size:
                indices = np.floor((times - origin) / self.slot_duration).astype(
                    np.int64
                )
                np.clip(indices, 0, None, out=indices)
                top = max(top, int(indices.max()))
                per_direction.append((indices, sizes))
            else:
                per_direction.append(None)
        if top < 0:
            return
        self._ensure_capacity(top)
        self._max_slot = max(self._max_slot, top)
        length = top + 1
        for column, entry in ((0, per_direction[0]), (2, per_direction[1])):
            if entry is None:
                continue
            indices, sizes = entry
            self._raw[:length, column] += np.bincount(
                indices, weights=sizes, minlength=length
            )
            self._raw[:length, column + 1] += np.bincount(indices, minlength=length)

    def advance(
        self, clock: float, origin: Optional[float], total_slots: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Complete every slot the feed clock has passed (provisional gate).

        Returns the causal (running-peak, EMA-carried) feature rows and slot
        indices of the newly completed slots; pass ``clock=inf`` at close
        time to flush the final partial slot.
        """
        if origin is None:
            return _EMPTY_FEATURES, _EMPTY_SLOTS
        if np.isfinite(clock):
            complete = min(
                int(np.floor((clock - origin) / self.slot_duration)), total_slots
            )
        else:  # close-time flush: every observed slot completes
            complete = total_slots
        if complete <= self._cursor:
            return _EMPTY_FEATURES, _EMPTY_SLOTS
        self._ensure_capacity(complete - 1)
        converted = self._convert(self._raw[self._cursor : complete])
        features = np.empty_like(converted)
        for row in range(converted.shape[0]):
            features[row] = self._tracker.update(converted[row])
        slots = np.arange(self._cursor, complete, dtype=np.int64)
        self._cursor = complete
        return features, slots

    def _convert(self, raw: np.ndarray) -> np.ndarray:
        """Counters -> offline rate units (same expressions as the generator)."""
        interval = self.slot_duration
        converted = np.empty_like(raw)
        converted[:, 0] = raw[:, 0] * 8 / interval / 1e6  # down Mbps
        converted[:, 1] = raw[:, 1] / interval            # down pkt/s
        converted[:, 2] = raw[:, 2] * 8 / interval / 1e3  # up Kbps
        converted[:, 3] = raw[:, 3] / interval            # up pkt/s
        return converted

    def raw_matrix(self, total_slots: int) -> np.ndarray:
        """The offline ``raw_slot_matrix`` equivalent of the counters.

        ``total_slots`` is the offline slot count (``ceil(duration / I)``,
        at least 1); any counter row past it (a packet exactly on the final
        slot boundary) is truncated, exactly as the offline matrix drops it.
        """
        n = max(1, total_slots)
        self._ensure_capacity(n - 1)
        return self._convert(self._raw[:n])

    def nbytes(self) -> int:
        return self._raw.nbytes

    def snapshot(self) -> dict:
        # the counter matrix accumulates in place — copy at snapshot time
        return {
            "slot_duration": self.slot_duration,
            "raw": self._raw.copy(),
            "max_slot": self._max_slot,
            "cursor": self._cursor,
            "tracker": self._tracker.snapshot(),
        }

    def restore(self, snapshot: dict) -> None:
        self.slot_duration = snapshot["slot_duration"]
        self._raw = snapshot["raw"].copy()
        self._max_slot = snapshot["max_slot"]
        self._cursor = snapshot["cursor"]
        self._tracker.restore(snapshot["tracker"])


# ---------------------------------------------------------------------------
# per-interval QoE stores (exact and approximate tiers)
# ---------------------------------------------------------------------------
class _IntervalSealer:
    """Seal-watermark logic shared by the exact and approx QoE reducers.

    Subclasses provide ``interval_seconds``, ``_sealed_upto`` and
    ``_sealed_view(index, origin, end_s, partial)``; the watermark ensures
    every interval seals exactly once (late rows landing in an
    already-sealed interval still fold, but the provisional event for that
    window is never re-emitted).
    """

    __slots__ = ()

    def advance(self, clock: float, origin: Optional[float]) -> list:
        """Seal every interval whose end the feed clock has passed."""
        if origin is None or not np.isfinite(clock):
            return []
        complete = int(np.floor((clock - origin) / self.interval_seconds))
        if complete <= self._sealed_upto:
            return []
        sealed = [
            self._sealed_view(
                index,
                origin,
                end_s=origin + (index + 1) * self.interval_seconds,
                partial=False,
            )
            for index in range(self._sealed_upto, complete)
        ]
        self._sealed_upto = complete
        return sealed

    def flush(self, origin: Optional[float], last_ts: float) -> list:
        """Seal the trailing partial interval at close time (if any)."""
        if origin is None:
            return []
        k_last = max(0, int(np.floor((last_ts - origin) / self.interval_seconds)))
        if k_last < self._sealed_upto:
            return []
        sealed = []
        for index in range(self._sealed_upto, k_last + 1):
            partial = index == k_last
            end = last_ts if partial else origin + (index + 1) * self.interval_seconds
            sealed.append(self._sealed_view(index, origin, end_s=end, partial=partial))
        self._sealed_upto = k_last + 1
        return sealed


@dataclass(frozen=True)
class SealedQoEInterval:
    """One completed (or close-flushed) QoE measurement window."""

    index: int
    start_s: float
    end_s: float
    duration_s: float
    down_times: np.ndarray
    rtp_timestamps: np.ndarray
    rtp_sequences: np.ndarray
    payload_bytes: float
    n_packets: int
    partial: bool


class _IntervalStore:
    """Downstream (timestamp, rtp_seq, rtp_ts) columns of one interval."""

    __slots__ = ("chunks", "payload_bytes", "n_packets", "_ts", "_seq", "_rts")

    def __init__(self) -> None:
        self.chunks: List[Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]] = []
        self.payload_bytes = 0.0
        self.n_packets = 0
        self._ts: Optional[np.ndarray] = None
        self._seq: Optional[np.ndarray] = None
        self._rts: Optional[np.ndarray] = None

    def append(
        self,
        timestamps: np.ndarray,
        sequences: Optional[np.ndarray],
        rtp_timestamps: Optional[np.ndarray],
        payload_sum: float,
    ) -> None:
        self.chunks.append((timestamps, sequences, rtp_timestamps))
        self.payload_bytes += payload_sum
        self.n_packets += int(timestamps.size)

    def consolidate(self) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """Merge pending chunks into one stably time-sorted column triple.

        Stable sorting the concatenation of an already-consolidated (sorted)
        prefix with later arrivals equals one stable sort over all arrivals
        in their original order, so late rows landing in a sealed interval
        still finalise exactly.
        """
        if self.chunks:
            parts = self.chunks
            if self._ts is not None:
                parts = [(self._ts, self._seq, self._rts)] + parts
            if len(parts) == 1:
                ts, seq, rts = parts[0]
            else:
                ts = np.concatenate([part[0] for part in parts])

                def optional(slot: int) -> Optional[np.ndarray]:
                    if all(part[slot] is None for part in parts):
                        return None
                    return np.concatenate(
                        [
                            part[slot]
                            if part[slot] is not None
                            else np.full(part[0].size, RTP_NONE, dtype=np.int64)
                            for part in parts
                        ]
                    )

                seq, rts = optional(1), optional(2)
            if ts.size > 1 and not bool(np.all(ts[1:] >= ts[:-1])):
                order = np.argsort(ts, kind="stable")
                ts = ts[order]
                seq = seq[order] if seq is not None else None
                rts = rts[order] if rts is not None else None
            self._ts, self._seq, self._rts = ts, seq, rts
            self.chunks = []
        if self._ts is None:
            return _EMPTY_FLOAT, None, None
        return self._ts, self._seq, self._rts

    def nbytes(self) -> int:
        total = 0
        for arrays in ([(self._ts, self._seq, self._rts)] + self.chunks):
            for column in arrays:
                if column is not None:
                    total += column.nbytes
        return total

    def snapshot(self) -> dict:
        # chunk arrays and consolidated columns are replaced, never mutated
        # in place, so shallow references capture the store exactly
        return {
            "chunks": list(self.chunks),
            "payload_bytes": self.payload_bytes,
            "n_packets": self.n_packets,
            "columns": (self._ts, self._seq, self._rts),
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "_IntervalStore":
        store = cls()
        store.chunks = list(snapshot["chunks"])
        store.payload_bytes = snapshot["payload_bytes"]
        store.n_packets = snapshot["n_packets"]
        store._ts, store._seq, store._rts = snapshot["columns"]
        return store


class QoEIntervalReducer(_IntervalSealer):
    """Per ``W``-second interval store of the QoE-relevant downstream columns.

    Each interval holds only the three columns the objective QoE estimator
    reads — downstream arrival timestamps, RTP sequence numbers and RTP
    timestamps — consolidated and stably time-sorted when the interval
    seals.  Sealed intervals drive the provisional :class:`QoEInterval`
    events; :meth:`final_arrays` concatenates them (interval order equals
    global time order) into exactly the downstream views offline
    ``ObjectiveQoEEstimator.estimate`` reads from the sorted stream.
    """

    __slots__ = ("interval_seconds", "_stores", "_sealed_upto")

    def __init__(self, interval_seconds: float = 10.0) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        self.interval_seconds = interval_seconds
        self._stores: Dict[int, _IntervalStore] = {}
        self._sealed_upto = 0  # first interval index not yet sealed

    def absorb_arrays(
        self,
        timestamps: np.ndarray,
        sizes: np.ndarray,
        sequences: Optional[np.ndarray],
        rtp_times: Optional[np.ndarray],
        origin: float,
    ) -> None:
        """Bucket pre-selected downstream rows by interval index.

        The common case — time-sorted rows (offline full-session folds and
        time-sliced feed batches) — partitions into contiguous runs with one
        boundary scan, storing zero-copy views; unsorted batches fall back
        to per-interval masks (arrival order within an interval is preserved
        either way, which is what keeps finalisation stable-sort exact).
        """
        if not timestamps.size:
            return
        indices = np.floor((timestamps - origin) / self.interval_seconds).astype(
            np.int64
        )
        np.clip(indices, 0, None, out=indices)
        if bool(np.all(indices[1:] >= indices[:-1])):
            boundaries = np.flatnonzero(indices[1:] != indices[:-1]) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [indices.size]))
            for start, end in zip(starts, ends):
                self._append(
                    int(indices[start]),
                    timestamps[start:end],
                    sequences[start:end] if sequences is not None else None,
                    rtp_times[start:end] if rtp_times is not None else None,
                    float(sizes[start:end].sum()),
                )
        else:
            for interval in np.unique(indices):
                mask = indices == interval
                self._append(
                    int(interval),
                    timestamps[mask],
                    sequences[mask] if sequences is not None else None,
                    rtp_times[mask] if rtp_times is not None else None,
                    float(sizes[mask].sum()),
                )

    def _append(
        self,
        key: int,
        timestamps: np.ndarray,
        sequences: Optional[np.ndarray],
        rtp_times: Optional[np.ndarray],
        payload_sum: float,
    ) -> None:
        store = self._stores.get(key)
        if store is None:
            store = self._stores[key] = _IntervalStore()
        # late rows landing in an already-sealed interval simply queue as
        # pending chunks; consolidate() re-sorts them stably at finalise,
        # so the close-time columns stay exact (the already-emitted
        # provisional event for that window is not retracted)
        store.append(timestamps, sequences, rtp_times, payload_sum)

    # ------------------------------------------------------------ sealing
    def _sealed_view(
        self, index: int, origin: float, end_s: float, partial: bool
    ) -> SealedQoEInterval:
        # index 0 starts at the origin directly: with the infinite-interval
        # sentinel (one window spanning the whole session) 0 * inf is NaN
        start = origin if index == 0 else origin + index * self.interval_seconds
        store = self._stores.get(index)
        if store is None:
            ts, seq, rts = _EMPTY_FLOAT, None, None
            payload, count = 0.0, 0
        else:
            ts, seq, rts = store.consolidate()
            payload, count = store.payload_bytes, store.n_packets
        return SealedQoEInterval(
            index=index,
            start_s=start,
            end_s=end_s,
            # floor at 1 ms: a close-flushed partial window whose last packet
            # sits exactly on the interval boundary has zero span, and rates
            # over a sub-millisecond window would be monitoring noise
            duration_s=max(end_s - start, 1e-3),
            down_times=ts,
            rtp_timestamps=rts[rts != RTP_NONE] if rts is not None else _EMPTY_INT,
            rtp_sequences=seq[seq != RTP_NONE] if seq is not None else _EMPTY_INT,
            payload_bytes=payload,
            n_packets=count,
            partial=partial,
        )

    # ------------------------------------------------------------ finalise
    def final_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All downstream (times, rtp_timestamps, rtp_sequences), time-sorted.

        Equals the offline stream's ``timestamps(DOWNSTREAM)`` /
        ``rtp_timestamps(DOWNSTREAM)`` / ``rtp_sequences(DOWNSTREAM)`` views
        exactly: each interval is stably sorted, intervals partition time in
        ascending order, and equal timestamps never straddle intervals.
        """
        if not self._stores:
            return _EMPTY_FLOAT, _EMPTY_INT, _EMPTY_INT
        triples = [self._stores[key].consolidate() for key in sorted(self._stores)]
        if len(triples) == 1:
            times, seq, rts = triples[0]
            return (
                times,
                rts[rts != RTP_NONE] if rts is not None else _EMPTY_INT,
                seq[seq != RTP_NONE] if seq is not None else _EMPTY_INT,
            )
        times = np.concatenate([ts for ts, _, _ in triples])
        any_seq = any(seq is not None for _, seq, _ in triples)
        any_rts = any(rts is not None for _, _, rts in triples)
        if any_seq:
            seq = np.concatenate(
                [
                    seq if seq is not None else np.full(ts.size, RTP_NONE, np.int64)
                    for ts, seq, _ in triples
                ]
            )
            seq = seq[seq != RTP_NONE]
        else:
            seq = _EMPTY_INT
        if any_rts:
            rts = np.concatenate(
                [
                    rts if rts is not None else np.full(ts.size, RTP_NONE, np.int64)
                    for ts, _, rts in triples
                ]
            )
            rts = rts[rts != RTP_NONE]
        else:
            rts = _EMPTY_INT
        return times, rts, seq

    def nbytes(self) -> int:
        return sum(store.nbytes() for store in self._stores.values())

    def snapshot(self) -> dict:
        return {
            "interval_seconds": self.interval_seconds,
            "stores": {
                key: store.snapshot() for key, store in self._stores.items()
            },
            "sealed_upto": self._sealed_upto,
        }

    def restore(self, snapshot: dict) -> None:
        self.interval_seconds = snapshot["interval_seconds"]
        self._stores = {
            key: _IntervalStore.from_snapshot(state)
            for key, state in snapshot["stores"].items()
        }
        self._sealed_upto = snapshot["sealed_upto"]


# ---------------------------------------------------------------------------
# approximate QoE tier: O(intervals) state, no packet columns
# ---------------------------------------------------------------------------
class _ReservoirSampler:
    """Deterministic algorithm-R reservoir over a stream of values.

    Every value past the fill phase consumes exactly one uniform draw from a
    fixed-seed generator, so the retained sample depends only on the value
    *sequence*, never on how the stream was chunked into batches — which is
    what keeps approx close reports pinned across feed batch sizes.
    """

    __slots__ = ("samples", "seen", "_rng")

    def __init__(self, capacity: int, seed: int) -> None:
        self.samples = np.empty(capacity, dtype=float)
        self.seen = 0
        self._rng = np.random.default_rng(seed)

    def add(self, values: np.ndarray) -> None:
        if not values.size:
            return
        capacity = self.samples.size
        fill = min(max(capacity - self.seen, 0), int(values.size))
        if fill:
            self.samples[self.seen : self.seen + fill] = values[:fill]
        rest = values[fill:]
        if rest.size:
            # 1-based stream positions of the overflow values
            positions = np.arange(
                self.seen + fill + 1, self.seen + values.size + 1, dtype=float
            )
            draws = np.floor(self._rng.random(rest.size) * positions).astype(np.int64)
            hit = draws < capacity
            if hit.any():
                # sequential semantics: for duplicate slots the LAST value
                # wins; fancy assignment does not guarantee that, so dedupe
                slots, keep = np.unique(draws[hit][::-1], return_index=True)
                self.samples[slots] = rest[hit][::-1][keep]
        self.seen += int(values.size)

    def sample(self) -> np.ndarray:
        """The retained values (all of them while the stream fits)."""
        return self.samples[: min(self.seen, self.samples.size)]

    def nbytes(self) -> int:
        return self.samples.nbytes

    def snapshot(self) -> dict:
        # bit_generator.state round-trips the generator exactly, so the
        # restored sampler keeps the retained set pinned across batches
        return {
            "samples": self.samples.copy(),
            "seen": self.seen,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, snapshot: dict) -> None:
        self.samples = snapshot["samples"].copy()
        self.seen = snapshot["seen"]
        self._rng = np.random.default_rng(0)
        self._rng.bit_generator.state = snapshot["rng_state"]


@dataclass(frozen=True)
class SealedApproxQoEInterval:
    """One completed (or close-flushed) approximate measurement window.

    Carries fixed-size aggregates instead of packet columns; the engine
    turns them into provisional metrics via
    :meth:`ObjectiveQoEEstimator.estimate_approx`.  ``frozen`` flags a
    window that carried packets (and an RTP stream) without the RTP
    timestamp ever advancing past the previous window's last-seen value — a
    frozen image with the transport still flowing.

    ``candidate_gap_packets`` is the per-window candidate-gap ledger: the
    total size of the arrival-order sequence gaps (``0 < gap < 200``)
    *revealed* inside this window — each gap is attributed to the window of
    the arrival that exposed it, so a loss burst is localised to its sealing
    window instead of surfacing only in the session-wide lost count.  Unlike
    ``seq_lost`` (a delta of the session-wide counting-set estimate, which
    depends on when windows seal relative to the feed batches), the ledger
    is a pure function of the flow's sorted packet sequence — chunking- and
    batching-invariant, which is what lets the fleet tier fold it
    bit-stably.  A candidate later resolved by a reordered arrival is not
    retracted (provisional verdicts never are).
    """

    index: int
    start_s: float
    end_s: float
    duration_s: float
    n_packets: int
    payload_bytes: float
    n_rtp: int
    n_new_frames: int
    burst_gap_count: int
    gap_count: int
    gap_max_s: float
    gap_samples: np.ndarray
    seq_received: int
    seq_lost: int
    partial: bool
    frozen: bool
    candidate_gap_packets: int = 0


class _ApproxIntervalStore:
    """Fixed-size aggregates of one approximate measurement window."""

    __slots__ = (
        "n_packets",
        "payload_bytes",
        "n_rtp",
        "n_new_frames",
        "gap_count",
        "gap_sum",
        "gap_max",
        "burst_gap_count",
        "reservoir",
        "seq_received",
        "candidate_gap_packets",
    )

    def __init__(self, index: int, capacity: int) -> None:
        self.n_packets = 0
        self.payload_bytes = 0.0
        self.n_rtp = 0
        self.n_new_frames = 0
        self.gap_count = 0
        self.gap_sum = 0.0
        self.gap_max = 0.0
        self.burst_gap_count = 0
        # seeded by the interval index: deterministic per window
        self.reservoir = _ReservoirSampler(capacity, seed=index)
        self.seq_received = 0
        self.candidate_gap_packets = 0

    def nbytes(self) -> int:
        return self.reservoir.nbytes()

    def snapshot(self) -> dict:
        return {
            "n_packets": self.n_packets,
            "payload_bytes": self.payload_bytes,
            "n_rtp": self.n_rtp,
            "n_new_frames": self.n_new_frames,
            "gap_count": self.gap_count,
            "gap_sum": self.gap_sum,
            "gap_max": self.gap_max,
            "burst_gap_count": self.burst_gap_count,
            "reservoir": self.reservoir.snapshot(),
            "seq_received": self.seq_received,
            "candidate_gap_packets": self.candidate_gap_packets,
        }

    @classmethod
    def from_snapshot(cls, index: int, capacity: int, snapshot: dict):
        store = cls(index, capacity)
        store.n_packets = snapshot["n_packets"]
        store.payload_bytes = snapshot["payload_bytes"]
        store.n_rtp = snapshot["n_rtp"]
        store.n_new_frames = snapshot["n_new_frames"]
        store.gap_count = snapshot["gap_count"]
        store.gap_sum = snapshot["gap_sum"]
        store.gap_max = snapshot["gap_max"]
        store.burst_gap_count = snapshot["burst_gap_count"]
        store.reservoir.restore(snapshot["reservoir"])
        store.seq_received = snapshot["seq_received"]
        store.candidate_gap_packets = snapshot.get("candidate_gap_packets", 0)
        return store


class ApproxQoEIntervalReducer(_IntervalSealer):
    """O(intervals) approximate QoE state: aggregates only, no columns.

    Per sealed ``W``-second interval the reducer keeps a
    :class:`_ApproxIntervalStore` — a hard constant of scalars plus a small
    reservoir, freed when the window seals — and per session a fixed set of
    aggregates the close-time
    :meth:`ObjectiveQoEEstimator.estimate_approx` reads.  Peak per-session
    state is therefore flat in the packet rate *and* bounded by the open
    (unsealed) windows rather than the session's lifetime (pinned by the
    memory benchmark's scaling probe), unlike the exact tier's ~24 B per
    downstream packet.

    **Error model** (each bound asserted by ``tests/test_approx_qoe.py``):

    * throughput and duration are exact (integral byte sums);
    * the inter-frame gap population (count, sum, max — gaps above
      :data:`~repro.core.qoe.FRAME_GAP_SECONDS`) is exact whenever batches
      are time-ordered across arrivals (feeds are time-sliced; each batch
      is sorted on fold, so within-batch shuffling is invisible); the p95
      lag is exact while the session has at most ``session_reservoir``
      frame gaps and an unbiased fixed-seed sample estimate beyond that;
    * the frame count equals the distinct RTP-timestamp count whenever the
      RTP clock is non-decreasing in arrival order (record-high counting
      never overcounts);
    * loss runs the exact estimator's own reset-aware algorithm on two
      fixed 64 KiB counting sets: arrival-order sequence gaps with
      ``0 < g < 200`` mark their skipped values in a ``skipped`` set, every
      observed value marks a ``seen`` set, and close-time lost is
      ``popcount(skipped & ~seen)``.  This equals the exact count whenever
      the session's sequence numbers span at most one 16-bit wrap (no
      aliasing) and no value is skipped-and-never-seen *twice* (the exact
      path counts such values once per candidate gap, a set once).

    The one structural approximation shared with bounded mode: a packet
    older than the carried last arrival (cross-batch reordering) produces a
    negative gap, which simply drops out of the frame-gap population.
    """

    #: Reservoir capacity per sealed interval (provisional p95).
    interval_reservoir = 64
    #: Session-level reservoir capacity backing the close-time p95.
    session_reservoir = 4096

    __slots__ = (
        "interval_seconds",
        "_stores",
        "_sealed_upto",
        "_last_down_ts",
        "_frame_max_rts",
        "_n_frames",
        "_n_rtp",
        "_n_down",
        "_gap_count",
        "_gap_sum",
        "_gap_max",
        "_burst_gap_count",
        "_gap_reservoir",
        "_seq_received",
        "_seq_last_raw",
        "_seen",
        "_skipped",
        "_lost_reported",
    )

    #: Arrival-order sequence gaps at or above this are stream resets, not
    #: loss bursts — the same cutoff as the exact estimator.
    _RESET_GAP = 200

    def __init__(self, interval_seconds: float = 10.0) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        self.interval_seconds = interval_seconds
        self._stores: Dict[int, _ApproxIntervalStore] = {}
        self._sealed_upto = 0
        self._last_down_ts = float("-inf")
        self._frame_max_rts = -1
        self._n_frames = 0
        self._n_rtp = 0
        self._n_down = 0
        self._gap_count = 0
        self._gap_sum = 0.0
        self._gap_max = 0.0
        self._burst_gap_count = 0
        self._gap_reservoir = _ReservoirSampler(self.session_reservoir, seed=0x95)
        self._seq_received = 0
        self._seq_last_raw = -1
        # the two 64 KiB counting sets backing the loss estimate, lazy
        self._seen: Optional[np.ndarray] = None
        self._skipped: Optional[np.ndarray] = None
        self._lost_reported = 0  # lost count already attributed to sealed windows

    # ------------------------------------------------------------ ingestion
    def absorb_arrays(
        self,
        timestamps: np.ndarray,
        sizes: np.ndarray,
        sequences: Optional[np.ndarray],
        rtp_times: Optional[np.ndarray],
        origin: float,
    ) -> None:
        """Fold pre-selected downstream rows into the fixed-size aggregates."""
        if not timestamps.size:
            return
        if timestamps.size > 1 and not bool(
            np.all(timestamps[1:] >= timestamps[:-1])
        ):
            order = np.argsort(timestamps, kind="stable")
            timestamps = timestamps[order]
            sizes = sizes[order]
            sequences = sequences[order] if sequences is not None else None
            rtp_times = rtp_times[order] if rtp_times is not None else None
        n = int(timestamps.size)

        # --- inter-frame gap stream (diffs against the carried last arrival)
        gap_at = np.full(n, -1.0)
        if np.isfinite(self._last_down_ts):
            gap_at = timestamps - np.concatenate(
                ([self._last_down_ts], timestamps[:-1])
            )
        elif n > 1:
            gap_at[1:] = np.diff(timestamps)
        self._last_down_ts = max(self._last_down_ts, float(timestamps[-1]))
        frame_gaps = gap_at[gap_at > FRAME_GAP_SECONDS]
        if frame_gaps.size:
            self._gap_count += int(frame_gaps.size)
            self._gap_sum += float(frame_gaps.sum())
            self._gap_max = max(self._gap_max, float(frame_gaps.max()))
            self._gap_reservoir.add(frame_gaps)
        self._burst_gap_count += int(np.count_nonzero(gap_at > BURST_GAP_SECONDS))
        self._n_down += n

        # --- frames: strict record highs of the RTP timestamp
        new_frame_at: Optional[np.ndarray] = None
        rtp_valid: Optional[np.ndarray] = None
        if rtp_times is not None:
            rtp_valid = rtp_times != RTP_NONE
            if rtp_valid.any():
                values = rtp_times[rtp_valid]
                running = np.maximum.accumulate(
                    np.concatenate(([self._frame_max_rts], values))
                )
                is_new = running[1:] > running[:-1]
                self._frame_max_rts = int(running[-1])
                self._n_frames += int(np.count_nonzero(is_new))
                self._n_rtp += int(values.size)
                new_frame_at = np.zeros(n, dtype=bool)
                new_frame_at[np.flatnonzero(rtp_valid)[is_new]] = True
            else:
                rtp_valid = None

        # --- sequences: the exact loss algorithm on two counting sets
        seq_valid: Optional[np.ndarray] = None
        cand_gap_at: Optional[np.ndarray] = None
        if sequences is not None:
            seq_valid = sequences != RTP_NONE
            if seq_valid.any():
                raw = sequences[seq_valid].astype(np.int64)
                if self._seen is None:
                    self._seen = np.zeros(0x10000, dtype=bool)
                    self._skipped = np.zeros(0x10000, dtype=bool)
                self._seen[raw & 0xFFFF] = True
                if self._seq_last_raw < 0:
                    prevs, nexts = raw[:-1], raw[1:]
                else:
                    prevs = np.concatenate(([self._seq_last_raw], raw[:-1]))
                    nexts = raw
                if prevs.size:
                    gaps = (nexts - prevs - 1) & 0xFFFF
                    candidate = (gaps > 0) & (gaps < self._RESET_GAP)
                    if candidate.any():
                        gap_sizes = gaps[candidate]
                        gap_starts = prevs[candidate]
                        # expand each gap into its skipped values (the exact
                        # estimator's own expansion) and mark them
                        offsets = np.arange(int(gap_sizes.sum())) - np.repeat(
                            np.cumsum(gap_sizes) - gap_sizes, gap_sizes
                        )
                        skipped = (
                            np.repeat(gap_starts, gap_sizes) + offsets + 1
                        ) & 0xFFFF
                        self._skipped[skipped] = True
                        # per-window candidate-gap ledger: attribute each gap
                        # to the row of the arrival that revealed it (the
                        # ``nexts`` side), so the size lands in that row's
                        # sealing window below.  Reveal rows are distinct, so
                        # plain fancy assignment is exact.
                        seq_rows = np.flatnonzero(seq_valid)
                        reveal = seq_rows[1:] if self._seq_last_raw < 0 else seq_rows
                        cand_gap_at = np.zeros(n, dtype=np.int64)
                        cand_gap_at[reveal[candidate]] = gap_sizes
                self._seq_last_raw = int(raw[-1])
                self._seq_received += int(raw.size)
            else:
                seq_valid = None

        # --- per-interval aggregates (sorted rows => contiguous runs)
        indices = np.floor((timestamps - origin) / self.interval_seconds).astype(
            np.int64
        )
        np.clip(indices, 0, None, out=indices)
        boundaries = np.flatnonzero(indices[1:] != indices[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        for start, end in zip(starts, ends):
            store = self._stores.get(int(indices[start]))
            if store is None:
                store = self._stores[int(indices[start])] = _ApproxIntervalStore(
                    int(indices[start]), self.interval_reservoir
                )
            store.n_packets += int(end - start)
            store.payload_bytes += float(sizes[start:end].sum())
            run_gaps = gap_at[start:end]
            run_frame_gaps = run_gaps[run_gaps > FRAME_GAP_SECONDS]
            if run_frame_gaps.size:
                store.gap_count += int(run_frame_gaps.size)
                store.gap_sum += float(run_frame_gaps.sum())
                store.gap_max = max(store.gap_max, float(run_frame_gaps.max()))
                store.reservoir.add(run_frame_gaps)
            store.burst_gap_count += int(
                np.count_nonzero(run_gaps > BURST_GAP_SECONDS)
            )
            if rtp_valid is not None:
                store.n_rtp += int(np.count_nonzero(rtp_valid[start:end]))
            if new_frame_at is not None:
                store.n_new_frames += int(np.count_nonzero(new_frame_at[start:end]))
            if seq_valid is not None:
                store.seq_received += int(np.count_nonzero(seq_valid[start:end]))
            if cand_gap_at is not None:
                store.candidate_gap_packets += int(cand_gap_at[start:end].sum())

    # ------------------------------------------------------------ sealing
    def _sealed_view(
        self, index: int, origin: float, end_s: float, partial: bool
    ) -> SealedApproxQoEInterval:
        # index 0 starts at the origin directly (inf-interval sentinel: 0*inf
        # is NaN), exactly like the exact reducer
        start = origin if index == 0 else origin + index * self.interval_seconds
        # pop, don't get: nothing reads a sealed store again (close metrics
        # come from the session-level aggregates), so live per-interval state
        # is bounded by the *open* windows, not the session's lifetime.  Late
        # rows landing in a sealed interval re-create a store that is never
        # re-sealed — dead weight bounded by the feed's reordering span.
        store = self._stores.pop(index, None)
        if store is None:
            return SealedApproxQoEInterval(
                index=index,
                start_s=start,
                end_s=end_s,
                duration_s=max(end_s - start, 1e-3),
                n_packets=0,
                payload_bytes=0.0,
                n_rtp=0,
                n_new_frames=0,
                burst_gap_count=0,
                gap_count=0,
                gap_max_s=0.0,
                gap_samples=_EMPTY_FLOAT,
                seq_received=0,
                seq_lost=0,
                partial=partial,
                frozen=False,
            )
        # attribute the growth of the session-wide lost count since the last
        # seal to this window (a skipped value resolved by a later arrival
        # silently drops out of the session total — provisional verdicts are
        # not retracted, exactly like the other gates)
        lost_now = self._lost_so_far()
        lost = max(0, lost_now - self._lost_reported)
        self._lost_reported = lost_now
        return SealedApproxQoEInterval(
            index=index,
            start_s=start,
            end_s=end_s,
            duration_s=max(end_s - start, 1e-3),
            n_packets=store.n_packets,
            payload_bytes=store.payload_bytes,
            n_rtp=store.n_rtp,
            n_new_frames=store.n_new_frames,
            burst_gap_count=store.burst_gap_count,
            gap_count=store.gap_count,
            gap_max_s=store.gap_max,
            gap_samples=store.reservoir.sample().copy(),
            seq_received=store.seq_received,
            seq_lost=lost,
            partial=partial,
            # packets flowed but the RTP clock never advanced past the
            # previous window's last-seen timestamp: a frozen image
            frozen=store.n_packets > 0 and store.n_rtp > 0
            and store.n_new_frames == 0,
            candidate_gap_packets=store.candidate_gap_packets,
        )

    def _lost_so_far(self) -> int:
        """Skipped-and-never-seen sequence values (the exact lost count)."""
        if self._skipped is None:
            return 0
        return int(np.count_nonzero(self._skipped & ~self._seen))

    # ------------------------------------------------------------ finalise
    def final_aggregates(self) -> dict:
        """Session-level keyword arguments for ``estimate_approx``.

        Independent of the interval width and of how the feed was batched,
        which is what pins offline (one infinite window) and streaming
        (10 s windows) approx close reports equal.
        """
        lost = self._lost_so_far()
        return {
            "n_down_packets": self._n_down,
            "n_frames": self._n_frames,
            "n_rtp": self._n_rtp,
            "burst_gap_count": self._burst_gap_count,
            "gap_count": self._gap_count,
            "gap_max_s": self._gap_max,
            "gap_samples": self._gap_reservoir.sample().copy(),
            "seq_received": self._seq_received,
            "seq_lost": lost,
        }

    @property
    def gap_sum_s(self) -> float:
        """Total inter-frame gap seconds (exact; diagnostics and tests)."""
        return self._gap_sum

    def nbytes(self) -> int:
        total = self._gap_reservoir.nbytes()
        if self._seen is not None:
            total += self._seen.nbytes + self._skipped.nbytes
        return total + sum(store.nbytes() for store in self._stores.values())

    def snapshot(self) -> dict:
        return {
            "interval_seconds": self.interval_seconds,
            "stores": {
                key: store.snapshot() for key, store in self._stores.items()
            },
            "sealed_upto": self._sealed_upto,
            "last_down_ts": self._last_down_ts,
            "frame_max_rts": self._frame_max_rts,
            "n_frames": self._n_frames,
            "n_rtp": self._n_rtp,
            "n_down": self._n_down,
            "gap_count": self._gap_count,
            "gap_sum": self._gap_sum,
            "gap_max": self._gap_max,
            "burst_gap_count": self._burst_gap_count,
            "gap_reservoir": self._gap_reservoir.snapshot(),
            "seq_received": self._seq_received,
            "seq_last_raw": self._seq_last_raw,
            # the counting sets accumulate in place — copy at snapshot time
            "seen": None if self._seen is None else self._seen.copy(),
            "skipped": None if self._skipped is None else self._skipped.copy(),
            "lost_reported": self._lost_reported,
        }

    def restore(self, snapshot: dict) -> None:
        self.interval_seconds = snapshot["interval_seconds"]
        self._stores = {
            key: _ApproxIntervalStore.from_snapshot(
                key, self.interval_reservoir, state
            )
            for key, state in snapshot["stores"].items()
        }
        self._sealed_upto = snapshot["sealed_upto"]
        self._last_down_ts = snapshot["last_down_ts"]
        self._frame_max_rts = snapshot["frame_max_rts"]
        self._n_frames = snapshot["n_frames"]
        self._n_rtp = snapshot["n_rtp"]
        self._n_down = snapshot["n_down"]
        self._gap_count = snapshot["gap_count"]
        self._gap_sum = snapshot["gap_sum"]
        self._gap_max = snapshot["gap_max"]
        self._burst_gap_count = snapshot["burst_gap_count"]
        self._gap_reservoir.restore(snapshot["gap_reservoir"])
        self._seq_received = snapshot["seq_received"]
        self._seq_last_raw = snapshot["seq_last_raw"]
        seen, skipped = snapshot["seen"], snapshot["skipped"]
        self._seen = None if seen is None else seen.copy()
        self._skipped = None if skipped is None else skipped.copy()
        self._lost_reported = snapshot["lost_reported"]


# ---------------------------------------------------------------------------
# the cascade: shared aggregates + the reducers, one absorb() entry point
# ---------------------------------------------------------------------------
class SessionReducerCascade:
    """Bounded fold state of one session across every cascade stage.

    Parameters
    ----------
    slot_duration / alpha:
        Stage-classification slot ``I`` and EMA weight (from the fitted
        activity classifier).
    window_seconds:
        Title window ``N`` (from the fitted title classifier).
    qoe_interval_seconds:
        Width of the provisional QoE measurement windows (10 s by default).
    keep_history:
        Retain the raw batches (the runtime's ``"full"`` mode): enables
        :meth:`assembled_stream` and the exact refold when a packet older
        than the session origin arrives in a later batch.  The default
        (bounded) mode holds no packet history.
    qoe_mode:
        ``"exact"`` (default) keeps the per-interval downstream QoE columns
        (close metrics bit-identical to offline); ``"approx"`` folds into
        the O(intervals) :class:`ApproxQoEIntervalReducer` — no columns at
        all, close metrics approximate with documented error bounds.
        Incompatible with ``keep_history`` (full mode exists to be exact).
    """

    __slots__ = (
        "origin",
        "last_ts",
        "n_packets",
        "down_bytes",
        "up_bytes",
        "has_downstream",
        "has_rtp",
        "origin_shifts",
        "launch",
        "slots",
        "qoe",
        "qoe_mode",
        "_history",
        "_window_seconds",
        "_alpha",
        "_qoe_interval_seconds",
    )

    def __init__(
        self,
        slot_duration: float,
        alpha: float,
        window_seconds: float,
        qoe_interval_seconds: float = 10.0,
        keep_history: bool = False,
        qoe_mode: str = "exact",
    ) -> None:
        if qoe_mode not in QOE_MODES:
            raise ValueError(f"qoe_mode must be one of {QOE_MODES}, got {qoe_mode!r}")
        if qoe_mode == "approx" and keep_history:
            raise ValueError(
                "qoe_mode='approx' is incompatible with keep_history: the "
                "full-history mode exists to stay exact under reordering"
            )
        self.origin: Optional[float] = None
        self.last_ts = float("-inf")
        self.n_packets = 0
        self.down_bytes = 0.0
        self.up_bytes = 0.0
        self.has_downstream = False
        self.has_rtp = False
        self.origin_shifts = 0
        self._window_seconds = window_seconds
        self._alpha = alpha
        self._qoe_interval_seconds = qoe_interval_seconds
        self.launch = LaunchWindowReducer(window_seconds)
        self.slots = SlotStageReducer(slot_duration, alpha)
        self.qoe_mode = qoe_mode
        if qoe_mode == "approx":
            self.qoe = ApproxQoEIntervalReducer(qoe_interval_seconds)
        else:
            self.qoe = QoEIntervalReducer(qoe_interval_seconds)
        self._history: Optional[List[PacketColumns]] = [] if keep_history else None

    # ------------------------------------------------------------ ingestion
    def absorb(self, columns: PacketColumns) -> int:
        """Fold one batch into every reducer; return new launch-window rows.

        The return value counts rows that landed inside the title window —
        the runtime uses a non-zero count after the title gate fired as the
        re-classification trigger.
        """
        if not len(columns):
            return 0
        timestamps = columns.timestamps
        batch_min = float(timestamps.min())
        if self.origin is None:
            self.origin = batch_min
        elif batch_min < self.origin and self._history is not None:
            # exact refold: an older packet surfaced, so every slot/interval
            # assignment shifts.  Only possible with retained history.
            self.origin_shifts += 1
            self._history.append(columns)
            self._refold(batch_min)
            mask = timestamps <= self.origin + self._window_seconds
            return int(np.count_nonzero(mask))
        elif batch_min < self.origin:
            # bounded mode: keep the anchored origin; pre-origin rows clip
            # into slot/interval 0 (the provisional counters absorb the
            # approximation, the final QoE columns stay exact)
            self.origin_shifts += 1
        if self._history is not None:
            self._history.append(columns)
        return self._fold(columns)

    def _fold(self, columns: PacketColumns) -> int:
        timestamps = columns.timestamps
        self.last_ts = max(self.last_ts, float(timestamps.max()))
        self.n_packets += len(columns)
        down = columns.directions == DOWNSTREAM_CODE
        sizes = columns.payload_sizes
        # one downstream gather, shared by the byte totals and the QoE store
        down_times = timestamps[down]
        down_sizes = sizes[down]
        if down_times.size:
            self.has_downstream = True
            down_sum = float(down_sizes.sum())
            self.down_bytes += down_sum
            # integral payload sizes make the subtraction exact
            self.up_bytes += float(sizes.sum()) - down_sum
        else:
            self.up_bytes += float(sizes.sum())
        ssrc = columns.rtp_ssrc
        if not self.has_rtp and ssrc is not None and bool(np.any(ssrc != RTP_NONE)):
            self.has_rtp = True
        new_window_rows = self.launch.absorb(columns, self.origin)
        self.slots.absorb(timestamps, sizes, down, self.origin)
        sequences = columns.rtp_sequence
        rtp_times = columns.rtp_timestamp
        self.qoe.absorb_arrays(
            down_times,
            down_sizes,
            sequences[down] if sequences is not None else None,
            rtp_times[down] if rtp_times is not None else None,
            self.origin,
        )
        return new_window_rows

    def absorb_stream(self, stream: PacketStream) -> int:
        """Fold a whole sorted session stream (the offline one-shot path).

        Fold-identical to ``absorb(stream.columns())`` but reads the
        stream's cached per-direction views instead of re-deriving them, so
        repeated offline classification of the same corpus pays the
        direction split once per stream, not once per fold.  Only valid as
        the first fold of the cascade; later folds fall back to
        :meth:`absorb`.
        """
        columns = stream.columns()
        if not len(columns) or self.origin is not None:
            return self.absorb(columns)
        from repro.net.packet import Direction  # local: avoid cycle at import

        timestamps = columns.timestamps
        self.origin = float(timestamps[0])  # sorted stream
        self.last_ts = float(timestamps[-1])
        self.n_packets = len(columns)
        if self._history is not None:
            self._history.append(columns)
        down_times = stream.timestamps(Direction.DOWNSTREAM)
        down_sizes = stream.payload_sizes(Direction.DOWNSTREAM)
        up_times = stream.timestamps(Direction.UPSTREAM)
        up_sizes = stream.payload_sizes(Direction.UPSTREAM)
        if down_times.size:
            self.has_downstream = True
            self.down_bytes += float(down_sizes.sum())
        self.up_bytes += float(up_sizes.sum())
        ssrc = columns.rtp_ssrc
        if ssrc is not None and bool(np.any(ssrc != RTP_NONE)):
            self.has_rtp = True
        new_window_rows = self.launch.absorb(columns, self.origin)
        self.slots.absorb_directional(
            down_times, down_sizes, up_times, up_sizes, self.origin
        )
        sequences = columns.rtp_sequence
        rtp_times = columns.rtp_timestamp
        if sequences is not None or rtp_times is not None:
            down_rows = stream.direction_indices(Direction.DOWNSTREAM)
        self.qoe.absorb_arrays(
            down_times,
            down_sizes,
            sequences[down_rows] if sequences is not None else None,
            rtp_times[down_rows] if rtp_times is not None else None,
            self.origin,
        )
        return new_window_rows

    def _refold(self, new_origin: float) -> None:
        """Re-fold the retained history against a corrected (earlier) origin."""
        history = self._history or []
        self.origin = new_origin
        self.last_ts = float("-inf")
        self.n_packets = 0
        self.down_bytes = 0.0
        self.up_bytes = 0.0
        self.has_downstream = False
        self.has_rtp = False
        self.launch = LaunchWindowReducer(self._window_seconds)
        self.slots.reset_counts()
        # like the slot cursor, the seal watermark survives the refold:
        # already-emitted provisional QoEInterval events cannot be
        # retracted, so the rebuilt store must not re-seal (re-emit) them
        sealed_upto = self.qoe._sealed_upto
        self.qoe = QoEIntervalReducer(self._qoe_interval_seconds)
        self.qoe._sealed_upto = sealed_upto
        for batch in history:
            self._fold(batch)

    # ------------------------------------------------------------ aggregates
    @property
    def duration(self) -> float:
        """Seconds between the first and last packet (the offline value)."""
        if self.origin is None:
            return 0.0
        return max(0.0, self.last_ts - self.origin)

    def total_slots(self) -> int:
        """Slot count of the session so far (the offline ``n_slots``)."""
        if self.origin is None:
            return 0
        return max(
            1,
            int(np.ceil((self.last_ts - self.origin) / self.slots.slot_duration)),
        )

    # ------------------------------------------------------------ provisional
    def advance_slots(self, clock: float) -> Tuple[np.ndarray, np.ndarray]:
        """Provisional stage gate: feature rows of newly completed slots."""
        return self.slots.advance(clock, self.origin, self.total_slots())

    def advance_qoe(self, clock: float) -> List[SealedQoEInterval]:
        """Provisional QoE gate: seal intervals the clock has passed."""
        return self.qoe.advance(clock, self.origin)

    def flush_qoe(self) -> List[SealedQoEInterval]:
        """Seal the trailing partial interval at close time."""
        if self.origin is None:
            return []
        return self.qoe.flush(self.origin, self.last_ts)

    # ------------------------------------------------------------ finalise
    def launch_stream(self) -> PacketStream:
        """The title window's packets as a time-sorted stream."""
        return self.launch.stream()

    def final_raw_matrix(self) -> np.ndarray:
        """The offline raw slot matrix of everything absorbed so far."""
        if self.origin is None:
            return np.zeros((1, 4))
        return self.slots.raw_matrix(self.total_slots())

    def qoe_arrays(self) -> dict:
        """Keyword arguments for ``ObjectiveQoEEstimator.estimate_arrays``."""
        if self.qoe_mode == "approx":
            raise RuntimeError(
                "the approx QoE tier keeps no downstream columns; finalise "
                "through qoe_approx_arrays() / estimate_approx() instead"
            )
        down_times, rtp_timestamps, rtp_sequences = self.qoe.final_columns()
        return {
            "duration_s": self.duration,
            "down_times": down_times,
            "down_payload_bytes": self.down_bytes,
            "rtp_timestamps": rtp_timestamps,
            "rtp_sequences": rtp_sequences,
        }

    def qoe_approx_arrays(self) -> dict:
        """Keyword arguments for ``ObjectiveQoEEstimator.estimate_approx``."""
        if self.qoe_mode != "approx":
            raise RuntimeError(
                "the exact QoE tier finalises through qoe_arrays() / "
                "estimate_arrays(); qoe_approx_arrays() is approx-mode only"
            )
        return {
            "duration_s": self.duration,
            "down_payload_bytes": self.down_bytes,
            **self.qoe.final_aggregates(),
        }

    def flow_summary(self, server_port: int) -> dict:
        """The flow-metadata fields the platform signatures read.

        Matches :meth:`repro.net.flow.Flow.summary` bit for bit: byte totals
        are integral, so the mean-throughput and byte-ratio arithmetic below
        reproduces the stream-backed computation exactly.
        """
        duration = self.duration
        down = int(self.down_bytes)
        total = down + int(self.up_bytes)
        return {
            "duration_s": duration,
            "downstream_mbps": (
                down * 8 / duration / 1e6 if duration > 0 else 0.0
            ),
            "downstream_fraction": down / total if total else 0.0,
            "is_rtp": self.has_rtp,
            "server_port": server_port,
        }

    # ------------------------------------------------------------ history
    @property
    def keeps_history(self) -> bool:
        return self._history is not None

    @property
    def history(self) -> List[PacketColumns]:
        if self._history is None:
            raise RuntimeError(
                "packet history is not retained in bounded mode; construct the "
                "cascade with keep_history=True (runtime mode='full')"
            )
        return self._history

    def assembled_stream(self) -> PacketStream:
        """The full packet history as one time-sorted stream (full mode)."""
        return PacketStream.from_columns(PacketColumns.concat(self.history))

    # ------------------------------------------------------------ accounting
    def state_nbytes(self) -> int:
        """Approximate bytes of live per-session state (arrays only).

        Bounded mode counts the slot counters, the launch-window buffer and
        the per-interval QoE columns; full-history mode additionally counts
        every retained batch's columns.
        """
        total = self.launch.nbytes() + self.slots.nbytes() + self.qoe.nbytes()
        if self._history is not None:
            total += sum(batch.nbytes() for batch in self._history)
        return total

    # ------------------------------------------------------------ snapshots
    def snapshot(self) -> dict:
        """Complete fold state as a plain python/numpy dict.

        A cascade rebuilt with :meth:`from_snapshot` and fed the same
        subsequent batches produces bit-identical provisional events and
        close reports — the basis of the sharded runtime's checkpoint/replay
        recovery (DESIGN.md §8).  The dict is picklable (flow history and
        launch chunks are :class:`PacketColumns`; everything else is
        scalars, numpy arrays and nested dicts).
        """
        return {
            "config": {
                "slot_duration": self.slots.slot_duration,
                "alpha": self._alpha,
                "window_seconds": self._window_seconds,
                "qoe_interval_seconds": self._qoe_interval_seconds,
                "keep_history": self._history is not None,
                "qoe_mode": self.qoe_mode,
            },
            "origin": self.origin,
            "last_ts": self.last_ts,
            "n_packets": self.n_packets,
            "down_bytes": self.down_bytes,
            "up_bytes": self.up_bytes,
            "has_downstream": self.has_downstream,
            "has_rtp": self.has_rtp,
            "origin_shifts": self.origin_shifts,
            "launch": self.launch.snapshot(),
            "slots": self.slots.snapshot(),
            "qoe": self.qoe.snapshot(),
            "history": None if self._history is None else list(self._history),
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "SessionReducerCascade":
        """Rebuild a cascade from a :meth:`snapshot` dict."""
        config = snapshot["config"]
        cascade = cls(
            slot_duration=config["slot_duration"],
            alpha=config["alpha"],
            window_seconds=config["window_seconds"],
            qoe_interval_seconds=config["qoe_interval_seconds"],
            keep_history=config["keep_history"],
            qoe_mode=config["qoe_mode"],
        )
        cascade.origin = snapshot["origin"]
        cascade.last_ts = snapshot["last_ts"]
        cascade.n_packets = snapshot["n_packets"]
        cascade.down_bytes = snapshot["down_bytes"]
        cascade.up_bytes = snapshot["up_bytes"]
        cascade.has_downstream = snapshot["has_downstream"]
        cascade.has_rtp = snapshot["has_rtp"]
        cascade.origin_shifts = snapshot["origin_shifts"]
        cascade.launch.restore(snapshot["launch"])
        cascade.slots.restore(snapshot["slots"])
        cascade.qoe.restore(snapshot["qoe"])
        history = snapshot["history"]
        cascade._history = None if history is None else list(history)
        return cascade
