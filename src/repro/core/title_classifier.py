"""Game-title classification from the first seconds of a session (§4.2).

The classifier consumes the 51 packet-group attributes extracted from the
first ``N`` seconds (5 in the deployed system) of a game streaming flow and
predicts the game title.  Predictions whose confidence falls below a
threshold are reported as ``"unknown"`` — the paper observes that most
misclassified sessions have confidence below 40%, so unknown-labeling keeps
precision high and defers those sessions to the coarse-grained gameplay
activity pattern inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import (
    PACKET_GROUP_FEATURE_NAMES,
    launch_feature_matrix,
    launch_features,
    volumetric_launch_features,
)
from repro.core.packet_groups import PacketGroupLabeler
from repro.ml.base import BaseClassifier
from repro.ml.forest import RandomForestClassifier
from repro.net.packet import PacketStream
from repro.simulation.catalog import UNKNOWN_TITLE


@dataclass
class TitlePrediction:
    """Outcome of classifying one streaming session's launch window."""

    title: str
    confidence: float
    probabilities: dict

    @property
    def is_unknown(self) -> bool:
        return self.title == UNKNOWN_TITLE


class GameTitleClassifier:
    """Classifies the game title from launch-stage packet-group attributes.

    Parameters
    ----------
    window_seconds:
        Analysis window ``N`` (seconds of downstream packets after flow
        start); 5 seconds in the deployed system.
    slot_duration:
        Attribute time slot ``T`` (seconds); 1 second in the deployed system.
    size_variation:
        Packet-group labeling parameter ``V`` (default 10%).
    confidence_threshold:
        Predictions below this confidence are labeled ``"unknown"``
        (default 0.4, per §4.4.1).
    model:
        Underlying classifier; defaults to the paper's best performer, a
        random forest with 500 trees and maximum depth 10.
    feature_mode:
        ``"packet-group"`` (the paper's 51 attributes) or ``"flow-volumetric"``
        (the Table 3 baseline).
    """

    def __init__(
        self,
        window_seconds: float = 5.0,
        slot_duration: float = 1.0,
        size_variation: float = 0.10,
        confidence_threshold: float = 0.4,
        model: Optional[BaseClassifier] = None,
        feature_mode: str = "packet-group",
        feature_aggregate: str = "concat",
        random_state: Optional[int] = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        if not 0.0 <= confidence_threshold < 1.0:
            raise ValueError(
                f"confidence_threshold must be in [0, 1), got {confidence_threshold}"
            )
        if feature_mode not in ("packet-group", "flow-volumetric"):
            raise ValueError(
                "feature_mode must be 'packet-group' or 'flow-volumetric', "
                f"got {feature_mode!r}"
            )
        if feature_aggregate not in ("mean", "concat"):
            raise ValueError(
                f"feature_aggregate must be 'mean' or 'concat', got {feature_aggregate!r}"
            )
        self.feature_aggregate = feature_aggregate
        self.window_seconds = window_seconds
        self.slot_duration = slot_duration
        self.size_variation = size_variation
        self.confidence_threshold = confidence_threshold
        self.feature_mode = feature_mode
        self.model = model or RandomForestClassifier(
            n_estimators=500, max_depth=10, random_state=random_state
        )
        self._labeler = PacketGroupLabeler(
            slot_duration=slot_duration, size_variation=size_variation
        )

    # ------------------------------------------------------------ features
    def extract_features(self, stream: PacketStream) -> np.ndarray:
        """Feature vector for one session according to ``feature_mode``."""
        if self.feature_mode == "packet-group":
            return launch_features(
                stream,
                window_seconds=self.window_seconds,
                labeler=self._labeler,
                aggregate=self.feature_aggregate,
            )
        return volumetric_launch_features(
            stream,
            window_seconds=self.window_seconds,
            slot_duration=self.slot_duration,
        )

    def feature_names(self) -> List[str]:
        """Names of the attributes consumed by the model.

        With ``feature_aggregate="concat"`` the 51 per-slot attributes are
        repeated once per slot with a ``[n]`` suffix, mirroring Fig. 7's
        ``full_ct_sum[n]`` notation.
        """
        if self.feature_mode == "packet-group":
            if self.feature_aggregate == "mean":
                return list(PACKET_GROUP_FEATURE_NAMES)
            n_slots = max(1, int(np.ceil(self.window_seconds / self.slot_duration)))
            return [
                f"{name}[{slot}]"
                for slot in range(n_slots)
                for name in PACKET_GROUP_FEATURE_NAMES
            ]
        return [
            "down_packet_rate_mean",
            "down_packet_rate_std",
            "down_throughput_mean",
            "down_throughput_std",
        ]

    def feature_matrix(self, streams: Sequence[PacketStream]) -> np.ndarray:
        """Stack feature vectors for many sessions (batched extraction).

        In ``"packet-group"`` mode the 51 per-slot attributes of the whole
        corpus are computed in one grouped reduction
        (:func:`~repro.core.features.launch_feature_matrix`); rows are
        identical to per-session :meth:`extract_features` calls.
        """
        if not streams:
            raise ValueError("streams must not be empty")
        if self.feature_mode == "packet-group":
            return launch_feature_matrix(
                streams,
                window_seconds=self.window_seconds,
                labeler=self._labeler,
                aggregate=self.feature_aggregate,
            )
        return np.stack([self.extract_features(stream) for stream in streams])

    # ------------------------------------------------------------ training
    def fit(
        self,
        streams: Sequence[PacketStream],
        titles: Sequence[str],
    ) -> "GameTitleClassifier":
        """Train on labeled launch windows."""
        if len(streams) != len(titles):
            raise ValueError(
                f"{len(streams)} streams but {len(titles)} title labels"
            )
        X = self.feature_matrix(streams)
        self.model.fit(X, np.asarray(titles))
        return self

    def fit_features(self, X: np.ndarray, titles: Sequence[str]) -> "GameTitleClassifier":
        """Train directly on a precomputed feature matrix."""
        self.model.fit(X, np.asarray(titles))
        return self

    # ----------------------------------------------------------- inference
    def predict_stream(self, stream: PacketStream) -> TitlePrediction:
        """Classify one session from its packet stream."""
        features = self.extract_features(stream).reshape(1, -1)
        return self._predict_features(features)[0]

    def predict_features(self, X: np.ndarray) -> List[TitlePrediction]:
        """Classify sessions from precomputed feature vectors."""
        return self._predict_features(np.atleast_2d(X))

    def _predict_features(self, X: np.ndarray) -> List[TitlePrediction]:
        proba = self.model.predict_proba(X)
        classes = self.model.classes_
        predictions: List[TitlePrediction] = []
        for row in proba:
            best = int(np.argmax(row))
            confidence = float(row[best])
            title = str(classes[best])
            if confidence < self.confidence_threshold:
                title = UNKNOWN_TITLE
            predictions.append(
                TitlePrediction(
                    title=title,
                    confidence=confidence,
                    probabilities={
                        str(label): float(p) for label, p in zip(classes, row)
                    },
                )
            )
        return predictions

    def predict_streams(self, streams: Sequence[PacketStream]) -> List[TitlePrediction]:
        """Classify many sessions with one batched extraction + forest pass.

        Equivalent to ``[predict_stream(s) for s in streams]`` but the
        launch attributes of the whole corpus are extracted in one grouped
        reduction and the forest traverses all rows in a single
        ``predict_proba`` call.
        """
        if not streams:
            return []
        return self._predict_features(self.feature_matrix(streams))

    def predict_titles(self, streams: Sequence[PacketStream]) -> List[str]:
        """Convenience wrapper returning only the predicted titles."""
        return [p.title for p in self.predict_streams(streams)]

    def evaluate(
        self, streams: Sequence[PacketStream], titles: Sequence[str]
    ) -> Tuple[float, List[TitlePrediction]]:
        """Accuracy (ignoring the unknown fallback) plus raw predictions."""
        predictions = self.predict_streams(streams)
        labels = np.asarray(titles)
        predicted = np.array([p.title for p in predictions])
        return float(np.mean(predicted == labels)), predictions
