"""Stage-transition modelling (§4.3.2, the "stage transition modeler" of Fig. 6).

For every session the modeler maintains a 3×3 matrix counting, per slot, the
transition from the previous slot's classified stage to the current one
(including self-retention).  Normalised to probabilities across the
monitored duration, the nine values form the attribute vector the gameplay
activity pattern classifier consumes; Table 5 reports their permutation
importance (transitions from active to idle being the most informative).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.catalog import PlayerStage

#: Stage ordering of matrix rows/columns.
STAGE_ORDER: Tuple[PlayerStage, ...] = (
    PlayerStage.ACTIVE,
    PlayerStage.PASSIVE,
    PlayerStage.IDLE,
)

#: Names of the nine transition attributes ("from_to" in STAGE_ORDER).
TRANSITION_FEATURE_NAMES: List[str] = [
    f"{src.value}_to_{dst.value}" for src in STAGE_ORDER for dst in STAGE_ORDER
]

_STAGE_INDEX = {stage: index for index, stage in enumerate(STAGE_ORDER)}


class StageTransitionModeler:
    """Accumulates per-slot stage transitions for one session.

    The modeler ignores the launch stage and any unknown labels; it counts a
    transition for every consecutive pair of gameplay-stage slots.
    """

    def __init__(self) -> None:
        self._counts = np.zeros((3, 3))
        self._previous: Optional[PlayerStage] = None
        self._n_slots = 0

    # ------------------------------------------------------------- updates
    def update(self, stage: PlayerStage) -> None:
        """Consume the classified stage of the next slot."""
        if stage not in _STAGE_INDEX:
            # launch or unexpected labels break the chain without counting
            self._previous = None
            return
        self._n_slots += 1
        if self._previous is not None:
            self._counts[_STAGE_INDEX[self._previous], _STAGE_INDEX[stage]] += 1
        self._previous = stage

    def update_sequence(self, stages: Sequence[PlayerStage]) -> None:
        """Consume a whole sequence of per-slot stages."""
        for stage in stages:
            self.update(stage)

    def reset(self) -> None:
        """Clear all state (start of a new session)."""
        self._counts = np.zeros((3, 3))
        self._previous = None
        self._n_slots = 0

    # ------------------------------------------------------------ outputs
    @property
    def n_slots(self) -> int:
        """Number of gameplay-stage slots consumed so far."""
        return self._n_slots

    @property
    def n_transitions(self) -> int:
        """Number of transitions counted so far."""
        return int(self._counts.sum())

    def counts(self) -> np.ndarray:
        """Raw 3×3 transition count matrix (copy)."""
        return self._counts.copy()

    def probability_matrix(self) -> np.ndarray:
        """Transition counts normalised over all observed transitions.

        The paper normalises the nine cells "to their probabilities across
        time slots within the monitored duration", i.e. jointly rather than
        per row, so the attribute vector also encodes how much time is spent
        in each stage.
        """
        total = self._counts.sum()
        if total == 0:
            return np.zeros((3, 3))
        return self._counts / total

    def row_stochastic_matrix(self) -> np.ndarray:
        """Per-source-stage conditional transition probabilities."""
        matrix = self._counts.copy()
        row_sums = matrix.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            normalised = np.where(row_sums > 0, matrix / row_sums, 0.0)
        return normalised

    def feature_vector(self) -> np.ndarray:
        """The nine-attribute vector consumed by the pattern classifier."""
        return self.probability_matrix().reshape(-1)

    def feature_dict(self) -> Dict[str, float]:
        """``{attribute name: probability}`` mapping of the nine attributes."""
        return dict(zip(TRANSITION_FEATURE_NAMES, self.feature_vector().tolist()))


def transition_features_from_stages(stages: Sequence[PlayerStage]) -> np.ndarray:
    """One-shot helper: nine transition attributes of a stage sequence."""
    modeler = StageTransitionModeler()
    modeler.update_sequence(stages)
    return modeler.feature_vector()


def stage_index_codes(stages: Sequence[PlayerStage]) -> np.ndarray:
    """Map a stage sequence onto :data:`STAGE_ORDER` indices (int64 array).

    Gameplay stages map to 0..2 (active, passive, idle); launch and any
    unexpected labels map to ``-1``, which breaks the transition chain
    exactly like :meth:`StageTransitionModeler.update` does.
    """
    return np.asarray(
        [_STAGE_INDEX.get(stage, -1) for stage in stages], dtype=np.int64
    )


def prefix_transition_features(
    stages: Sequence[PlayerStage],
) -> Tuple[np.ndarray, np.ndarray]:
    """Transition attributes of every prefix of a stage sequence, vectorised.

    For a sequence of ``n`` per-slot stages, returns

    * an ``(n, 9)`` float matrix whose row ``t`` equals
      ``StageTransitionModeler.feature_vector()`` after consuming slots
      ``0..t`` (inclusive) — the attribute vector the incremental pattern
      inference evaluates at slot ``t``;
    * an ``(n,)`` int array whose entry ``t`` counts the gameplay-stage slots
      observed up to and including slot ``t``.

    The per-slot replay of :meth:`StageTransitionModeler.update` is replaced
    by one cumulative sum over a one-hot transition matrix: a transition is
    counted at slot ``t`` exactly when both slot ``t-1`` and slot ``t`` carry
    gameplay stages (any launch/unknown slot resets the chain), and each
    prefix's probability matrix is its cumulative counts normalised by the
    cumulative total.  Counts are exact small integers, so the resulting
    rows are bit-identical to the sequential modeler's.
    """
    idx = stage_index_codes(stages)
    n = idx.size
    gameplay_seen = np.cumsum(idx >= 0)
    one_hot = np.zeros((n, 9))
    if n > 1:
        valid = (idx[1:] >= 0) & (idx[:-1] >= 0)
        slots = np.flatnonzero(valid) + 1
        codes = idx[slots - 1] * 3 + idx[slots]
        one_hot[slots, codes] = 1.0
    cumulative = np.cumsum(one_hot, axis=0)
    totals = cumulative.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        features = np.where(totals > 0, cumulative / totals, 0.0)
    return features, gameplay_seen


class PrefixTransitionTracker:
    """Streaming :func:`prefix_transition_features`: carry counts across batches.

    The streaming runtime receives a session's classified stages a few slots
    at a time; re-deriving every prefix from the whole sequence would cost
    O(n) per batch (O(n²) per session).  The tracker carries the transition
    counts, the previous stage and the gameplay-slot count across calls, so
    each :meth:`extend` is O(k) in the batch size while the concatenated
    outputs stay bit-identical to one :func:`prefix_transition_features` call
    over the full sequence — counts are exact small integers, and each
    prefix's attribute vector divides the same cumulative counts by the same
    cumulative total.
    """

    def __init__(self) -> None:
        self._counts = np.zeros(9)
        self._prev = -1
        self._gameplay_seen = 0

    @property
    def gameplay_seen(self) -> int:
        """Gameplay-stage slots consumed so far."""
        return self._gameplay_seen

    @property
    def n_transitions(self) -> int:
        """Transitions counted so far."""
        return int(self._counts.sum())

    def feature_vector(self) -> np.ndarray:
        """The current nine-attribute prefix vector (all slots so far)."""
        total = self._counts.sum()
        if total == 0:
            return np.zeros(9)
        return self._counts / total

    def extend(self, stages: Sequence[PlayerStage]) -> Tuple[np.ndarray, np.ndarray]:
        """Consume the next batch of slots; return their prefix attributes.

        Returns the ``(k, 9)`` attribute matrix and ``(k,)`` gameplay-slot
        counts for the ``k`` new slots, exactly the rows
        :func:`prefix_transition_features` would produce for those positions.
        """
        idx = stage_index_codes(stages)
        n = idx.size
        if n == 0:
            return np.zeros((0, 9)), np.zeros(0, dtype=np.int64)
        previous = np.concatenate(([self._prev], idx[:-1]))
        valid = (idx >= 0) & (previous >= 0)
        one_hot = np.zeros((n, 9))
        rows = np.flatnonzero(valid)
        if rows.size:
            one_hot[rows, previous[rows] * 3 + idx[rows]] = 1.0
        cumulative = self._counts + np.cumsum(one_hot, axis=0)
        totals = cumulative.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            features = np.where(totals > 0, cumulative / totals, 0.0)
        gameplay = self._gameplay_seen + np.cumsum(idx >= 0)
        self._counts = cumulative[-1].copy()
        self._prev = int(idx[-1])
        self._gameplay_seen = int(gameplay[-1])
        return features, gameplay

    def snapshot(self) -> dict:
        """Copy of the carried counts as a plain dict."""
        return {
            "counts": self._counts.copy(),
            "prev": self._prev,
            "gameplay_seen": self._gameplay_seen,
        }

    def restore(self, snapshot: dict) -> None:
        """Adopt a :meth:`snapshot`; subsequent extends continue bit-identically."""
        self._counts = snapshot["counts"].copy()
        self._prev = snapshot["prev"]
        self._gameplay_seen = snapshot["gameplay_seen"]


def stage_occupancy(stages: Sequence[PlayerStage]) -> Dict[PlayerStage, float]:
    """Fraction of gameplay slots per stage in a stage sequence."""
    gameplay = [stage for stage in stages if stage in _STAGE_INDEX]
    if not gameplay:
        return {stage: 0.0 for stage in STAGE_ORDER}
    return {
        stage: sum(1 for s in gameplay if s is stage) / len(gameplay)
        for stage in STAGE_ORDER
    }
