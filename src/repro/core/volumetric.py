"""Bidirectional volumetric attributes for player-activity classification (§4.3.1).

Per ``I``-second slot the method computes four standard volumetric
attributes of the game streaming flow — downstream throughput, downstream
packet rate, upstream throughput and upstream packet rate — then

1. converts each attribute to its *relative* fraction of the session's peak
   value observed so far (above a launch-calibrated threshold), making the
   representation independent of the absolute bitrate of the title/settings;
2. smooths each attribute with an exponential moving average (Equation 1)
   with current-slot weight ``alpha``, suppressing spurious one-slot
   behaviours like an accidental mouse movement while spectating.

The generator below supports both offline (whole-session) extraction used
for training and an online streaming mode used by the real-time pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.net.packet import Direction, PacketStream
from repro.net.timeseries import exponential_moving_average

#: Attribute names in canonical order.
VOLUMETRIC_FEATURE_NAMES = (
    "down_throughput_rel",
    "down_packet_rate_rel",
    "up_throughput_rel",
    "up_packet_rate_rel",
)


@dataclass
class VolumetricSlot:
    """Raw and relative volumetric attributes of one ``I``-second slot."""

    slot_index: int
    down_throughput_mbps: float
    down_packet_rate: float
    up_throughput_kbps: float
    up_packet_rate: float
    relative: np.ndarray

    def as_dict(self) -> Dict[str, float]:
        return {
            "slot_index": self.slot_index,
            "down_throughput_mbps": self.down_throughput_mbps,
            "down_packet_rate": self.down_packet_rate,
            "up_throughput_kbps": self.up_throughput_kbps,
            "up_packet_rate": self.up_packet_rate,
            **dict(zip(VOLUMETRIC_FEATURE_NAMES, self.relative.tolist())),
        }


class VolumetricAttributeGenerator:
    """Computes EMA-smoothed relative volumetric attributes per slot.

    Parameters
    ----------
    slot_duration:
        Slot size ``I`` in seconds (1 second in the deployed system).
    alpha:
        EMA weight of the current slot (0.5 in the deployed system;
        evaluated between 0.1 and 1.0 in Fig. 10).
    peak_floor_fraction:
        Fraction of the launch-stage peak used as the minimum peak estimate,
        so that early gameplay slots are not normalised against a tiny peak.
    """

    def __init__(
        self,
        slot_duration: float = 1.0,
        alpha: float = 0.5,
        peak_floor_fraction: float = 0.25,
    ) -> None:
        if slot_duration <= 0:
            raise ValueError(f"slot_duration must be positive, got {slot_duration}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= peak_floor_fraction <= 1.0:
            raise ValueError(
                f"peak_floor_fraction must be in [0, 1], got {peak_floor_fraction}"
            )
        self.slot_duration = slot_duration
        self.alpha = alpha
        self.peak_floor_fraction = peak_floor_fraction

    # ------------------------------------------------------------ offline
    def raw_slot_matrix(
        self,
        stream: PacketStream,
        duration: Optional[float] = None,
        origin: Optional[float] = None,
    ) -> np.ndarray:
        """Raw per-slot attributes: columns are (down Mbps, down pps, up Kbps, up pps)."""
        origin = stream.start_time if origin is None else origin
        all_times = stream.timestamps()
        if duration is None:
            duration = float(all_times.max() - origin) if all_times.size else 0.0
        n_slots = max(1, int(np.ceil(duration / self.slot_duration)))

        matrix = np.zeros((n_slots, 4))
        for column, direction in ((0, Direction.DOWNSTREAM), (2, Direction.UPSTREAM)):
            times = stream.timestamps(direction)
            sizes = stream.payload_sizes(direction)
            if not times.size:
                continue
            indices = np.floor((times - origin) / self.slot_duration).astype(int)
            valid = (indices >= 0) & (indices < n_slots)
            indices = indices[valid]
            sizes_v = sizes[valid]
            byte_sum = np.bincount(indices, weights=sizes_v, minlength=n_slots)
            pkt_count = np.bincount(indices, minlength=n_slots)
            if direction is Direction.DOWNSTREAM:
                matrix[:, 0] = byte_sum * 8 / self.slot_duration / 1e6
                matrix[:, 1] = pkt_count / self.slot_duration
            else:
                matrix[:, 2] = byte_sum * 8 / self.slot_duration / 1e3
                matrix[:, 3] = pkt_count / self.slot_duration
        return matrix

    def relative_matrix(self, raw: np.ndarray, causal: bool = True) -> np.ndarray:
        """Convert raw attributes to fractions of the (running) peak.

        Parameters
        ----------
        causal:
            When ``True`` (default, matching the real-time system) each slot
            is normalised by the peak observed in slots up to and including
            itself; when ``False`` the whole-session peak is used.
        """
        if raw.ndim != 2 or raw.shape[1] != 4:
            raise ValueError(f"raw matrix must have 4 columns, got shape {raw.shape}")
        if causal:
            peaks = np.maximum.accumulate(raw, axis=0)
        else:
            peaks = np.tile(raw.max(axis=0), (raw.shape[0], 1))
        session_peak = raw.max(axis=0)
        floor = self.peak_floor_fraction * session_peak
        peaks = np.maximum(peaks, floor[None, :])
        peaks = np.where(peaks <= 0, 1.0, peaks)
        return np.clip(raw / peaks, 0.0, 1.0)

    def smooth(self, relative: np.ndarray) -> np.ndarray:
        """Apply the EMA of Equation 1 column-wise."""
        smoothed = np.empty_like(relative)
        for column in range(relative.shape[1]):
            smoothed[:, column] = exponential_moving_average(
                relative[:, column], self.alpha
            )
        return smoothed

    def transform(
        self,
        stream: PacketStream,
        duration: Optional[float] = None,
        origin: Optional[float] = None,
        causal: bool = True,
    ) -> np.ndarray:
        """Full offline pipeline: raw -> relative -> EMA-smoothed attributes."""
        raw = self.raw_slot_matrix(stream, duration=duration, origin=origin)
        return self.smooth(self.relative_matrix(raw, causal=causal))

    def transform_many(
        self, streams: Sequence[PacketStream], causal: bool = True
    ) -> List[np.ndarray]:
        """Batched :meth:`transform` over a corpus of sessions.

        Per-slot counting stays per session (one pair of ``bincount`` calls
        each), but the EMA recurrences of all sessions advance in lockstep on
        one zero-padded ``(n_sessions, max_slots, 4)`` stack.  Smoothing is
        elementwise per session, so each returned ``(n_slots_i, 4)`` matrix
        is bit-identical to its per-session :meth:`transform`.
        """
        if not streams:
            return []
        return self.smooth_many(
            [
                self.relative_matrix(self.raw_slot_matrix(stream), causal=causal)
                for stream in streams
            ]
        )

    def smooth_many(self, relatives: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Apply :meth:`smooth` to many sessions' relative matrices at once.

        The EMA recurrences of all sessions advance in lockstep on one
        zero-padded ``(n_sessions, max_slots, 4)`` stack; each returned
        matrix is bit-identical to its per-session :meth:`smooth`.
        """
        if not relatives:
            return []
        lengths = [matrix.shape[0] for matrix in relatives]
        max_length = max(lengths)
        if max_length == 0:
            return [matrix.copy() for matrix in relatives]
        stacked = np.zeros((len(relatives), max_length, 4))
        for index, matrix in enumerate(relatives):
            stacked[index, : matrix.shape[0]] = matrix
        # smooth along the slot axis for all sessions and columns at once
        smoothed = exponential_moving_average(
            stacked.transpose(0, 2, 1), self.alpha
        ).transpose(0, 2, 1)
        return [smoothed[index, :length] for index, length in enumerate(lengths)]

    def slots(
        self,
        stream: PacketStream,
        duration: Optional[float] = None,
        origin: Optional[float] = None,
    ) -> List[VolumetricSlot]:
        """Per-slot records combining raw and processed attributes."""
        raw = self.raw_slot_matrix(stream, duration=duration, origin=origin)
        processed = self.smooth(self.relative_matrix(raw))
        return [
            VolumetricSlot(
                slot_index=index,
                down_throughput_mbps=float(raw[index, 0]),
                down_packet_rate=float(raw[index, 1]),
                up_throughput_kbps=float(raw[index, 2]),
                up_packet_rate=float(raw[index, 3]),
                relative=processed[index],
            )
            for index in range(raw.shape[0])
        ]


class OnlineVolumetricTracker:
    """Streaming (slot-by-slot) version of the attribute generator.

    The real-time pipeline feeds one slot of raw counters at a time; the
    tracker maintains running peaks and the EMA state.
    """

    def __init__(self, alpha: float = 0.5, peak_floor: float = 1e-6) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.peak_floor = peak_floor
        self._peaks = np.full(4, peak_floor)
        self._ema: Optional[np.ndarray] = None

    def update(self, raw_slot: Sequence[float]) -> np.ndarray:
        """Consume one slot of raw attributes and return smoothed relatives."""
        raw = np.asarray(raw_slot, dtype=float)
        if raw.shape != (4,):
            raise ValueError(f"raw_slot must have 4 values, got shape {raw.shape}")
        self._peaks = np.maximum(self._peaks, raw)
        relative = np.clip(raw / np.where(self._peaks <= 0, 1.0, self._peaks), 0.0, 1.0)
        if self._ema is None:
            self._ema = relative
        else:
            self._ema = self.alpha * relative + (1.0 - self.alpha) * self._ema
        return self._ema.copy()

    def reset(self) -> None:
        """Clear peaks and EMA state (e.g. at the start of a new session)."""
        self._peaks = np.full(4, self.peak_floor)
        self._ema = None

    def snapshot(self) -> dict:
        """Copy of the carried state (peaks + EMA) as a plain dict."""
        return {
            "alpha": self.alpha,
            "peak_floor": self.peak_floor,
            "peaks": self._peaks.copy(),
            "ema": None if self._ema is None else self._ema.copy(),
        }

    def restore(self, snapshot: dict) -> None:
        """Adopt a :meth:`snapshot`; subsequent updates continue bit-identically."""
        self.alpha = snapshot["alpha"]
        self.peak_floor = snapshot["peak_floor"]
        self._peaks = snapshot["peaks"].copy()
        ema = snapshot["ema"]
        self._ema = None if ema is None else ema.copy()
