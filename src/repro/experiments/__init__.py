"""Experiment runners regenerating every table and figure of the paper.

Each ``run_*`` function returns plain Python data structures (dicts/lists of
rows or series) shaped like the corresponding table or figure, and has a
``quick`` flag selecting a reduced workload suitable for CI; the benchmark
suite under ``benchmarks/`` wraps these runners one-to-one.

Index (see DESIGN.md for the full mapping):

* Table 1/2 and Figures 11–13 (deployment-scale): :mod:`repro.experiments.deployment`
* Figures 3–5 (traffic characterisation): :mod:`repro.experiments.characterization`
* Figures 8, 9, 14 and Table 3 (game-title classification):
  :mod:`repro.experiments.title_classification`
* Figures 10, 15 and Tables 4, 5 (activity stage / pattern classification):
  :mod:`repro.experiments.activity_classification`
"""

from repro.experiments.activity_classification import (
    run_fig10_stage_parameter_sweep,
    run_fig15_pattern_model_tuning,
    run_table4_stage_pattern_accuracy,
    run_table5_transition_importance,
)
from repro.experiments.characterization import (
    run_fig03_launch_groups,
    run_fig04_volumetric_timeseries,
    run_fig05_stage_transitions,
)
from repro.experiments.deployment import (
    run_deployment_validation,
    run_fig11_stage_durations,
    run_fig12_bandwidth_demands,
    run_fig13_effective_qoe,
    run_table1_catalog,
    run_table2_lab_dataset,
)
from repro.experiments.title_classification import (
    run_fig08_window_sweep,
    run_fig09_feature_importance,
    run_fig14_title_model_tuning,
    run_table3_title_accuracy,
)

__all__ = [
    "run_table1_catalog",
    "run_table2_lab_dataset",
    "run_fig03_launch_groups",
    "run_fig04_volumetric_timeseries",
    "run_fig05_stage_transitions",
    "run_fig08_window_sweep",
    "run_fig09_feature_importance",
    "run_table3_title_accuracy",
    "run_fig14_title_model_tuning",
    "run_fig10_stage_parameter_sweep",
    "run_table4_stage_pattern_accuracy",
    "run_table5_transition_importance",
    "run_fig15_pattern_model_tuning",
    "run_fig11_stage_durations",
    "run_fig12_bandwidth_demands",
    "run_fig13_effective_qoe",
    "run_deployment_validation",
]
