"""Experiments for player-activity stage and gameplay-pattern classification
(Fig. 10, Fig. 15, Table 4, Table 5)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.activity_classifier import PlayerActivityClassifier
from repro.core.pattern_classifier import GameplayPatternClassifier
from repro.core.transition import TRANSITION_FEATURE_NAMES, transition_features_from_stages
from repro.experiments import common
from repro.ml.forest import RandomForestClassifier
from repro.ml.importance import permutation_importance
from repro.ml.knn import KNeighborsClassifier
from repro.ml.model_selection import grid_search
from repro.ml.svm import SVMClassifier
from repro.simulation.catalog import ActivityPattern


def _stage_eval(
    sessions,
    slot_duration: float,
    alpha: float,
    quick: bool,
    seed: int,
) -> Dict[str, float]:
    """Train/test per-slot stage accuracy for one (I, alpha) configuration."""
    train_sessions, test_sessions = common.session_split(sessions, seed=seed)
    classifier = PlayerActivityClassifier(
        slot_duration=slot_duration,
        alpha=alpha,
        model=RandomForestClassifier(
            n_estimators=40 if quick else 150, max_depth=10, random_state=seed % 10_000
        ),
    )
    classifier.fit(
        [session.packets for session in train_sessions],
        [session.slot_ground_truth(slot_duration) for session in train_sessions],
    )
    evaluation = classifier.evaluate(
        [session.packets for session in test_sessions],
        [session.slot_ground_truth(slot_duration) for session in test_sessions],
    )
    row = {stage.value: acc for stage, acc in evaluation["per_stage"].items()}
    row["overall"] = evaluation["overall"]
    return row


def run_fig10_stage_parameter_sweep(
    quick: bool = True,
    seed: int = common.DEFAULT_SEED,
    alphas: Optional[Sequence[float]] = None,
    slot_durations: Optional[Sequence[float]] = None,
) -> Dict:
    """Fig. 10: stage accuracy vs EMA weight alpha and slot size I."""
    if alphas is None:
        alphas = (0.2, 0.5, 0.8) if quick else tuple(np.round(np.arange(0.1, 1.01, 0.1), 1))
    if slot_durations is None:
        slot_durations = (1.0,) if quick else (0.1, 0.5, 1.0, 2.0)
    corpus = common.gameplay_corpus(quick=quick, seed=seed)
    results: Dict[float, Dict[float, Dict[str, float]]] = {}
    for slot in slot_durations:
        results[float(slot)] = {}
        for alpha in alphas:
            results[float(slot)][float(alpha)] = _stage_eval(
                corpus.sessions, float(slot), float(alpha), quick, seed
            )
    return {
        "accuracy": results,
        "alphas": list(map(float, alphas)),
        "slot_durations": list(map(float, slot_durations)),
    }


def run_table4_stage_pattern_accuracy(
    quick: bool = True, seed: int = common.DEFAULT_SEED
) -> Dict:
    """Table 4: per-stage slot accuracy and per-session pattern accuracy,
    reported separately for continuous-play and spectate-and-play games."""
    corpus = common.gameplay_corpus(quick=quick, seed=seed)
    train_sessions, test_sessions = common.session_split(corpus.sessions, seed=seed)

    stage_classifier = PlayerActivityClassifier(
        model=RandomForestClassifier(
            n_estimators=60 if quick else 150, max_depth=10, random_state=seed % 10_000
        )
    )
    stage_classifier.fit(
        [session.packets for session in train_sessions],
        [session.slot_ground_truth(1.0) for session in train_sessions],
    )

    pattern_classifier = GameplayPatternClassifier(
        model=RandomForestClassifier(
            n_estimators=60 if quick else 100, max_depth=10, random_state=seed % 10_000
        )
    )
    # train on the stage sequences produced by the stage classifier itself so
    # that the pattern model sees the same classification noise it will face
    # in the deployed cascade
    pattern_classifier.fit_stage_sequences(
        [stage_classifier.predict_slots(session.packets) for session in train_sessions],
        [session.pattern for session in train_sessions],
    )

    output: Dict[str, Dict[str, float]] = {}
    for pattern in ActivityPattern:
        sessions = [s for s in test_sessions if s.pattern is pattern]
        if not sessions:
            continue
        stage_eval = stage_classifier.evaluate(
            [s.packets for s in sessions],
            [s.slot_ground_truth(1.0) for s in sessions],
        )
        # per-session pattern accuracy from *classified* stage sequences,
        # mirroring the deployed cascade of the two processes
        correct = 0
        for session in sessions:
            predicted_stages = stage_classifier.predict_slots(session.packets)
            prediction = pattern_classifier.predict_stages(predicted_stages)
            predicted = prediction.pattern
            if predicted is None:
                features = pattern_classifier.features_from_stages(predicted_stages)
                proba = pattern_classifier.model.predict_proba(features.reshape(1, -1))[0]
                predicted = ActivityPattern(
                    str(pattern_classifier.model.classes_[int(np.argmax(proba))])
                )
            correct += predicted is session.pattern
        output[pattern.value] = {
            "pattern_accuracy": correct / len(sessions),
            "stage_accuracy": {
                stage.value: acc for stage, acc in stage_eval["per_stage"].items()
            },
            "overall_stage_accuracy": stage_eval["overall"],
            "sessions": len(sessions),
        }
    return output


def run_table5_transition_importance(
    quick: bool = True, seed: int = common.DEFAULT_SEED
) -> Dict:
    """Table 5: permutation importance of the nine transition attributes."""
    corpus = common.gameplay_corpus(quick=quick, seed=seed)
    X = np.stack(
        [
            transition_features_from_stages(session.slot_ground_truth(1.0))
            for session in corpus.sessions
        ]
    )
    y = np.array([session.pattern.value for session in corpus.sessions])
    model = RandomForestClassifier(
        n_estimators=60 if quick else 100, max_depth=10, random_state=seed % 10_000
    )
    model.fit(X, y)
    result = permutation_importance(
        model,
        X,
        y,
        n_repeats=5 if quick else 10,
        random_state=seed,
        feature_names=TRANSITION_FEATURE_NAMES,
    )
    importances = result.as_dict()
    matrix = {}
    for name, value in importances.items():
        src, dst = name.split("_to_")
        matrix.setdefault(src, {})[dst] = value
    best = max(importances, key=importances.get)
    return {
        "importances": importances,
        "matrix": matrix,
        "most_important": best,
        "baseline_accuracy": result.baseline_score,
    }


def run_fig15_pattern_model_tuning(
    quick: bool = True, seed: int = common.DEFAULT_SEED
) -> Dict:
    """Fig. 15: RF / SVM / KNN tuning for gameplay-pattern classification."""
    corpus = common.gameplay_corpus(quick=quick, seed=seed)
    X = np.stack(
        [
            transition_features_from_stages(session.slot_ground_truth(1.0))
            for session in corpus.sessions
        ]
    )
    y = np.array([session.pattern.value for session in corpus.sessions])
    cv = 3

    if quick:
        rf_grid = {"n_estimators": [50, 100], "max_depth": [5, 10]}
        svm_grid = {"C": [1.0, 10.0], "kernel": ["linear", "rbf"]}
        knn_grid = {"n_neighbors": [3, 5], "metric": ["euclidean", "manhattan"]}
    else:
        rf_grid = {"n_estimators": [50, 100, 300, 500], "max_depth": [5, 10, 30, None]}
        svm_grid = {"C": [0.1, 1.0, 10.0, 100.0], "kernel": ["linear", "rbf", "poly"]}
        knn_grid = {
            "n_neighbors": [3, 5, 7, 11],
            "metric": ["euclidean", "manhattan", "chebyshev"],
        }

    rf_result = grid_search(
        lambda **p: RandomForestClassifier(random_state=seed % 10_000, **p),
        rf_grid, X, y, cv=cv, random_state=seed,
    )
    svm_result = grid_search(
        lambda **p: SVMClassifier(max_iter=20, random_state=seed % 10_000, **p),
        svm_grid, X, y, cv=cv, random_state=seed,
    )
    knn_result = grid_search(
        lambda **p: KNeighborsClassifier(**p), knn_grid, X, y, cv=cv, random_state=seed
    )
    return {
        "random_forest": {
            "best_params": rf_result.best_params,
            "best_accuracy": rf_result.best_score,
            "grid": rf_result.results,
        },
        "svm": {
            "best_params": svm_result.best_params,
            "best_accuracy": svm_result.best_score,
            "grid": svm_result.results,
        },
        "knn": {
            "best_params": knn_result.best_params,
            "best_accuracy": knn_result.best_score,
            "grid": knn_result.results,
        },
        "ranking": sorted(
            [
                ("random_forest", rf_result.best_score),
                ("svm", svm_result.best_score),
                ("knn", knn_result.best_score),
            ],
            key=lambda item: item[1],
            reverse=True,
        ),
    }
