"""Experiments for the traffic-characterisation figures (Fig. 3, 4, 5)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.characterization import (
    launch_group_scatter,
    session_volumetric_timeseries,
    stage_transition_statistics,
)
from repro.experiments import common
from repro.simulation.catalog import PlayerStage
from repro.simulation.devices import Resolution, StreamingSettings
from repro.simulation.session import SessionConfig, SessionGenerator


def run_fig03_launch_groups(quick: bool = True, seed: int = common.DEFAULT_SEED) -> Dict:
    """Fig. 3: launch-stage packet-group scatter for representative sessions.

    Regenerates the four panels: Genshin Impact under three different device
    and streaming settings plus Fortnite, each labeled into full/steady/
    sparse groups over the first 60 seconds.  The result reports, per panel,
    the per-group packet counts and payload-size ranges, plus a cross-panel
    similarity check: the share of launch seconds whose dominant group
    matches between the Genshin panels (same title, different settings)
    versus between Genshin and Fortnite (different titles).
    """
    generator = SessionGenerator(random_state=seed)
    config = SessionConfig(
        launch_only=True, rate_scale=0.2 if quick else 0.6, gameplay_duration_s=1.0
    )
    panels = {
        "genshin_windows_fhd60": ("Genshin Impact", StreamingSettings(Resolution.FHD, 60)),
        "genshin_android_fhd60": ("Genshin Impact", StreamingSettings(Resolution.FHD, 60)),
        "genshin_windows_hd30": ("Genshin Impact", StreamingSettings(Resolution.HD, 30)),
        "fortnite_windows_fhd60": ("Fortnite", StreamingSettings(Resolution.FHD, 60)),
    }
    result: Dict[str, Dict] = {"panels": {}}
    signatures = {}
    for name, (title, settings) in panels.items():
        session = generator.generate(title, config=config, settings=settings)
        scatter = launch_group_scatter(session, window_seconds=60.0)
        panel = {}
        for group, data in scatter.items():
            sizes = data["sizes"]
            panel[group] = {
                "packets": int(sizes.size),
                "min_size": float(sizes.min()) if sizes.size else 0.0,
                "max_size": float(sizes.max()) if sizes.size else 0.0,
            }
        result["panels"][name] = panel
        # per-second steady-band centre as a coarse fingerprint signature
        signature = np.zeros(60)
        steady = scatter["steady"]
        if steady["times"].size:
            seconds = np.clip(steady["times"].astype(int), 0, 59)
            for second in np.unique(seconds):
                signature[second] = float(np.median(steady["sizes"][seconds == second]))
        signatures[name] = signature

    def similarity(a: np.ndarray, b: np.ndarray) -> float:
        active = (a > 0) | (b > 0)
        if not active.any():
            return 1.0
        close = np.isclose(a[active], b[active], rtol=0.25, atol=40.0)
        return float(np.mean(close))

    result["same_title_similarity"] = similarity(
        signatures["genshin_windows_fhd60"], signatures["genshin_windows_hd30"]
    )
    result["cross_title_similarity"] = similarity(
        signatures["genshin_windows_fhd60"], signatures["fortnite_windows_fhd60"]
    )
    return result


def run_fig04_volumetric_timeseries(
    quick: bool = True, seed: int = common.DEFAULT_SEED
) -> Dict:
    """Fig. 4: per-stage throughput time series for representative sessions.

    Regenerates the four panels (Overwatch HD, Overwatch UHD, CS:GO UHD,
    Cyberpunk UHD) and summarises, per panel and per stage, the mean
    downstream Mbps and upstream Kbps — the quantity whose *relative* levels
    drive the activity classifier.
    """
    generator = SessionGenerator(random_state=seed + 1)
    duration = 180.0 if quick else 320.0
    scale = 0.05 if quick else 0.3
    panels = {
        "overwatch_hd": ("Overwatch 2", StreamingSettings(Resolution.HD, 60)),
        "overwatch_uhd": ("Overwatch 2", StreamingSettings(Resolution.UHD, 60)),
        "csgo_uhd": ("CS:GO/CS2", StreamingSettings(Resolution.UHD, 60)),
        "cyberpunk_uhd": ("Cyberpunk 2077", StreamingSettings(Resolution.UHD, 60)),
    }
    result: Dict[str, Dict] = {}
    for name, (title, settings) in panels.items():
        session = generator.generate(
            title,
            config=SessionConfig(gameplay_duration_s=duration, rate_scale=scale),
            settings=settings,
        )
        series = session_volumetric_timeseries(session)
        per_stage: Dict[str, Dict[str, float]] = {}
        for stage in PlayerStage:
            mask = series["stage"] == stage.value
            if not mask.any():
                continue
            per_stage[stage.value] = {
                "mean_down_mbps": float(series["down_mbps"][mask].mean()),
                "mean_up_kbps": float(series["up_kbps"][mask].mean()),
                "slots": int(mask.sum()),
            }
        result[name] = {
            "per_stage": per_stage,
            "duration_s": float(session.duration),
            "n_slots": int(len(series["down_mbps"])),
        }
    return result


def run_fig05_stage_transitions(
    quick: bool = True, seed: int = common.DEFAULT_SEED
) -> Dict:
    """Fig. 5: stage playtime shares and transition probabilities per pattern."""
    corpus = common.gameplay_corpus(quick=quick, seed=seed)
    stats = stage_transition_statistics(corpus.sessions)
    return {
        pattern.value: {
            "stage_fractions": {
                stage.value: fraction
                for stage, fraction in data["stage_fractions"].items()
            },
            "transition_matrix": data["transition_matrix"].tolist(),
            "stage_order": list(data["stage_order"]),
            "n_sessions": data["n_sessions"],
        }
        for pattern, data in stats.items()
    }
