"""Shared corpora and helpers for the experiment runners.

The experiment functions repeatedly need three inputs: a launch-window
corpus for title classification, a gameplay corpus with per-slot stage
labels, and a pool of ISP-scale session records.  Building them is the
expensive part, so this module caches each corpus per (quick, seed)
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.activity_classifier import PlayerActivityClassifier
from repro.core.features import launch_features, volumetric_launch_features
from repro.core.packet_groups import PacketGroupLabeler
from repro.simulation.augmentation import augment_session
from repro.simulation.catalog import GAME_TITLES, PlayerStage
from repro.simulation.isp import ISPDeploymentSimulator, SessionRecord
from repro.simulation.lab_dataset import LabDataset, generate_lab_dataset
from repro.simulation.session import GameSession

#: Default seeds so repeated calls within one process reuse cached corpora.
DEFAULT_SEED = 20251

#: Title subset of the runtime/scenario deployment corpus (mixed activity
#: patterns); also the corpus behind the test suite's ``fitted_pipeline``.
SCENARIO_TITLE_NAMES = (
    "Fortnite",
    "Overwatch 2",
    "Hearthstone",
    "Genshin Impact",
    "Cyberpunk 2077",
    "Baldur's Gate 3",
)

#: Quick-mode workload sizes (used by tests and default benchmark runs).
QUICK = {
    "launch_sessions_per_title": 5,
    "launch_rate_scale": 0.12,
    "launch_augment_copies": 1,
    "gameplay_sessions_per_title": 3,
    "gameplay_duration_s": 220.0,
    "gameplay_rate_scale": 0.05,
    "isp_records": 4000,
}

#: Full-mode workload sizes (closer to the paper's corpus sizes).
FULL = {
    "launch_sessions_per_title": 12,
    "launch_rate_scale": 0.25,
    "launch_augment_copies": 2,
    "gameplay_sessions_per_title": 6,
    "gameplay_duration_s": 420.0,
    "gameplay_rate_scale": 0.08,
    "isp_records": 60000,
}


def workload(quick: bool) -> Dict[str, float]:
    """Return the workload configuration for quick or full mode."""
    return dict(QUICK if quick else FULL)


# --------------------------------------------------------------------------
# corpora
# --------------------------------------------------------------------------
@lru_cache(maxsize=4)
def launch_corpus(quick: bool = True, seed: int = DEFAULT_SEED) -> LabDataset:
    """Launch-only session corpus used by the title-classification experiments.

    Sessions contain the full launch animation (up to ~60 s) so that the
    Fig. 8 window sweep can evaluate windows up to 60 seconds.
    """
    params = workload(quick)
    dataset = generate_lab_dataset(
        sessions_per_title=int(params["launch_sessions_per_title"]),
        launch_only=True,
        rate_scale=float(params["launch_rate_scale"]),
        random_state=seed,
    )
    copies = int(params["launch_augment_copies"])
    if copies:
        rng = np.random.default_rng(seed + 1)
        augmented = [
            augment_session(session, rng=rng)
            for session in dataset.sessions
            for _ in range(copies)
        ]
        dataset = LabDataset(sessions=list(dataset.sessions) + augmented)
    return dataset


@lru_cache(maxsize=4)
def gameplay_corpus(quick: bool = True, seed: int = DEFAULT_SEED) -> LabDataset:
    """Full-session corpus with gameplay stages for the activity experiments."""
    params = workload(quick)
    return generate_lab_dataset(
        sessions_per_title=int(params["gameplay_sessions_per_title"]),
        gameplay_duration_s=float(params["gameplay_duration_s"]),
        rate_scale=float(params["gameplay_rate_scale"]),
        random_state=seed + 2,
    )


@lru_cache(maxsize=4)
def isp_records(quick: bool = True, seed: int = DEFAULT_SEED) -> Tuple[SessionRecord, ...]:
    """ISP-scale session records for the §5 deployment experiments."""
    params = workload(quick)
    simulator = ISPDeploymentSimulator(random_state=seed + 3)
    return tuple(simulator.generate_records(int(params["isp_records"])))


@lru_cache(maxsize=8)
def deployment_corpus(
    sessions_per_title: int = 8,
    gameplay_duration_s: float = 150.0,
    rate_scale: float = 0.05,
    seed: int = 13,
    title_names: Optional[Tuple[str, ...]] = None,
    launch_only: bool = False,
) -> Tuple[GameSession, ...]:
    """One process-wide cache for every deployment-shaped session corpus.

    Keyed on the full generation signature so the runtime test fixtures
    (``tests/conftest.py``), the runtime benchmarks
    (``benchmarks/conftest.py``) and the scenario matrix all share a single
    simulation per distinct corpus instead of each rebuilding its own.
    ``title_names`` filters the catalog *in ``GAME_TITLES`` order* — the
    same session streams ``generate_lab_dataset`` emits for an equivalently
    filtered title list, so cached corpora are bit-identical to the
    historical direct calls.
    """
    titles = (
        None
        if title_names is None
        else [t for t in GAME_TITLES if t.name in set(title_names)]
    )
    return tuple(
        generate_lab_dataset(
            sessions_per_title=sessions_per_title,
            titles=titles,
            gameplay_duration_s=gameplay_duration_s,
            rate_scale=rate_scale,
            launch_only=launch_only,
            random_state=seed,
        ).sessions
    )


@lru_cache(maxsize=2)
def scenario_pipeline():
    """The fitted deployment-configuration pipeline shared by runtime tests
    and the scenario matrix.

    Identical (bit-for-bit) to the test suite's historical
    ``fitted_pipeline`` fixture: ``random_state=11``, the title forest
    trimmed to 60 trees, fitted on the 6-title × 2-session gameplay corpus
    (seed 13).  Every scenario-matrix number is measured with this model, so
    the committed matrix and the in-process tests can never disagree about
    which classifier they describe.
    """
    from repro.core.pipeline import ContextClassificationPipeline

    corpus = deployment_corpus(
        sessions_per_title=2,
        gameplay_duration_s=150.0,
        rate_scale=0.05,
        seed=13,
        title_names=SCENARIO_TITLE_NAMES,
    )
    pipeline = ContextClassificationPipeline(random_state=11)
    pipeline.title_classifier.model.n_estimators = 60
    pipeline.fit(list(corpus))
    return pipeline


# --------------------------------------------------------------------------
# feature extraction helpers
# --------------------------------------------------------------------------
@dataclass
class TitleFeatureSet:
    """Launch features of a corpus under one (N, T) configuration."""

    X: np.ndarray
    y: np.ndarray
    feature_mode: str
    window_seconds: float
    slot_duration: float


def title_features(
    sessions: Sequence[GameSession],
    window_seconds: float = 5.0,
    slot_duration: float = 1.0,
    size_variation: float = 0.10,
    feature_mode: str = "packet-group",
    aggregate: str = "concat",
) -> TitleFeatureSet:
    """Extract launch features and title labels for a corpus.

    ``aggregate="concat"`` (default) keeps one 51-attribute block per slot,
    as in Fig. 7; ``"mean"`` averages over slots (used when a fixed set of 51
    named attributes is needed, e.g. the Fig. 9 importance analysis).
    """
    labeler = PacketGroupLabeler(
        slot_duration=slot_duration, size_variation=size_variation
    )
    rows = []
    labels = []
    for session in sessions:
        if feature_mode == "packet-group":
            rows.append(
                launch_features(
                    session.packets,
                    window_seconds=window_seconds,
                    labeler=labeler,
                    aggregate=aggregate,
                )
            )
        else:
            rows.append(
                volumetric_launch_features(
                    session.packets,
                    window_seconds=window_seconds,
                    slot_duration=slot_duration,
                )
            )
        labels.append(session.title_name)
    return TitleFeatureSet(
        X=np.stack(rows),
        y=np.array(labels),
        feature_mode=feature_mode,
        window_seconds=window_seconds,
        slot_duration=slot_duration,
    )


def stage_slot_dataset(
    sessions: Sequence[GameSession],
    slot_duration: float = 1.0,
    alpha: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray, List[List[PlayerStage]]]:
    """Per-slot volumetric features, stage labels and per-session sequences."""
    classifier = PlayerActivityClassifier(slot_duration=slot_duration, alpha=alpha)
    feature_blocks = []
    label_blocks = []
    sequences: List[List[PlayerStage]] = []
    for session in sessions:
        slot_labels = session.slot_ground_truth(slot_duration)
        sequences.append(slot_labels)
        X, y = classifier.session_features_and_labels(session.packets, slot_labels)
        if X.shape[0]:
            feature_blocks.append(X)
            label_blocks.append(y)
    if not feature_blocks:
        raise ValueError("no gameplay slots found in the corpus")
    return np.vstack(feature_blocks), np.concatenate(label_blocks), sequences


def session_split(
    sessions: Sequence[GameSession],
    test_fraction: float = 0.3,
    seed: int = DEFAULT_SEED,
) -> Tuple[List[GameSession], List[GameSession]]:
    """Split sessions into train/test partitions, stratified by title."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    by_title: Dict[str, List[GameSession]] = {}
    for session in sessions:
        by_title.setdefault(session.title_name, []).append(session)
    train: List[GameSession] = []
    test: List[GameSession] = []
    for group in by_title.values():
        indices = rng.permutation(len(group))
        n_test = max(1, int(round(test_fraction * len(group))))
        if n_test >= len(group):
            n_test = len(group) - 1
        for position, index in enumerate(indices):
            (test if position < n_test else train).append(group[index])
    return train, test


def clear_caches() -> None:
    """Drop all cached corpora (mainly for tests of the cache itself)."""
    launch_corpus.cache_clear()
    gameplay_corpus.cache_clear()
    isp_records.cache_clear()
    deployment_corpus.cache_clear()
    scenario_pipeline.cache_clear()
