"""Deployment-scale experiments (Table 1, Table 2, Fig. 11–13, §5 validation)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.bandwidth import bandwidth_by_pattern, bandwidth_by_title, bandwidth_clusters
from repro.analysis.qoe_report import (
    mislabel_correction_summary,
    qoe_levels_by_pattern,
    qoe_levels_by_title,
)
from repro.analysis.stage_durations import (
    session_duration_ranking,
    stage_minutes_by_pattern,
    stage_minutes_by_title,
)
from repro.experiments import common
from repro.simulation.catalog import GAME_TITLES, UNKNOWN_TITLE
from repro.simulation.devices import LAB_CONFIGURATIONS, total_lab_playtime_hours, total_lab_sessions
from repro.simulation.lab_dataset import generate_lab_dataset


def run_table1_catalog(quick: bool = True, seed: int = common.DEFAULT_SEED) -> Dict:
    """Table 1: the 13-title catalog with genre, pattern and popularity.

    Cross-checks that the popularity shares sum to the paper's ~69% coverage
    and reports the catalog rows in popularity order.
    """
    del quick, seed  # the catalog is a constant
    rows = [
        {
            "title": title.name,
            "genre": title.genre.value,
            "pattern": title.pattern.value,
            "popularity": title.popularity,
        }
        for title in sorted(GAME_TITLES, key=lambda t: t.popularity, reverse=True)
    ]
    return {
        "rows": rows,
        "total_popularity": float(sum(t.popularity for t in GAME_TITLES)),
        "n_titles": len(rows),
        "n_genres": len({t.genre for t in GAME_TITLES}),
    }


def run_table2_lab_dataset(quick: bool = True, seed: int = common.DEFAULT_SEED) -> Dict:
    """Table 2: lab dataset composition across device configurations.

    Generates a (scaled) lab corpus and reports sessions and playtime per
    configuration next to the paper's reference counts.
    """
    sessions_per_title = 2 if quick else 6
    dataset = generate_lab_dataset(
        sessions_per_title=sessions_per_title,
        gameplay_duration_s=120.0 if quick else 300.0,
        rate_scale=0.04 if quick else 0.1,
        random_state=seed,
    )
    generated = dataset.summary_by_configuration()
    reference = {
        key: {"sessions": entry["sessions"], "playtime_hours": entry["playtime_hours"]}
        for key, entry in LAB_CONFIGURATIONS.items()
    }
    return {
        "generated": generated,
        "reference": reference,
        "reference_totals": {
            "sessions": total_lab_sessions(),
            "playtime_hours": total_lab_playtime_hours(),
        },
        "generated_totals": {
            "sessions": len(dataset),
            "playtime_hours": dataset.total_playtime_hours(),
        },
    }


def run_fig11_stage_durations(quick: bool = True, seed: int = common.DEFAULT_SEED) -> Dict:
    """Fig. 11: average minutes per stage per title (a) and per pattern (b)."""
    records = common.isp_records(quick=quick, seed=seed)
    return {
        "by_title": stage_minutes_by_title(records),
        "by_pattern": stage_minutes_by_pattern(records),
        "duration_ranking": session_duration_ranking(records),
    }


def run_fig12_bandwidth_demands(quick: bool = True, seed: int = common.DEFAULT_SEED) -> Dict:
    """Fig. 12: session-average throughput per title (a) and per pattern (b)."""
    records = common.isp_records(quick=quick, seed=seed)
    by_title = bandwidth_by_title(records)
    clusters = {
        title: bandwidth_clusters(records, title)
        for title in ("Destiny 2", "Fortnite", "Hearthstone")
    }
    return {
        "by_title": by_title,
        "by_pattern": bandwidth_by_pattern(records),
        "example_clusters": clusters,
    }


def run_fig13_effective_qoe(quick: bool = True, seed: int = common.DEFAULT_SEED) -> Dict:
    """Fig. 13: objective vs effective QoE fractions per title and pattern."""
    records = common.isp_records(quick=quick, seed=seed)
    return {
        "by_title": qoe_levels_by_title(records),
        "by_pattern": qoe_levels_by_pattern(records),
        "correction_summary": mislabel_correction_summary(records),
    }


def run_deployment_validation(quick: bool = True, seed: int = common.DEFAULT_SEED) -> Dict:
    """§5 pre-deployment validation: classified titles vs server-log truth.

    The ISP simulator records both the ground-truth title (available offline
    from game server logs) and the classifier's real-time output; the paper
    reports an overall accuracy above 95% for the 13 popular titles.
    """
    records = common.isp_records(quick=quick, seed=seed)
    catalog_records = [r for r in records if r.title_name != UNKNOWN_TITLE]
    if not catalog_records:
        return {"overall_accuracy": float("nan"), "per_title": {}, "sessions": 0}
    per_title: Dict[str, Dict[str, float]] = {}
    for record in catalog_records:
        entry = per_title.setdefault(record.title_name, {"correct": 0.0, "total": 0.0})
        entry["total"] += 1
        entry["correct"] += float(record.classified_title == record.title_name)
    per_title_accuracy = {
        title: entry["correct"] / entry["total"] for title, entry in per_title.items()
    }
    overall = float(
        np.mean([r.classified_title == r.title_name for r in catalog_records])
    )
    return {
        "overall_accuracy": overall,
        "per_title": per_title_accuracy,
        "sessions": len(catalog_records),
    }
