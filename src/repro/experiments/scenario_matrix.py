"""The scenario validation matrix: precise + statistical checks per world.

For every registered :data:`~repro.simulation.profiles.SCENARIO_PROFILES`
entry this harness perturbs one shared deployment corpus, runs it through
offline ``process_many`` (exact and approx QoE tiers) *and* the
``StreamingEngine`` in all three session modes, and classifies every check
into two tiers (FlowTest's precise/statistical split, SNIPPETS.md Snippet 3):

**Precise** — must hold bit-exactly in every scenario, no matter how hostile:

* offline/streaming close-report equality per session mode (the runtime's
  load-bearing guarantee survives every perturbation, not just the lab one);
* event exactly-once structure (one ``SessionStarted``/``SessionReport``,
  contiguous stage slots, at most one confident pattern, strictly increasing
  QoE interval indices, final title event consistent with the report);
* cross-mode context equality (title / stage timeline / pattern identical
  between the exact and approx tiers — only QoE is allowed to be lossy);
* platform detection at physical scale (``"GeForce NOW"`` from the flow
  summary — and, just as strictly, ``None`` under VPN/QUIC re-encapsulation,
  where the port/RTP signatures *must* refuse to match).

**Statistical** — expected to degrade, asserted within per-scenario bands:

* title / stage / pattern accuracy against the unperturbed ground truth;
* frame-rate and throughput error of the scenario's QoE metrics versus the
  baseline world's;
* approx-tier frame-rate error versus the exact tier within the scenario.

The measured matrix is committed as ``SCENARIO_MATRIX.json`` (regenerate
with ``--write``); ``--check`` re-measures and gates on the committed file,
so a regression in any world — or a stale commit — fails CI.

Run ``PYTHONPATH=src python -m repro.experiments.scenario_matrix --quick``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import (
    SCENARIO_TITLE_NAMES,
    deployment_corpus,
    scenario_pipeline,
)
from repro.net.packet import DOWNSTREAM_CODE, RTP_NONE
from repro.runtime import SessionFeed, SessionReport, StreamingEngine
from repro.runtime.events import (
    PatternInferred,
    QoEInterval,
    SessionStarted,
    StageUpdate,
    TitleClassified,
    TitleReclassified,
)
from repro.runtime.state import SESSION_MODES
from repro.simulation.catalog import CATALOG, PlayerStage
from repro.simulation.profiles import SCENARIO_PROFILES, scenario_sessions
from repro.simulation.session import GameSession

MATRIX_FORMAT = "scenario-matrix/1"

#: Base seed of every scenario corpus (per-session children derive from it).
MATRIX_SEED = 977

#: Feed granularity of the streaming runs.
BATCH_SECONDS = 8.0

#: Corpus shapes (both served from the shared deployment-corpus cache).
QUICK_CORPUS = {
    "sessions_per_title": 1,
    "gameplay_duration_s": 110.0,
    "rate_scale": 0.04,
    "seed": MATRIX_SEED,
    "title_names": SCENARIO_TITLE_NAMES,
}
FULL_CORPUS = {
    "sessions_per_title": 2,
    "gameplay_duration_s": 150.0,
    "rate_scale": 0.05,
    "seed": MATRIX_SEED,
    "title_names": SCENARIO_TITLE_NAMES,
}

#: Per-scenario statistical bands: ``min`` bounds for accuracies, ``max``
#: bounds for relative errors.  These are the *contract* — chosen from
#: measured quick-matrix values with headroom, then regression-gated: a code
#: change that pushes any world outside its band fails ``--check`` (and the
#: committed report records both the value and the band it passed).
SCENARIO_BANDS: Dict[str, Dict[str, Dict[str, float]]] = {
    "baseline": {
        "title_accuracy": {"min": 0.8},
        "stage_accuracy": {"min": 0.85},
        "pattern_accuracy": {"min": 0.8},
        "frame_rate_rel_err": {"max": 0.0},
        "throughput_rel_err": {"max": 0.0},
        "approx_frame_rate_rel_err": {"max": 0.05},
    },
    "codec_h265": {
        "title_accuracy": {"min": 0.8},
        "stage_accuracy": {"min": 0.6},
        "pattern_accuracy": {"min": 0.8},
        "frame_rate_rel_err": {"max": 0.10},
        "throughput_rel_err": {"max": 0.55},
        "approx_frame_rate_rel_err": {"max": 0.05},
    },
    "codec_av1": {
        "title_accuracy": {"min": 0.8},
        "stage_accuracy": {"min": 0.5},
        "pattern_accuracy": {"min": 0.8},
        "frame_rate_rel_err": {"max": 0.10},
        "throughput_rel_err": {"max": 0.65},
        "approx_frame_rate_rel_err": {"max": 0.05},
    },
    "wifi_jitter": {
        "title_accuracy": {"min": 0.8},
        "stage_accuracy": {"min": 0.8},
        "pattern_accuracy": {"min": 0.8},
        "frame_rate_rel_err": {"max": 0.10},
        "throughput_rel_err": {"max": 0.05},
        "approx_frame_rate_rel_err": {"max": 0.05},
    },
    "cellular_handover": {
        "title_accuracy": {"min": 0.8},
        "stage_accuracy": {"min": 0.7},
        "pattern_accuracy": {"min": 0.8},
        "frame_rate_rel_err": {"max": 0.15},
        "throughput_rel_err": {"max": 0.10},
        "approx_frame_rate_rel_err": {"max": 0.10},
    },
    # Re-encapsulation shifts every payload size, so launch fingerprinting
    # collapses (title accuracy 0 is the *measured, expected* outcome — the
    # paper's classifier needs the untunneled launch signature); stage and
    # QoE, which read volume/timing rather than exact sizes, barely move.
    "vpn_quic": {
        "title_accuracy": {"min": 0.0},
        "stage_accuracy": {"min": 0.7},
        "pattern_accuracy": {"min": 0.3},
        "frame_rate_rel_err": {"max": 0.30},
        "throughput_rel_err": {"max": 0.10},
        "approx_frame_rate_rel_err": {"max": 0.05},
    },
    # The second title's traffic is attributed to the first session's
    # report, so every whole-session aggregate drifts; only loose bands
    # are meaningful here.
    "title_switch": {
        "title_accuracy": {"min": 0.8},
        "stage_accuracy": {"min": 0.35},
        "pattern_accuracy": {"min": 0.6},
        "frame_rate_rel_err": {"max": 0.35},
        "throughput_rel_err": {"max": 0.50},
        "approx_frame_rate_rel_err": {"max": 0.60},
    },
    "clock_skew": {
        "title_accuracy": {"min": 0.8},
        "stage_accuracy": {"min": 0.8},
        "pattern_accuracy": {"min": 0.8},
        "frame_rate_rel_err": {"max": 0.10},
        "throughput_rel_err": {"max": 0.05},
        "approx_frame_rate_rel_err": {"max": 0.05},
    },
}

#: Report fields compared by the precise offline/streaming equality check.
_REPORT_FIELDS = (
    "platform",
    "title",
    "stage_timeline",
    "stage_fractions",
    "pattern",
    "objective_metrics",
    "objective_qoe",
    "effective_qoe",
    "qoe_approximate",
)


# ---------------------------------------------------------------------------
# precise checks
# ---------------------------------------------------------------------------
def _reports_equal(got, expected) -> List[str]:
    """Field names on which two session context reports differ."""
    return [
        field
        for field in _REPORT_FIELDS
        if getattr(got, field) != getattr(expected, field)
    ]


def _events_exactly_once(events_by_flow: Dict) -> bool:
    """The event-stream structure contract, per flow."""
    for flow_events in events_by_flow.values():
        kinds = [type(event) for event in flow_events]
        if kinds.count(SessionStarted) != 1 or kinds.count(SessionReport) != 1:
            return False
        if kinds[0] is not SessionStarted or kinds[-1] is not SessionReport:
            return False
        slots = [e.slot_index for e in flow_events if isinstance(e, StageUpdate)]
        if slots != list(range(len(slots))):
            return False
        if sum(1 for e in flow_events if isinstance(e, PatternInferred)) > 1:
            return False
        if sum(1 for e in flow_events if isinstance(e, TitleClassified)) != 1:
            return False
        intervals = [e.interval_index for e in flow_events if isinstance(e, QoEInterval)]
        if any(b <= a for a, b in zip(intervals, intervals[1:])):
            return False
        # the last title verdict in the event stream must match the report
        titles = [
            e.prediction
            for e in flow_events
            if isinstance(e, (TitleClassified, TitleReclassified))
        ]
        if titles and titles[-1] != flow_events[-1].report.title:
            return False
    return True


def _physical_summary(session: GameSession) -> dict:
    """Flow-metadata aggregates at physical scale (rate_scale removed)."""
    columns = session.packets.columns()
    down = columns.directions == DOWNSTREAM_CODE
    total_bytes = float(columns.payload_sizes.sum())
    down_bytes = float(columns.payload_sizes[down].sum())
    duration = float(columns.timestamps[-1] - columns.timestamps[0])
    is_rtp = columns.rtp_ssrc is not None and bool(
        np.any(columns.rtp_ssrc != RTP_NONE)
    )
    server_port = 0
    if columns.addresses is not None and down.any():
        server_port = int(columns.addresses[int(np.flatnonzero(down)[0])][2])
    return {
        "duration_s": duration,
        "is_rtp": is_rtp,
        "downstream_mbps": (
            down_bytes * 8 / duration / 1e6 / session.rate_scale
            if duration > 0
            else 0.0
        ),
        "downstream_fraction": down_bytes / total_bytes if total_bytes else 0.0,
        "server_port": server_port,
    }


# ---------------------------------------------------------------------------
# statistical metrics
# ---------------------------------------------------------------------------
def _stage_accuracy(report, session: GameSession, slot_duration: float) -> float:
    truth = session.slot_ground_truth(slot_duration)
    timeline = report.stage_timeline
    n = min(len(truth), len(timeline))
    compared = [
        (truth[k], timeline[k]) for k in range(n) if truth[k] is not PlayerStage.LAUNCH
    ]
    if not compared:
        return 1.0
    return sum(1 for gt, got in compared if gt is got) / len(compared)


def _effective_pattern(report):
    if not report.title.is_unknown and report.title.title in CATALOG:
        return CATALOG[report.title.title].pattern
    return report.pattern.pattern


def _median_rel_err(values: Sequence[float], references: Sequence[float]) -> float:
    errs = [
        abs(value - reference) / reference
        for value, reference in zip(values, references)
        if reference > 0
    ]
    return float(np.median(errs)) if errs else 0.0


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------
def _serialize_profile(profile) -> dict:
    return {
        "description": profile.description,
        "layers": [
            {"type": type(layer).__name__, **dataclasses.asdict(layer)}
            for layer in profile.layers
        ],
    }


def run_matrix(
    quick: bool = True,
    profile_names: Optional[Sequence[str]] = None,
    batch_seconds: float = BATCH_SECONDS,
) -> dict:
    """Measure every scenario; return the matrix report dict."""
    pipeline = scenario_pipeline()
    corpus_params = dict(QUICK_CORPUS if quick else FULL_CORPUS)
    base = list(deployment_corpus(**corpus_params))
    base_reports = pipeline.process_many(base)
    slot_duration = pipeline.activity_classifier.slot_duration

    names = list(profile_names) if profile_names else list(SCENARIO_PROFILES)
    scenarios: Dict[str, dict] = {}
    for name in names:
        profile = SCENARIO_PROFILES[name]
        sessions = scenario_sessions(base, profile, seed=MATRIX_SEED)
        offline_exact = pipeline.process_many(sessions)
        offline_approx = pipeline.process_many(sessions, qoe_mode="approx")

        # ---- precise tier -------------------------------------------------
        equal_by_mode: Dict[str, bool] = {}
        events_ok: Dict[str, bool] = {}
        mismatches: List[str] = []
        for mode in SESSION_MODES:
            expected = offline_approx if mode == "approx" else offline_exact
            feed = SessionFeed(sessions, batch_seconds=batch_seconds)
            engine = StreamingEngine(pipeline, session_mode=mode)
            events = list(engine.run(feed))
            by_flow: Dict = {}
            for event in events:
                by_flow.setdefault(event.flow, []).append(event)
            reports = {
                event.flow.client_port: event.report
                for event in events
                if isinstance(event, SessionReport)
            }
            cell_equal = len(reports) == len(sessions)
            for index, reference in enumerate(expected):
                got = reports.get(52000 + index)
                diff = (
                    ["missing"] if got is None else _reports_equal(got, reference)
                )
                if diff:
                    cell_equal = False
                    mismatches.append(f"{name}/{mode}/session{index}: {diff}")
            equal_by_mode[mode] = cell_equal
            events_ok[mode] = _events_exactly_once(by_flow)

        context_equal = all(
            exact.title == approx.title
            and exact.stage_timeline == approx.stage_timeline
            and exact.stage_fractions == approx.stage_fractions
            and exact.pattern == approx.pattern
            for exact, approx in zip(offline_exact, offline_approx)
        )
        expected_platform = None if name == "vpn_quic" else "GeForce NOW"
        detected = pipeline.detector.classify_summary(_physical_summary(sessions[0]))
        precise = {
            "offline_streaming_equal": equal_by_mode,
            "events_exactly_once": events_ok,
            "cross_mode_context_equal": context_equal,
            "platform_detection": {
                "expected": expected_platform,
                "detected": detected,
                "pass": detected == expected_platform,
            },
        }
        precise_pass = (
            all(equal_by_mode.values())
            and all(events_ok.values())
            and context_equal
            and detected == expected_platform
        )

        # ---- statistical tier --------------------------------------------
        values = {
            "title_accuracy": sum(
                1
                for report, session in zip(offline_exact, sessions)
                if not report.title.is_unknown
                and report.title.title == session.title_name
            )
            / len(sessions),
            "stage_accuracy": float(
                np.mean(
                    [
                        _stage_accuracy(report, session, slot_duration)
                        for report, session in zip(offline_exact, sessions)
                    ]
                )
            ),
            "pattern_accuracy": sum(
                1
                for report, session in zip(offline_exact, sessions)
                if _effective_pattern(report) is session.pattern
            )
            / len(sessions),
            "frame_rate_rel_err": _median_rel_err(
                [r.objective_metrics.frame_rate for r in offline_exact],
                [r.objective_metrics.frame_rate for r in base_reports],
            ),
            "throughput_rel_err": _median_rel_err(
                [r.objective_metrics.throughput_mbps for r in offline_exact],
                [r.objective_metrics.throughput_mbps for r in base_reports],
            ),
            "approx_frame_rate_rel_err": _median_rel_err(
                [r.objective_metrics.frame_rate for r in offline_approx],
                [r.objective_metrics.frame_rate for r in offline_exact],
            ),
        }
        bands = SCENARIO_BANDS[name]
        statistical = {}
        statistical_pass = True
        for metric, value in values.items():
            band = bands[metric]
            ok = True
            if "min" in band:
                ok = ok and value >= band["min"]
            if "max" in band:
                ok = ok and value <= band["max"]
            statistical[metric] = {
                "value": round(float(value), 6),
                "band": band,
                "pass": ok,
            }
            statistical_pass = statistical_pass and ok

        scenarios[name] = {
            "profile": _serialize_profile(profile),
            "precise": precise,
            "statistical": statistical,
            "pass": precise_pass and statistical_pass,
            "mismatches": mismatches,
        }

    return {
        "format": MATRIX_FORMAT,
        "config": {
            "quick": quick,
            "seed": MATRIX_SEED,
            "batch_seconds": batch_seconds,
            "session_modes": list(SESSION_MODES),
            "n_sessions": len(base),
            "corpus": {
                key: (list(value) if isinstance(value, tuple) else value)
                for key, value in corpus_params.items()
            },
        },
        "scenarios": scenarios,
        "pass": all(entry["pass"] for entry in scenarios.values()),
    }


# ---------------------------------------------------------------------------
# regression gate
# ---------------------------------------------------------------------------
def check_against(matrix: dict, committed: dict) -> List[str]:
    """Gate a fresh matrix against the committed report; return failures."""
    failures: List[str] = []
    if committed.get("format") != MATRIX_FORMAT:
        return [f"committed format {committed.get('format')!r} != {MATRIX_FORMAT!r}"]
    fresh_names = set(matrix["scenarios"])
    committed_names = set(committed.get("scenarios", {}))
    if fresh_names != committed_names:
        failures.append(
            f"scenario set drifted: committed {sorted(committed_names)} vs "
            f"fresh {sorted(fresh_names)} — regenerate with --write"
        )
    for name, entry in matrix["scenarios"].items():
        if not entry["pass"]:
            detail = "; ".join(entry["mismatches"][:3])
            failures.append(f"{name}: fresh run failed{': ' + detail if detail else ''}")
        committed_entry = committed.get("scenarios", {}).get(name)
        if committed_entry is None:
            continue
        for metric, result in entry["statistical"].items():
            committed_metric = committed_entry.get("statistical", {}).get(metric)
            if committed_metric is None:
                failures.append(f"{name}.{metric}: missing from committed matrix")
                continue
            if committed_metric.get("band") != result["band"]:
                failures.append(
                    f"{name}.{metric}: committed band {committed_metric.get('band')} "
                    f"!= declared band {result['band']} — regenerate with --write"
                )
            value = result["value"]
            committed_value = committed_metric.get("value", value)
            if abs(value - committed_value) > max(1e-6, 1e-6 * abs(committed_value)):
                failures.append(
                    f"{name}.{metric}: measured {value} != committed "
                    f"{committed_value} — regenerate with --write"
                )
    return failures


def _print_matrix(matrix: dict) -> None:
    print(f"scenario matrix ({'quick' if matrix['config']['quick'] else 'full'}, "
          f"{matrix['config']['n_sessions']} sessions, seed {matrix['config']['seed']})")
    header = (
        f"{'scenario':<18} {'precise':<8} {'title':>6} {'stage':>6} "
        f"{'pattern':>8} {'fr_err':>7} {'tp_err':>7} {'ok':>4}"
    )
    print(header)
    print("-" * len(header))
    for name, entry in matrix["scenarios"].items():
        stats = entry["statistical"]
        precise_str = "ok" if (
            all(entry["precise"]["offline_streaming_equal"].values())
            and all(entry["precise"]["events_exactly_once"].values())
            and entry["precise"]["cross_mode_context_equal"]
            and entry["precise"]["platform_detection"]["pass"]
        ) else "FAIL"
        print(
            f"{name:<18} {precise_str:<8} "
            f"{stats['title_accuracy']['value']:>6.2f} "
            f"{stats['stage_accuracy']['value']:>6.2f} "
            f"{stats['pattern_accuracy']['value']:>8.2f} "
            f"{stats['frame_rate_rel_err']['value']:>7.3f} "
            f"{stats['throughput_rel_err']['value']:>7.3f} "
            f"{'yes' if entry['pass'] else 'NO':>4}"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small corpus (the CI / committed configuration)")
    parser.add_argument("--write", metavar="PATH", default=None,
                        help="write the measured matrix report to PATH")
    parser.add_argument("--check", metavar="PATH", default=None,
                        help="gate the fresh matrix against a committed report")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump the fresh matrix to PATH (CI artifact)")
    parser.add_argument("--scenario", action="append", default=None,
                        help="restrict to specific scenario(s)")
    args = parser.parse_args(argv)

    matrix = run_matrix(quick=args.quick, profile_names=args.scenario)
    _print_matrix(matrix)

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(matrix, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if args.write:
        with open(args.write, "w") as handle:
            json.dump(matrix, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.write}")
        return 0 if matrix["pass"] else 1
    if args.check:
        with open(args.check) as handle:
            committed = json.load(handle)
        failures = check_against(matrix, committed)
        if failures:
            print("scenario-matrix gate FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("scenario-matrix gate passed")
        return 0
    return 0 if matrix["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
