"""Experiments for game-title classification (Fig. 8, Fig. 9, Fig. 14, Table 3)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.features import PACKET_GROUP_FEATURE_NAMES
from repro.experiments import common
from repro.ml.forest import RandomForestClassifier
from repro.ml.importance import permutation_importance
from repro.ml.knn import KNeighborsClassifier
from repro.ml.metrics import accuracy_score, per_class_accuracy
from repro.ml.model_selection import StratifiedKFold, grid_search
from repro.ml.scaling import StandardScaler
from repro.ml.svm import SVMClassifier

#: Representative titles highlighted in Fig. 8.
FIG8_TITLES = (
    "Fortnite",
    "Honkai: Star Rail",
    "Rocket League",
    "Dota 2",
    "Hearthstone",
)


def _forest(quick: bool, random_state: int = 0) -> RandomForestClassifier:
    return RandomForestClassifier(
        n_estimators=60 if quick else 300, max_depth=10, random_state=random_state
    )


def _cross_validated_per_title_accuracy(
    X: np.ndarray,
    y: np.ndarray,
    model_factory,
    n_splits: int = 3,
    seed: int = 0,
) -> Dict[str, float]:
    """Per-title accuracy aggregated over stratified k-fold predictions."""
    splitter = StratifiedKFold(n_splits=n_splits, random_state=seed)
    y_true: List[str] = []
    y_pred: List[str] = []
    for train_idx, test_idx in splitter.split(X, y):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        predictions = model.predict(X[test_idx])
        y_true.extend(y[test_idx].tolist())
        y_pred.extend(predictions.tolist())
    accuracies = per_class_accuracy(np.array(y_true), np.array(y_pred))
    accuracies["__overall__"] = accuracy_score(np.array(y_true), np.array(y_pred))
    return accuracies


def run_fig08_window_sweep(
    quick: bool = True,
    seed: int = common.DEFAULT_SEED,
    windows: Optional[Sequence[float]] = None,
    slot_durations: Optional[Sequence[float]] = None,
) -> Dict:
    """Fig. 8: title accuracy vs first-N-seconds window and slot size T.

    Returns ``{slot_duration: {window: {title: accuracy, ...}}}`` for the
    five representative titles plus the mean over the remaining ones
    ("Others") and the overall accuracy.
    """
    if windows is None:
        windows = (1, 3, 5, 10, 20, 45) if quick else (1, 2, 3, 5, 7, 10, 15, 20, 30, 45, 60)
    if slot_durations is None:
        slot_durations = (0.5, 1.0) if quick else (0.1, 0.5, 1.0, 2.0)
    corpus = common.launch_corpus(quick=quick, seed=seed)
    results: Dict[float, Dict[float, Dict[str, float]]] = {}
    for slot in slot_durations:
        results[slot] = {}
        for window in windows:
            features = common.title_features(
                corpus.sessions, window_seconds=float(window), slot_duration=float(slot)
            )
            accuracies = _cross_validated_per_title_accuracy(
                features.X,
                features.y,
                lambda: _forest(quick, random_state=seed % 10_000),
                seed=seed,
            )
            row = {title: accuracies.get(title, float("nan")) for title in FIG8_TITLES}
            others = [
                value
                for title, value in accuracies.items()
                if title not in FIG8_TITLES and title != "__overall__"
            ]
            row["Others"] = float(np.mean(others)) if others else float("nan")
            row["overall"] = accuracies["__overall__"]
            results[slot][float(window)] = row
    return {"accuracy": results, "windows": list(map(float, windows)),
            "slot_durations": list(map(float, slot_durations))}


def run_table3_title_accuracy(quick: bool = True, seed: int = common.DEFAULT_SEED) -> Dict:
    """Table 3: per-title accuracy, packet-group vs flow-volumetric attributes."""
    corpus = common.launch_corpus(quick=quick, seed=seed)
    output: Dict[str, Dict[str, float]] = {}
    overall: Dict[str, float] = {}
    for mode in ("packet-group", "flow-volumetric"):
        features = common.title_features(
            corpus.sessions, window_seconds=5.0, slot_duration=1.0, feature_mode=mode
        )
        accuracies = _cross_validated_per_title_accuracy(
            features.X,
            features.y,
            lambda: _forest(quick, random_state=seed % 10_000),
            seed=seed,
        )
        overall[mode] = accuracies.pop("__overall__")
        for title, accuracy in accuracies.items():
            output.setdefault(title, {})[mode] = accuracy
    return {"per_title": output, "overall": overall}


def run_fig09_feature_importance(
    quick: bool = True, seed: int = common.DEFAULT_SEED
) -> Dict:
    """Fig. 9: permutation importance of the 51 launch attributes."""
    corpus = common.launch_corpus(quick=quick, seed=seed)
    features = common.title_features(
        corpus.sessions, window_seconds=5.0, slot_duration=1.0, aggregate="mean"
    )
    model = _forest(quick, random_state=seed % 10_000)
    model.fit(features.X, features.y)
    result = permutation_importance(
        model,
        features.X,
        features.y,
        n_repeats=3 if quick else 8,
        random_state=seed,
        feature_names=PACKET_GROUP_FEATURE_NAMES,
    )
    importances = result.as_dict()
    zero_importance = [name for name, value in importances.items() if value <= 0.0]
    return {
        "importances": importances,
        "baseline_accuracy": result.baseline_score,
        "n_zero_importance": len(zero_importance),
        "zero_importance": zero_importance,
        "top10": result.ranked()[:10],
    }


def run_fig14_title_model_tuning(
    quick: bool = True, seed: int = common.DEFAULT_SEED
) -> Dict:
    """Fig. 14: RF / SVM / KNN hyperparameter tuning for title classification.

    Sweeps the same hyperparameters as the paper (trees x depth for RF,
    C x kernel for SVM, neighbours x metric for KNN) with cross-validated
    accuracy, and reports each model family's best configuration.
    """
    corpus = common.launch_corpus(quick=quick, seed=seed)
    features = common.title_features(corpus.sessions, window_seconds=5.0, slot_duration=1.0)
    scaler = StandardScaler()
    X_scaled = scaler.fit_transform(features.X)
    y = features.y
    cv = 3

    if quick:
        rf_grid = {"n_estimators": [50, 150], "max_depth": [5, 10]}
        svm_grid = {"C": [1.0, 10.0], "kernel": ["linear", "rbf"]}
        knn_grid = {"n_neighbors": [3, 7], "metric": ["euclidean", "manhattan"]}
    else:
        rf_grid = {"n_estimators": [50, 100, 300, 500], "max_depth": [5, 10, 30, None]}
        svm_grid = {"C": [0.1, 1.0, 10.0, 100.0], "kernel": ["linear", "rbf", "poly"]}
        knn_grid = {
            "n_neighbors": [3, 5, 7, 11, 15],
            "metric": ["euclidean", "manhattan", "chebyshev"],
        }

    rf_result = grid_search(
        lambda **p: RandomForestClassifier(random_state=seed % 10_000, **p),
        rf_grid, features.X, y, cv=cv, random_state=seed,
    )
    svm_result = grid_search(
        lambda **p: SVMClassifier(max_iter=15 if quick else 40, random_state=seed % 10_000, **p),
        svm_grid, X_scaled, y, cv=cv, random_state=seed,
    )
    knn_result = grid_search(
        lambda **p: KNeighborsClassifier(**p),
        knn_grid, X_scaled, y, cv=cv, random_state=seed,
    )
    return {
        "random_forest": {
            "best_params": rf_result.best_params,
            "best_accuracy": rf_result.best_score,
            "grid": rf_result.results,
        },
        "svm": {
            "best_params": svm_result.best_params,
            "best_accuracy": svm_result.best_score,
            "grid": svm_result.results,
        },
        "knn": {
            "best_params": knn_result.best_params,
            "best_accuracy": knn_result.best_score,
            "grid": knn_result.results,
        },
        "ranking": sorted(
            [
                ("random_forest", rf_result.best_score),
                ("svm", svm_result.best_score),
                ("knn", knn_result.best_score),
            ],
            key=lambda item: item[1],
            reverse=True,
        ),
    }
