"""Numpy-only machine-learning substrate used by the classification pipeline.

The paper tunes three classical models (Random Forest, SVM and KNN) for its
two classification tasks (game title, gameplay activity pattern) plus a third
model for player activity stages.  scikit-learn is not available in this
environment, so this subpackage implements the required algorithms and
utilities from scratch on top of numpy:

* :mod:`repro.ml.tree` — CART decision tree classifier.
* :mod:`repro.ml.forest` — bootstrap-aggregated random forest.
* :mod:`repro.ml.kernel` — compiled single-pass forest inference kernel
  (bit-identical probabilities, optional numba backend).
* :mod:`repro.ml.svm` — one-vs-rest kernel SVM trained with a simplified SMO.
* :mod:`repro.ml.knn` — k-nearest-neighbour classifier.
* :mod:`repro.ml.scaling` — standard/min-max feature scalers.
* :mod:`repro.ml.model_selection` — train/test split, stratified k-fold,
  cross-validation and grid search.
* :mod:`repro.ml.metrics` — accuracy, per-class accuracy/recall, precision,
  F1 and confusion matrices.
* :mod:`repro.ml.importance` — permutation feature importance (Fig. 9 and
  Table 5 of the paper).
"""

from repro.ml.base import BaseClassifier, check_Xy
from repro.ml.forest import RandomForestClassifier
from repro.ml.importance import permutation_importance
from repro.ml.kernel import ForestKernel, available_backends
from repro.ml.knn import KNeighborsClassifier
from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    per_class_accuracy,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import (
    GridSearchResult,
    StratifiedKFold,
    cross_val_score,
    grid_search,
    train_test_split,
)
from repro.ml.scaling import MinMaxScaler, StandardScaler
from repro.ml.svm import SVMClassifier
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "BaseClassifier",
    "check_Xy",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "ForestKernel",
    "available_backends",
    "SVMClassifier",
    "KNeighborsClassifier",
    "StandardScaler",
    "MinMaxScaler",
    "train_test_split",
    "StratifiedKFold",
    "cross_val_score",
    "grid_search",
    "GridSearchResult",
    "accuracy_score",
    "per_class_accuracy",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "classification_report",
    "permutation_importance",
]
