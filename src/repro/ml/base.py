"""Shared classifier interface and input validation helpers."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_Xy(X, y=None):
    """Validate and coerce a feature matrix (and optional label vector).

    Parameters
    ----------
    X:
        Two-dimensional array-like of shape ``(n_samples, n_features)``.
    y:
        Optional one-dimensional array-like of labels with ``n_samples``
        entries.  Labels may be strings or integers.

    Returns
    -------
    tuple
        ``(X, y)`` as numpy arrays (``y`` is ``None`` when not supplied).

    Raises
    ------
    ValueError
        If shapes are inconsistent, the matrix is empty, or values are not
        finite.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise ValueError(f"X must be non-empty, got shape {X.shape}")
    if not np.isfinite(X).all():
        raise ValueError("X contains NaN or infinite values")
    if y is None:
        return X, None
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-dimensional, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} samples but y has {y.shape[0]} labels"
        )
    return X, y


class BaseClassifier:
    """Minimal scikit-learn-like classifier interface.

    Subclasses implement :meth:`fit` and :meth:`predict_proba`; this base
    class provides :meth:`predict`, :meth:`score`, class bookkeeping and
    parameter introspection used by the grid-search utilities.
    """

    #: populated by :meth:`_store_classes` during ``fit``
    classes_: np.ndarray

    def fit(self, X, y):  # pragma: no cover - interface
        raise NotImplementedError

    def predict_proba(self, X) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def _store_classes(self, y: np.ndarray) -> np.ndarray:
        """Record sorted unique classes and return integer-encoded labels."""
        self.classes_, encoded = np.unique(y, return_inverse=True)
        return encoded

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )

    def predict(self, X) -> np.ndarray:
        """Return the most probable class for every row of ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        """Return mean accuracy of ``predict(X)`` against ``y``."""
        X, y = check_Xy(X, y)
        return float(np.mean(self.predict(X) == y))

    def get_params(self) -> dict:
        """Return constructor parameters (attributes without underscores)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.endswith("_") and not key.startswith("_")
        }

    def confidence(self, X) -> np.ndarray:
        """Return the probability of the predicted class per sample."""
        proba = self.predict_proba(X)
        return proba.max(axis=1)


def validate_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def validate_fraction(value: float, name: str, *, inclusive: bool = False) -> float:
    """Validate that ``value`` lies in ``(0, 1)`` (or ``[0, 1]``)."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be within [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be within (0, 1), got {value}")
    return value


def encode_labels(y: Sequence, classes: np.ndarray) -> np.ndarray:
    """Encode labels ``y`` as indices into ``classes``.

    Raises
    ------
    ValueError
        If ``y`` contains a label not present in ``classes``.
    """
    y = np.asarray(y)
    lookup = {label: index for index, label in enumerate(classes.tolist())}
    try:
        return np.array([lookup[label] for label in y.tolist()], dtype=int)
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"unknown label {exc.args[0]!r}") from exc
