"""Random-forest classifier (bagged CART ensemble).

The paper selects a random forest for both of its classification tasks: game
title classification (500 trees, max depth 10 in deployment) and gameplay
activity pattern inference (100 trees, max depth 10).  This implementation
supports the hyperparameters tuned in Fig. 14/15 (number of trees and maximum
tree depth) plus bootstrap sampling and out-of-bag scoring.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseClassifier, check_Xy, validate_positive_int
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(BaseClassifier):
    """Ensemble of CART trees trained on bootstrap samples.

    Parameters
    ----------
    n_estimators:
        Number of trees in the forest.
    max_depth:
        Maximum depth of every tree (``None`` means unlimited).
    min_samples_split, min_samples_leaf:
        Forwarded to each :class:`~repro.ml.tree.DecisionTreeClassifier`.
    max_features:
        Per-split feature subsample; defaults to ``"sqrt"`` as is standard
        for classification forests.
    bootstrap:
        When ``True`` (default) each tree is trained on a bootstrap resample
        of the data; when ``False`` every tree sees all rows.
    oob_score:
        When ``True`` compute the out-of-bag accuracy after fitting
        (available as ``oob_score_``).
    random_state:
        Seed controlling bootstrap resampling and per-tree feature sampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        oob_score: bool = False,
        random_state: Optional[int] = None,
    ) -> None:
        validate_positive_int(n_estimators, "n_estimators")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        encoded = self._store_classes(y)
        n_samples, n_features = X.shape
        self.n_features_ = n_features
        rng = np.random.default_rng(self.random_state)

        self.estimators_ = []
        n_classes = len(self.classes_)
        oob_votes = np.zeros((n_samples, n_classes)) if self.oob_score else None

        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
            else:
                indices = np.arange(n_samples)
            tree.fit(X[indices], self.classes_[encoded[indices]])
            self.estimators_.append(tree)

            if self.oob_score and self.bootstrap:
                mask = np.ones(n_samples, dtype=bool)
                mask[np.unique(indices)] = False
                if mask.any():
                    oob_votes[mask] += self._align_proba(tree, X[mask])

        self.feature_importances_ = np.mean(
            [self._align_importances(tree) for tree in self.estimators_], axis=0
        )

        if self.oob_score:
            covered = oob_votes.sum(axis=1) > 0
            if covered.any():
                oob_pred = np.argmax(oob_votes[covered], axis=1)
                self.oob_score_ = float(np.mean(oob_pred == encoded[covered]))
            else:
                self.oob_score_ = float("nan")
        return self

    def _align_proba(self, tree: DecisionTreeClassifier, X: np.ndarray) -> np.ndarray:
        """Map a tree's probability columns onto the forest's class order."""
        proba = tree.predict_proba(X)
        aligned = np.zeros((X.shape[0], len(self.classes_)))
        forest_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        for tree_col, label in enumerate(tree.classes_.tolist()):
            aligned[:, forest_index[label]] = proba[:, tree_col]
        return aligned

    def _align_importances(self, tree: DecisionTreeClassifier) -> np.ndarray:
        return tree.feature_importances_

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_Xy(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        total = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            total += self._align_proba(tree, X)
        return total / len(self.estimators_)
