"""Random-forest classifier (bagged CART ensemble).

The paper selects a random forest for both of its classification tasks: game
title classification (500 trees, max depth 10 in deployment) and gameplay
activity pattern inference (100 trees, max depth 10).  This implementation
supports the hyperparameters tuned in Fig. 14/15 (number of trees and maximum
tree depth) plus bootstrap sampling and out-of-bag scoring.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseClassifier, check_Xy, validate_positive_int
from repro.ml.kernel import ForestKernel
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(BaseClassifier):
    """Ensemble of CART trees trained on bootstrap samples.

    Parameters
    ----------
    n_estimators:
        Number of trees in the forest.
    max_depth:
        Maximum depth of every tree (``None`` means unlimited).
    min_samples_split, min_samples_leaf:
        Forwarded to each :class:`~repro.ml.tree.DecisionTreeClassifier`.
    max_features:
        Per-split feature subsample; defaults to ``"sqrt"`` as is standard
        for classification forests.
    bootstrap:
        When ``True`` (default) each tree is trained on a bootstrap resample
        of the data; when ``False`` every tree sees all rows.
    oob_score:
        When ``True`` compute the out-of-bag accuracy after fitting
        (available as ``oob_score_``).
    random_state:
        Seed controlling bootstrap resampling and per-tree feature sampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        oob_score: bool = False,
        random_state: Optional[int] = None,
    ) -> None:
        validate_positive_int(n_estimators, "n_estimators")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state
        self._forest_flat = None
        self._kernel = None
        self._estimators = None
        self._state_arrays = None

    # ------------------------------------------------------------ estimators
    @property
    def estimators_(self):
        """The fitted per-tree estimators (materialised lazily after load).

        A forest restored with :meth:`from_state` predicts from its flat
        arrays alone — tree objects are only rebuilt if something actually
        asks for them (per-tree inspection, the legacy single-row walk),
        keeping the model-loading cold path free of per-node Python work.
        """
        if self._estimators is None:
            if self._state_arrays is None:
                raise AttributeError(
                    "estimators_ is not set; the forest is not fitted"
                )
            self._estimators = self._materialize_estimators()
        return self._estimators

    @estimators_.setter
    def estimators_(self, value) -> None:
        self._estimators = value

    def _materialize_estimators(self):
        """Rebuild tree objects from the stored :meth:`export_state` arrays."""
        arrays = self._state_arrays
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        tree_params = {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }
        tree_importances = np.asarray(arrays["tree_importances"], dtype=float)
        estimators = []
        for index in range(offsets.size - 1):
            span = slice(int(offsets[index]), int(offsets[index + 1]))
            estimators.append(
                DecisionTreeClassifier.from_arrays(
                    arrays["feature"][span],
                    arrays["threshold"][span],
                    arrays["left"][span],
                    arrays["right"][span],
                    arrays["proba"][span],
                    self.classes_,
                    self.n_features_,
                    feature_importances=tree_importances[index],
                    **tree_params,
                )
            )
        return estimators

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        encoded = self._store_classes(y)
        n_samples, n_features = X.shape
        self.n_features_ = n_features
        rng = np.random.default_rng(self.random_state)

        self.estimators_ = []
        n_classes = len(self.classes_)
        oob_votes = np.zeros((n_samples, n_classes)) if self.oob_score else None

        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
            else:
                indices = np.arange(n_samples)
            tree.fit(X[indices], self.classes_[encoded[indices]])
            self.estimators_.append(tree)

            if self.oob_score and self.bootstrap:
                mask = np.ones(n_samples, dtype=bool)
                mask[np.unique(indices)] = False
                if mask.any():
                    oob_votes[mask] += self._align_proba(tree, X[mask])

        self.feature_importances_ = np.mean(
            [self._align_importances(tree) for tree in self.estimators_], axis=0
        )

        if self.oob_score:
            covered = oob_votes.sum(axis=1) > 0
            if covered.any():
                oob_pred = np.argmax(oob_votes[covered], axis=1)
                self.oob_score_ = float(np.mean(oob_pred == encoded[covered]))
            else:
                self.oob_score_ = float("nan")
        self._forest_flat = None
        self._kernel = None
        self._state_arrays = None
        return self

    def _align_proba(self, tree: DecisionTreeClassifier, X: np.ndarray) -> np.ndarray:
        """Map a tree's probability columns onto the forest's class order."""
        proba = tree.predict_proba(X)
        if tree.classes_.shape == self.classes_.shape and np.array_equal(
            tree.classes_, self.classes_
        ):
            # bootstrap sample saw every class: columns already line up
            return proba
        aligned = np.zeros((X.shape[0], len(self.classes_)))
        forest_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        for tree_col, label in enumerate(tree.classes_.tolist()):
            aligned[:, forest_index[label]] = proba[:, tree_col]
        return aligned

    def _align_importances(self, tree: DecisionTreeClassifier) -> np.ndarray:
        return tree.feature_importances_

    def _flatten_forest(self):
        """Concatenate every tree's flat node arrays for whole-forest traversal.

        Node indices are offset per tree so one set of
        ``(feature, threshold, left, right, proba)`` arrays describes the
        whole ensemble; leaf probability rows are pre-aligned to the forest's
        class order.  Returns those arrays plus the per-tree root indices and
        the maximum tree depth (the number of traversal iterations needed).
        """
        features, thresholds, rights, probas, roots = [], [], [], [], []
        offset = 0
        n_classes = len(self.classes_)
        forest_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        max_depth = 0
        for tree in self.estimators_:
            if tree._flat is None:
                tree._flat = tree._flatten()
            feature, threshold, left, right, proba = tree._flat
            del left  # preorder guarantees left child == index + 1
            if not np.array_equal(tree.classes_, self.classes_):
                aligned = np.zeros((proba.shape[0], n_classes))
                for tree_col, label in enumerate(tree.classes_.tolist()):
                    aligned[:, forest_index[label]] = proba[:, tree_col]
                proba = aligned
            # leaves: feature 0 / threshold -inf makes the left test always
            # false (check_Xy rejects non-finite X before traversal), so
            # they self-route through `right`
            leaf = feature < 0
            features.append(np.where(leaf, 0, feature))
            thresholds.append(np.where(leaf, -np.inf, threshold))
            rights.append(right + offset)
            probas.append(proba)
            roots.append(offset)
            offset += feature.size
            max_depth = max(max_depth, tree.depth())
        # int32 node/feature indices halve the memory traffic of the
        # per-level gathers (node counts are far below 2**31)
        return (
            np.concatenate(features).astype(np.int32),
            np.concatenate(thresholds),
            np.concatenate(rights).astype(np.int32),
            np.vstack(probas),
            np.asarray(roots, dtype=np.int32),
            max_depth,
        )

    def _flatten_from_state(self):
        """Build the traversal arena straight from :meth:`export_state` arrays.

        Vectorised counterpart of :meth:`_flatten_forest` for restored
        forests: child indices shift by per-tree offsets, leaves flip to
        the self-routing ``feature 0 / -inf`` convention, and the maximum
        depth falls out of a frontier walk over the level sets (the same
        walk the kernel's BFS re-layout performs) — no tree objects, no
        per-node Python.
        """
        arrays = self._state_arrays
        feature = np.asarray(arrays["feature"], dtype=np.int64)
        threshold = np.asarray(arrays["threshold"], dtype=float)
        right = np.asarray(arrays["right"], dtype=np.int64)
        proba = np.asarray(arrays["proba"], dtype=float)
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        leaf = feature < 0
        shift = np.repeat(offsets[:-1], np.diff(offsets))
        arena_threshold = np.where(leaf, -np.inf, threshold)
        arena_right = (right + shift).astype(np.int32)
        roots = offsets[:-1].astype(np.int32)
        internal = ~leaf
        frontier = offsets[:-1]
        max_depth = 0
        while frontier.size:
            is_internal = internal[frontier]
            parents = frontier[is_internal]
            if not parents.size:
                break
            frontier = np.concatenate((parents + 1, right[parents] + shift[parents]))
            max_depth += 1
        return (
            np.where(leaf, 0, feature).astype(np.int32),
            arena_threshold,
            arena_right,
            proba,
            roots,
            max_depth,
        )

    def _ensure_flat(self):
        """The cached whole-forest arena, built from whichever source exists."""
        if self._forest_flat is None:
            if self._estimators is not None:
                self._forest_flat = self._flatten_forest()
            else:
                self._forest_flat = self._flatten_from_state()
        return self._forest_flat

    @property
    def kernel(self) -> ForestKernel:
        """The compiled inference kernel (built lazily, cached until refit)."""
        self._check_fitted()
        if self._kernel is None:
            self._kernel = ForestKernel.from_forest(self)
        return self._kernel

    # --------------------------------------------------------- persistence
    def export_state(self) -> dict:
        """Serialisable node arrays of the whole fitted ensemble.

        Every tree's preorder arrays are concatenated (child indices stay
        tree-local; ``offsets`` delimits trees) and leaf probability rows are
        pre-aligned to the forest's class order, so the state is a handful of
        dense numpy arrays that drop straight into ``np.savez``.  Class
        labels themselves are not included — the caller persists them
        alongside (they may be strings).
        """
        self._check_fitted()
        if self._state_arrays is not None:
            # restored forest: the stored arrays ARE the state (round-trips
            # byte-identically without materialising any tree objects)
            return dict(self._state_arrays)
        n_classes = len(self.classes_)
        forest_index = {label: i for i, label in enumerate(self.classes_.tolist())}
        features, thresholds, lefts, rights, probas, importances = [], [], [], [], [], []
        offsets = [0]
        for tree in self.estimators_:
            arrays = tree.export_arrays()
            proba = arrays["proba"]
            if not np.array_equal(tree.classes_, self.classes_):
                aligned = np.zeros((proba.shape[0], n_classes))
                for tree_col, label in enumerate(tree.classes_.tolist()):
                    aligned[:, forest_index[label]] = proba[:, tree_col]
                proba = aligned
            features.append(arrays["feature"])
            thresholds.append(arrays["threshold"])
            lefts.append(arrays["left"])
            rights.append(arrays["right"])
            probas.append(proba)
            importances.append(tree.feature_importances_)
            offsets.append(offsets[-1] + arrays["feature"].size)
        return {
            "feature": np.concatenate(features),
            "threshold": np.concatenate(thresholds),
            "left": np.concatenate(lefts),
            "right": np.concatenate(rights),
            "proba": np.vstack(probas),
            "offsets": np.asarray(offsets, dtype=np.int64),
            "tree_importances": np.vstack(importances),
            "forest_importances": np.asarray(self.feature_importances_, dtype=float),
        }

    @classmethod
    def from_state(
        cls, arrays: dict, classes, n_features: int, params: Optional[dict] = None
    ) -> "RandomForestClassifier":
        """Rebuild a fitted forest from :meth:`export_state` arrays.

        Predictions are bit-identical to the exported forest's on every
        path: the whole-forest arena (and the compiled kernel) is built
        straight from the stored arrays — the same concatenated layout the
        original flattens to — and per-tree estimator objects are only
        materialised lazily if something asks for ``estimators_``.  The
        model-loading cold path therefore costs a few vectorised array
        passes instead of one Python ``_Node`` per node.  Training-only
        diagnostics (per-tree bootstrap RNG state, OOB score) are not
        restored.
        """
        params = dict(params or {})
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        n_trees = offsets.size - 1
        params.setdefault("n_estimators", n_trees)
        forest = cls(**params)
        forest.n_estimators = n_trees
        forest.classes_ = np.asarray(classes)
        forest.n_features_ = int(n_features)
        forest.feature_importances_ = np.asarray(
            arrays["forest_importances"], dtype=float
        )
        forest._state_arrays = {
            key: np.asarray(value) for key, value in arrays.items()
        }
        return forest

    #: target cell count of one traversal block: the (rows, trees) index
    #: matrix and its per-level gathers stay cache-resident instead of
    #: streaming through memory on corpus-scale inputs (~2x on 20k rows)
    _TRAVERSAL_BLOCK_CELLS = 65536

    def predict_proba(self, X) -> np.ndarray:
        """Mean class probabilities over all trees.

        Inference runs on the compiled :class:`~repro.ml.kernel.
        ForestKernel` (rank-quantized level-packed decision tables): the
        kernel's probabilities are **bit-identical** to the reference
        per-level traversal — which remains available as
        :meth:`predict_proba_legacy` and pins the equivalence in
        ``tests/test_forest_kernel.py`` and the ``forest_kernel`` bench.
        """
        self._check_fitted()
        return self.kernel.predict_proba(X)

    def predict_proba_legacy(self, X) -> np.ndarray:
        """Reference traversal: mean class probabilities without the kernel.

        Multi-row inputs traverse the whole flattened forest level-by-level:
        an ``(n_rows, n_trees)`` node-index matrix descends all trees of all
        rows with one vectorised comparison per level (leaves self-loop, so
        ``max_depth`` iterations settle every row).  Rows are processed in
        cache-sized blocks — each row's traversal is independent, so
        blocking cannot change a result — and per-tree contributions are
        accumulated in tree order, making the result bit-identical to the
        sequential per-tree loop that single-row calls take here (and to
        the compiled kernel :meth:`predict_proba` runs on).
        """
        self._check_fitted()
        X, _ = check_Xy(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        n_rows = X.shape[0]
        total = np.zeros((n_rows, len(self.classes_)))
        if n_rows == 1:
            for tree in self.estimators_:
                total += self._align_proba(tree, X)
            return total / len(self.estimators_)
        feature, threshold, right, proba, roots, max_depth = self._ensure_flat()
        n_trees = roots.size
        block = max(128, self._TRAVERSAL_BLOCK_CELLS // max(1, n_trees))
        n_features = X.shape[1]
        for start in range(0, n_rows, block):
            sub = X[start : start + block]
            m = sub.shape[0]
            current = np.broadcast_to(roots, (m, n_trees)).copy()
            row_base = (np.arange(m, dtype=np.int32) * n_features)[:, None]
            for _ in range(max_depth):
                # internal nodes: descend left (next preorder index) when
                # the split test passes, else to the stored right child.
                # Leaves carry a -inf threshold and self-looping right, so
                # they stay put without per-level settling bookkeeping.
                go_left = sub.take(feature.take(current) + row_base) <= threshold.take(
                    current
                )
                current = np.where(go_left, current + 1, right.take(current))
            block_total = total[start : start + block]
            for tree_index in range(n_trees):
                block_total += proba[current[:, tree_index]]
        return total / n_trees
