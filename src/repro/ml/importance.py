"""Permutation feature importance.

The paper quantifies attribute relevance with permutation importance
(Breiman 2001): the drop in model accuracy when one attribute's values are
randomly shuffled.  Fig. 9 applies it to the 51 launch-stage attributes of
the game-title classifier and Table 5 to the nine stage-transition attributes
of the gameplay-activity-pattern classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.ml.base import check_Xy
from repro.ml.metrics import accuracy_score


@dataclass
class PermutationImportanceResult:
    """Per-feature mean/std importance plus the baseline score."""

    importances_mean: np.ndarray
    importances_std: np.ndarray
    baseline_score: float
    feature_names: Optional[Sequence[str]] = None

    def ranked(self) -> list[tuple[str, float]]:
        """Return ``(feature, importance)`` pairs sorted by importance."""
        names = (
            list(self.feature_names)
            if self.feature_names is not None
            else [f"feature_{i}" for i in range(len(self.importances_mean))]
        )
        pairs = list(zip(names, self.importances_mean.tolist()))
        return sorted(pairs, key=lambda item: item[1], reverse=True)

    def as_dict(self) -> dict[str, float]:
        """Return a ``{feature: mean importance}`` mapping."""
        return dict(self.ranked())


def permutation_importance(
    model,
    X,
    y,
    n_repeats: int = 5,
    random_state: Optional[int] = None,
    scorer: Callable = accuracy_score,
    feature_names: Optional[Sequence[str]] = None,
) -> PermutationImportanceResult:
    """Compute permutation importance of every feature of a fitted model.

    Parameters
    ----------
    model:
        A fitted classifier exposing ``predict``.
    n_repeats:
        Number of independent shuffles per feature.

    Returns
    -------
    PermutationImportanceResult
        The drop in score (``baseline - permuted``) per feature; values at or
        below zero indicate no predictive power, matching the paper's
        observation that eight of the 51 title attributes have importance 0.
    """
    X, y = check_Xy(X, y)
    if n_repeats <= 0:
        raise ValueError(f"n_repeats must be positive, got {n_repeats}")
    if feature_names is not None and len(feature_names) != X.shape[1]:
        raise ValueError(
            f"feature_names has {len(feature_names)} entries for {X.shape[1]} features"
        )
    rng = np.random.default_rng(random_state)
    baseline = scorer(y, model.predict(X))

    n_features = X.shape[1]
    drops = np.zeros((n_features, n_repeats))
    for feature in range(n_features):
        for repeat in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, feature] = rng.permutation(shuffled[:, feature])
            drops[feature, repeat] = baseline - scorer(y, model.predict(shuffled))

    return PermutationImportanceResult(
        importances_mean=drops.mean(axis=1),
        importances_std=drops.std(axis=1),
        baseline_score=float(baseline),
        feature_names=feature_names,
    )
