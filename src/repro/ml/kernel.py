"""Single-kernel compiled forest inference (bit-identical, ~3x faster).

A fitted :class:`~repro.ml.forest.RandomForestClassifier` predicts by
walking every tree level-synchronously over one concatenated node arena.
That traversal gathers from three parallel float64/int32 arrays per level
and re-derives the same comparisons on every call.  :class:`ForestKernel`
compiles the fitted ensemble **once** into a fused structure that answers
the same ``predict_proba`` contract with bit-identical probabilities:

* **rank quantization** — per feature ``j``, the sorted unique split
  thresholds ``S_j`` of the whole forest are extracted at compile time.
  For any sample value ``x`` and threshold ``t ∈ S_j``,
  ``x <= t  ⇔  searchsorted(S_j, x, 'left') <= searchsorted(S_j, t,
  'left')`` — an exact integer equivalence, so traversal never touches a
  float again.  Ranks and packed node words fit int16 for every realistic
  forest, quartering the memory traffic of the per-level gathers;
* **level-packed decision tables** — the arena is re-laid out
  breadth-first with *pass-through chains* padding shallow leaves, so
  depth ``d`` of every tree lives in one contiguous int16 table whose
  entries pack ``(threshold_rank << fbits) | feature``.  Children of slot
  ``i`` are adjacent (``lchild[i]`` and ``lchild[i] + 1``), collapsing the
  legacy ``where(go_left, cur + 1, right.take(cur))`` select into a single
  integer add.  A leaf/chain slot packs the sentinel ``kmax << fbits``
  (feature 0, rank bound ``kmax``): every rank is ``<= kmax``, so the
  test always routes left and the slot self-propagates to depth ``D``,
  where ``leafmap`` resolves the surviving slot to its probability row;
* **rank-space memoization** — rows with equal rank vectors traverse
  every tree identically, so low-dimensional batches (the stage/pattern
  forests see 4- and 9-feature matrices) deduplicate via ``np.unique``
  before traversal and scatter the unique results back;
* **adaptive accumulation** — the per-tree probability sum uses the fused
  3-D ``np.add.reduce(proba[leaves], axis=1)`` for small outputs and the
  full-width per-tree loop for large ones.  Both orders add the same
  floats in the same per-element sequence (the 3-D reduce over a strided
  axis is sequential, never pairwise), so the choice affects time only.

Every optimisation is exact, which the equivalence suite
(``tests/test_forest_kernel.py``) and the ``forest_kernel`` bench section
pin by asserting byte-equal outputs against the legacy traversal on
randomized and real fitted forests.

Backends
--------
The default backend is pure numpy and always available.  Setting
``REPRO_FOREST_BACKEND=numba`` (or passing ``backend="numba"``) selects an
optional `numba`_-jitted per-row arena walker instead — the same
sequential float comparisons the legacy single-row path performs, so its
outputs are bit-identical too.  Numba is **not** a dependency: when it is
missing, an explicit ``backend="numba"`` raises ``ImportError`` while the
environment variable falls back to numpy with a warning (a deployment
knob must not brick hosts without the optional package).

.. _numba: https://numba.pydata.org/
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

import numpy as np

from repro.ml.base import check_Xy

__all__ = ["ForestKernel", "BACKEND_ENV", "available_backends"]

#: environment variable selecting the default inference backend
BACKEND_ENV = "REPRO_FOREST_BACKEND"

_BACKENDS = ("numpy", "numba")

try:  # optional accelerator: never a hard dependency
    import numba as _numba
except ImportError:  # pragma: no cover - exercised on hosts without numba
    _numba = None

#: cache of the jitted walker (compiled once per process, not per kernel)
_NUMBA_WALKER = None


def available_backends() -> tuple:
    """The backends this host can actually run (``numpy`` always)."""
    return _BACKENDS if _numba is not None else ("numpy",)


def _resolve_backend(backend: Optional[str]) -> str:
    """Pick the backend: explicit argument beats the environment variable.

    An explicit ``"numba"`` without numba installed is an error; the same
    request via :data:`BACKEND_ENV` degrades to numpy with a warning so a
    fleet-wide environment default cannot break hosts missing the
    optional package.
    """
    explicit = backend is not None
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "").strip().lower() or "numpy"
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown forest backend {backend!r}; expected one of {_BACKENDS}"
        )
    if backend == "numba" and _numba is None:
        if explicit:
            raise ImportError(
                "backend='numba' requested but numba is not installed"
            )
        warnings.warn(
            f"{BACKEND_ENV}=numba but numba is not installed; "
            "falling back to the numpy backend",
            RuntimeWarning,
            stacklevel=3,
        )
        backend = "numpy"
    return backend


def _numba_walker():
    """Compile (once) the jitted per-row/per-tree arena walker."""
    global _NUMBA_WALKER
    if _NUMBA_WALKER is None:
        @_numba.njit(cache=False, fastmath=False)
        def walk(feature, threshold, right, proba, roots, X, out):
            n_rows = X.shape[0]
            n_trees = roots.shape[0]
            n_classes = proba.shape[1]
            for i in range(n_rows):
                for t in range(n_trees):
                    node = roots[t]
                    # leaves carry -inf thresholds (real splits are finite)
                    while threshold[node] != -np.inf:
                        if X[i, feature[node]] <= threshold[node]:
                            node = node + 1
                        else:
                            node = right[node]
                    for c in range(n_classes):
                        out[i, c] += proba[node, c]

        _NUMBA_WALKER = walk
    return _NUMBA_WALKER


class ForestKernel:
    """Fused inference structure compiled from one fitted forest.

    Construction takes the forest-flat arena (the
    :meth:`RandomForestClassifier._flatten_forest` layout: preorder nodes,
    left child at ``index + 1``, leaves self-routing through ``right``
    with ``-inf`` thresholds and forest-aligned probability rows) and
    compiles the rank tables and BFS level layout described in the module
    docstring.  :meth:`predict_proba` then serves the exact
    ``predict_proba`` contract of the source forest — same validation
    errors, bit-identical probabilities — at a fraction of the cost.

    Use :meth:`from_forest` for a fitted estimator or :meth:`from_arrays`
    to build straight from :meth:`RandomForestClassifier.export_state`
    arrays (the ``pipeline.npz`` layout) without materialising any tree
    objects — the model-loading cold path.
    """

    #: attempt rank-space dedup only inside this row range: below it the
    #: unique() overhead cannot pay, above it the lexsort dominates the
    #: traversal it would save (the big matrices are near-unique anyway)
    DEDUP_MIN_ROWS = 64
    DEDUP_MAX_ROWS = 4096
    #: ... and only for low-dimensional forests, where equal rank vectors
    #: are actually likely (the 255-feature title matrix never collides)
    DEDUP_MAX_FEATURES = 32
    #: output cells (rows x trees x classes) below which the fused 3-D
    #: reduce beats the full-width per-tree accumulation loop
    FUSED_ACCUM_MAX_CELLS = 262144
    #: traversal block target (rows x trees cells): keeps the per-level
    #: gather working set cache-resident on corpus-scale inputs
    BLOCK_CELLS = 65536
    #: rank-matrix cells (rows x features x kmax) below which one fused
    #: broadcast comparison beats per-feature searchsorted calls (the
    #: single-row real-time path: 255 tiny searchsorted calls otherwise)
    BCAST_RANK_MAX_CELLS = 65536

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        right: np.ndarray,
        proba: np.ndarray,
        roots: np.ndarray,
        classes: np.ndarray,
        n_features: int,
        backend: Optional[str] = None,
    ) -> None:
        self.classes_ = np.asarray(classes)
        self.n_features = int(n_features)
        self.n_trees = int(roots.size)
        self.n_classes = int(proba.shape[1])
        self.backend = _resolve_backend(backend)
        # the preorder arena is kept as-is: the numba backend walks it
        # directly, and it is the layout digests/serialisation hash
        self._feature = np.ascontiguousarray(feature, dtype=np.int32)
        self._threshold = np.ascontiguousarray(threshold, dtype=float)
        self._right = np.ascontiguousarray(right, dtype=np.int32)
        self.proba = np.ascontiguousarray(proba, dtype=float)
        self._roots = np.ascontiguousarray(roots, dtype=np.int32)
        self._compile()

    # ------------------------------------------------------------ compile
    def _compile(self) -> None:
        feature, threshold, right = self._feature, self._threshold, self._right
        internal = threshold != -np.inf
        n_features = self.n_features

        # per-feature sorted unique thresholds + per-node rank positions
        cuts = []
        tpos = np.zeros(feature.size, dtype=np.int64)
        for j in range(n_features):
            mask = internal & (feature == j)
            unique_cuts = np.unique(threshold[mask])
            cuts.append(unique_cuts)
            if mask.any():
                tpos[mask] = np.searchsorted(
                    unique_cuts, threshold[mask], side="left"
                )
        self._cuts = cuts
        kmax = max((c.size for c in cuts), default=0)
        self._kmax = kmax
        pad = np.full((n_features, max(1, kmax)), np.inf)
        for j, unique_cuts in enumerate(cuts):
            pad[j, : unique_cuts.size] = unique_cuts
        self._cuts_pad = pad

        fbits = max(1, int(np.ceil(np.log2(max(2, n_features)))))
        # leaf/chain sentinel: feature 0 with rank bound kmax — every rank
        # is <= kmax, so the slot always routes left (self-propagates)
        sentinel = kmax << fbits
        pdtype = (
            np.int16
            if (kmax << fbits) | (n_features - 1) < 2**15
            else np.int32
        )
        self._fbits, self._fmask, self._pdtype = fbits, (1 << fbits) - 1, pdtype

        # BFS re-layout with pass-through chains: iterate level frontiers
        # until every slot is a leaf; depth falls out of the loop count
        packed_levels, lchild_levels = [], []
        frontier = self._roots.astype(np.int64)
        while internal[frontier].any():
            is_internal = internal[frontier]
            n_children = np.where(is_internal, 2, 1)
            child_pos = np.concatenate(([0], np.cumsum(n_children)))[:-1]
            packed_levels.append(
                np.where(
                    is_internal,
                    (tpos[frontier] << fbits) | feature[frontier],
                    sentinel,
                ).astype(pdtype)
            )
            # children adjacent: gather stays intp end-to-end (np.take
            # converts any other index dtype on every call)
            lchild_levels.append(child_pos.astype(np.intp))
            nxt = np.empty(int(n_children.sum()), dtype=np.int64)
            nxt[child_pos[is_internal]] = frontier[is_internal] + 1
            nxt[child_pos[is_internal] + 1] = right[frontier[is_internal]]
            nxt[child_pos[~is_internal]] = frontier[~is_internal]
            frontier = nxt
        self._packed = packed_levels
        self._lchild = lchild_levels
        self._leafmap = frontier  # depth-D slot -> probability row
        self.depth = len(packed_levels)
        self._root_slots = np.arange(self.n_trees, dtype=np.intp)

    # ------------------------------------------------------- constructors
    @classmethod
    def from_forest(cls, forest, backend: Optional[str] = None) -> "ForestKernel":
        """Compile a fitted :class:`RandomForestClassifier`."""
        feature, threshold, right, proba, roots, _depth = forest._ensure_flat()
        return cls(
            feature,
            threshold,
            right,
            proba,
            roots,
            forest.classes_,
            forest.n_features_,
            backend=backend,
        )

    @classmethod
    def from_arrays(
        cls,
        arrays: dict,
        classes,
        n_features: int,
        backend: Optional[str] = None,
    ) -> "ForestKernel":
        """Compile straight from :meth:`RandomForestClassifier.export_state`.

        ``arrays`` uses the persistence layout: concatenated preorder node
        arrays with tree-local child indices, ``-1`` features on leaves and
        ``offsets`` delimiting trees.  The arena conversion is a handful of
        vectorised passes — no tree objects are materialised, which is what
        makes ``load_pipeline`` cold starts cheap.
        """
        feature = np.asarray(arrays["feature"], dtype=np.int64)
        threshold = np.asarray(arrays["threshold"], dtype=float)
        right = np.asarray(arrays["right"], dtype=np.int64)
        proba = np.asarray(arrays["proba"], dtype=float)
        offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        leaf = feature < 0
        shift = np.repeat(offsets[:-1], np.diff(offsets))
        return cls(
            np.where(leaf, 0, feature),
            np.where(leaf, -np.inf, threshold),
            right + shift,  # leaves self-index locally, so they stay self-routing
            proba,
            offsets[:-1],
            classes,
            n_features,
            backend=backend,
        )

    # ------------------------------------------------------------ ranking
    def _rank(self, X: np.ndarray) -> np.ndarray:
        n_rows, n_features = X.shape
        if n_rows * n_features * max(1, self._kmax) <= self.BCAST_RANK_MAX_CELLS:
            # rank = #{cut < x}; +inf padding never counts for finite x
            return np.add.reduce(
                self._cuts_pad[None, :, :] < X[:, :, None], axis=2
            ).astype(self._pdtype)
        ranks = np.empty(X.shape, dtype=self._pdtype)
        for j in range(n_features):
            ranks[:, j] = np.searchsorted(self._cuts[j], X[:, j], side="left")
        return ranks

    # ---------------------------------------------------------- traversal
    def _traverse(self, ranks: np.ndarray) -> np.ndarray:
        """Leaf probability-row ids, shape ``(n_rows, n_trees)``."""
        n_rows, n_features = ranks.shape
        n_trees = self.n_trees
        out = np.empty((n_rows, n_trees), dtype=np.intp)
        block = max(64, self.BLOCK_CELLS // max(1, n_trees))
        if self._pdtype == np.int16:
            # row_base = row * n_features must stay inside int16
            block = min(block, (2**15 - 1) // max(1, n_features))
        for start in range(0, n_rows, block):
            sub = ranks[start : start + block]
            m = sub.shape[0]
            rank_flat = sub.ravel()
            row_base = (np.arange(m, dtype=self._pdtype) * n_features)[:, None]
            cur = np.broadcast_to(self._root_slots, (m, n_trees)).astype(np.intp)
            for depth in range(self.depth):
                packed = self._packed[depth].take(cur)
                feat = packed & self._fmask
                np.add(feat, row_base, out=feat)
                rank_value = rank_flat.take(feat)
                go_right = rank_value > (packed >> self._fbits)
                cur = self._lchild[depth].take(cur)
                np.add(cur, go_right, out=cur, casting="unsafe")
            out[start : start + m] = (
                self._leafmap.take(cur)
                if self.depth
                else np.broadcast_to(self._leafmap, (m, n_trees))
            )
        return out

    # ------------------------------------------------------- accumulation
    def _accumulate(self, leaves: np.ndarray) -> np.ndarray:
        n_rows, n_trees = leaves.shape
        proba = self.proba
        if n_rows * n_trees * self.n_classes <= self.FUSED_ACCUM_MAX_CELLS:
            # 3-D reduce over a strided axis is a sequential per-element
            # sum — the same addition order as the loop below (a 2-D
            # reduce would be pairwise and would NOT be bit-identical)
            total = np.add.reduce(proba[leaves], axis=1)
        else:
            total = np.zeros((n_rows, self.n_classes))
            for tree in range(n_trees):
                total += proba[leaves[:, tree]]
        return total / n_trees

    # ----------------------------------------------------------- predict
    def predict_proba(self, X) -> np.ndarray:
        """Mean class probabilities, bit-identical to the legacy traversal."""
        X, _ = check_Xy(X)
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {X.shape[1]}"
            )
        if self.backend == "numba":
            return self._predict_proba_numba(X)
        ranks = self._rank(X)
        if (
            self.DEDUP_MIN_ROWS <= X.shape[0] <= self.DEDUP_MAX_ROWS
            and X.shape[1] <= self.DEDUP_MAX_FEATURES
        ):
            unique_ranks, inverse = np.unique(ranks, axis=0, return_inverse=True)
            if 2 * unique_ranks.shape[0] <= ranks.shape[0]:
                return self._accumulate(self._traverse(unique_ranks))[inverse]
        return self._accumulate(self._traverse(ranks))

    def _predict_proba_numba(self, X: np.ndarray) -> np.ndarray:
        total = np.zeros((X.shape[0], self.n_classes))
        _numba_walker()(
            self._feature,
            self._threshold,
            self._right,
            self.proba,
            self._roots,
            np.ascontiguousarray(X),
            total,
        )
        return total / self.n_trees

    def predict(self, X) -> np.ndarray:
        """Most probable class per row (same tie-breaking as the forest)."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    # ------------------------------------------------------------- sizing
    def nbytes(self) -> int:
        """Approximate compiled-table footprint (excludes the arena copy)."""
        tables = sum(level.nbytes for level in self._packed)
        tables += sum(level.nbytes for level in self._lchild)
        return int(
            tables
            + self._leafmap.nbytes
            + self._cuts_pad.nbytes
            + sum(c.nbytes for c in self._cuts)
            + self.proba.nbytes
        )
