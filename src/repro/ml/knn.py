"""K-nearest-neighbour classifier.

One of the three model families the paper evaluates (Fig. 14/15).  The
hyperparameters swept there — number of neighbours and distance metric —
are supported, together with distance-weighted voting.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_Xy, validate_positive_int

_SUPPORTED_METRICS = ("euclidean", "manhattan", "chebyshev", "minkowski")


class KNeighborsClassifier(BaseClassifier):
    """Brute-force KNN with selectable distance metric.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours consulted per prediction.
    metric:
        ``"euclidean"``, ``"manhattan"``, ``"chebyshev"`` or ``"minkowski"``.
    p:
        Order of the Minkowski metric (only used when ``metric="minkowski"``).
    weights:
        ``"uniform"`` (default) or ``"distance"`` for inverse-distance
        weighted voting.
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        metric: str = "euclidean",
        p: float = 2.0,
        weights: str = "uniform",
    ) -> None:
        validate_positive_int(n_neighbors, "n_neighbors")
        if metric not in _SUPPORTED_METRICS:
            raise ValueError(
                f"metric must be one of {_SUPPORTED_METRICS}, got {metric!r}"
            )
        if weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        self.n_neighbors = n_neighbors
        self.metric = metric
        self.p = float(p)
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y = check_Xy(X, y)
        self._encoded = self._store_classes(y)
        self._X = X
        self.n_features_ = X.shape[1]
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} exceeds training size {X.shape[0]}"
            )
        return self

    def _distances(self, X: np.ndarray) -> np.ndarray:
        """Pairwise distances between query rows and the training set."""
        diff = X[:, None, :] - self._X[None, :, :]
        if self.metric == "euclidean":
            return np.sqrt(np.sum(diff * diff, axis=2))
        if self.metric == "manhattan":
            return np.sum(np.abs(diff), axis=2)
        if self.metric == "chebyshev":
            return np.max(np.abs(diff), axis=2)
        return np.sum(np.abs(diff) ** self.p, axis=2) ** (1.0 / self.p)

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X, _ = check_Xy(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        n_classes = len(self.classes_)
        out = np.zeros((X.shape[0], n_classes))
        # chunk queries to bound the memory of the pairwise-distance tensor
        chunk = max(1, int(2_000_000 // max(1, self._X.shape[0])))
        for start in range(0, X.shape[0], chunk):
            block = X[start : start + chunk]
            distances = self._distances(block)
            neighbor_idx = np.argpartition(distances, self.n_neighbors - 1, axis=1)[
                :, : self.n_neighbors
            ]
            for row, neighbors in enumerate(neighbor_idx):
                labels = self._encoded[neighbors]
                if self.weights == "uniform":
                    votes = np.bincount(labels, minlength=n_classes).astype(float)
                else:
                    dist = distances[row, neighbors]
                    inv = 1.0 / np.maximum(dist, 1e-12)
                    votes = np.zeros(n_classes)
                    np.add.at(votes, labels, inv)
                out[start + row] = votes / votes.sum()
        return out
