"""Classification metrics (accuracy, per-class accuracy, confusion matrix)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


def _as_arrays(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true shape {y_true.shape} does not match y_pred shape {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot compute metrics on empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of predictions equal to the true label."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels: Optional[Sequence] = None) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true label i predicted as j."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for true, pred in zip(y_true.tolist(), y_pred.tolist()):
        if true in index and pred in index:
            matrix[index[true], index[pred]] += 1
    return matrix


def per_class_accuracy(y_true, y_pred, labels: Optional[Sequence] = None) -> Dict:
    """Per-class recall (the paper reports this as per-title "accuracy")."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    if labels is None:
        labels = np.unique(y_true)
    out = {}
    for label in np.asarray(labels).tolist():
        mask = y_true == label
        if not mask.any():
            out[label] = float("nan")
        else:
            out[label] = float(np.mean(y_pred[mask] == label))
    return out


def precision_score(y_true, y_pred, labels: Optional[Sequence] = None) -> Dict:
    """Per-class precision."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    out = {}
    for label in np.asarray(labels).tolist():
        predicted = y_pred == label
        if not predicted.any():
            out[label] = float("nan")
        else:
            out[label] = float(np.mean(y_true[predicted] == label))
    return out


def recall_score(y_true, y_pred, labels: Optional[Sequence] = None) -> Dict:
    """Per-class recall (alias of :func:`per_class_accuracy`)."""
    return per_class_accuracy(y_true, y_pred, labels)


def f1_score(y_true, y_pred, labels: Optional[Sequence] = None) -> Dict:
    """Per-class F1 score."""
    precision = precision_score(y_true, y_pred, labels)
    recall = recall_score(y_true, y_pred, labels)
    out = {}
    for label in precision:
        p, r = precision[label], recall.get(label, float("nan"))
        if np.isnan(p) or np.isnan(r) or (p + r) == 0:
            out[label] = 0.0
        else:
            out[label] = 2 * p * r / (p + r)
    return out


def macro_f1(y_true, y_pred) -> float:
    """Unweighted mean of per-class F1 scores."""
    scores = f1_score(y_true, y_pred)
    return float(np.mean(list(scores.values()))) if scores else 0.0


@dataclass
class ClassificationReport:
    """Structured summary of a classification run."""

    accuracy: float
    per_class_accuracy: Dict
    precision: Dict
    recall: Dict
    f1: Dict
    support: Dict
    labels: list

    def as_text(self) -> str:
        """Render the report as a fixed-width table."""
        lines = [f"overall accuracy: {self.accuracy:.3f}", ""]
        header = f"{'class':<24}{'acc':>8}{'prec':>8}{'rec':>8}{'f1':>8}{'n':>8}"
        lines.append(header)
        lines.append("-" * len(header))
        for label in self.labels:
            lines.append(
                f"{str(label):<24}"
                f"{self.per_class_accuracy[label]:>8.3f}"
                f"{self.precision.get(label, float('nan')):>8.3f}"
                f"{self.recall[label]:>8.3f}"
                f"{self.f1[label]:>8.3f}"
                f"{self.support[label]:>8d}"
            )
        return "\n".join(lines)


def classification_report(y_true, y_pred) -> ClassificationReport:
    """Build a :class:`ClassificationReport` for the given predictions."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    labels = np.unique(y_true).tolist()
    support = {label: int(np.sum(y_true == label)) for label in labels}
    return ClassificationReport(
        accuracy=accuracy_score(y_true, y_pred),
        per_class_accuracy=per_class_accuracy(y_true, y_pred, labels),
        precision=precision_score(y_true, y_pred, labels),
        recall=recall_score(y_true, y_pred, labels),
        f1=f1_score(y_true, y_pred, labels),
        support=support,
        labels=labels,
    )
