"""Dataset splitting, cross-validation and grid search.

These utilities back the hyperparameter tuning reported in Appendix C of the
paper (Fig. 14 for game-title models, Fig. 15 for gameplay-activity-pattern
models) and the parameter sweeps of Fig. 8 and Fig. 10.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import check_Xy, validate_fraction, validate_positive_int
from repro.ml.metrics import accuracy_score


def train_test_split(
    X,
    y,
    test_size: float = 0.25,
    random_state: Optional[int] = None,
    stratify: bool = True,
):
    """Split ``(X, y)`` into train and test partitions.

    Parameters
    ----------
    test_size:
        Fraction of samples placed in the test partition.
    stratify:
        When ``True`` (default) the split preserves per-class proportions,
        which matters for the skewed title popularity of Table 1.

    Returns
    -------
    tuple
        ``(X_train, X_test, y_train, y_test)``.
    """
    X, y = check_Xy(X, y)
    validate_fraction(test_size, "test_size")
    rng = np.random.default_rng(random_state)
    n_samples = X.shape[0]

    if stratify:
        test_indices: List[int] = []
        for label in np.unique(y):
            label_indices = np.flatnonzero(y == label)
            rng.shuffle(label_indices)
            n_test = max(1, int(round(test_size * label_indices.size)))
            if n_test >= label_indices.size:
                n_test = label_indices.size - 1
            if n_test > 0:
                test_indices.extend(label_indices[:n_test].tolist())
        test_mask = np.zeros(n_samples, dtype=bool)
        test_mask[test_indices] = True
    else:
        order = rng.permutation(n_samples)
        n_test = max(1, int(round(test_size * n_samples)))
        test_mask = np.zeros(n_samples, dtype=bool)
        test_mask[order[:n_test]] = True

    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class StratifiedKFold:
    """Stratified k-fold splitter preserving class proportions per fold."""

    def __init__(
        self, n_splits: int = 5, shuffle: bool = True, random_state: Optional[int] = None
    ) -> None:
        validate_positive_int(n_splits, "n_splits")
        if n_splits < 2:
            raise ValueError(f"n_splits must be at least 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        X, y = check_Xy(X, y)
        rng = np.random.default_rng(self.random_state)
        fold_assignment = np.empty(X.shape[0], dtype=int)
        for label in np.unique(y):
            label_indices = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(label_indices)
            folds = np.arange(label_indices.size) % self.n_splits
            fold_assignment[label_indices] = folds
        for fold in range(self.n_splits):
            test_mask = fold_assignment == fold
            if not test_mask.any() or test_mask.all():
                continue
            yield np.flatnonzero(~test_mask), np.flatnonzero(test_mask)


def cross_val_score(
    estimator_factory: Callable[[], object],
    X,
    y,
    cv: int = 5,
    random_state: Optional[int] = None,
    scorer: Callable = accuracy_score,
) -> np.ndarray:
    """Evaluate an estimator with stratified k-fold cross-validation.

    Parameters
    ----------
    estimator_factory:
        Zero-argument callable returning a *fresh* unfitted estimator; a
        factory is required because the estimators here do not implement
        cloning.

    Returns
    -------
    numpy.ndarray
        One score per fold.
    """
    X, y = check_Xy(X, y)
    splitter = StratifiedKFold(n_splits=cv, random_state=random_state)
    scores = []
    for train_idx, test_idx in splitter.split(X, y):
        model = estimator_factory()
        model.fit(X[train_idx], y[train_idx])
        predictions = model.predict(X[test_idx])
        scores.append(scorer(y[test_idx], predictions))
    if not scores:
        raise ValueError("cross-validation produced no usable folds")
    return np.array(scores)


@dataclass
class GridSearchResult:
    """Outcome of :func:`grid_search`."""

    best_params: Dict
    best_score: float
    results: List[Dict] = field(default_factory=list)

    def scores_for(self, **fixed) -> List[Dict]:
        """Return result rows whose parameters match all ``fixed`` values."""
        rows = []
        for row in self.results:
            if all(row["params"].get(key) == value for key, value in fixed.items()):
                rows.append(row)
        return rows


def iter_param_grid(param_grid: Dict[str, Sequence]) -> Iterator[Dict]:
    """Yield every combination of the parameter grid as a dict."""
    if not param_grid:
        yield {}
        return
    keys = list(param_grid)
    for values in itertools.product(*(param_grid[key] for key in keys)):
        yield dict(zip(keys, values))


def grid_search(
    estimator_factory: Callable[..., object],
    param_grid: Dict[str, Sequence],
    X,
    y,
    cv: int = 3,
    random_state: Optional[int] = None,
    scorer: Callable = accuracy_score,
) -> GridSearchResult:
    """Exhaustive cross-validated search over a parameter grid.

    ``estimator_factory`` is called with each parameter combination as
    keyword arguments (e.g. ``lambda **p: RandomForestClassifier(**p)``).
    """
    X, y = check_Xy(X, y)
    results: List[Dict] = []
    best_score = -np.inf
    best_params: Dict = {}
    for params in iter_param_grid(param_grid):
        scores = cross_val_score(
            lambda params=params: estimator_factory(**params),
            X,
            y,
            cv=cv,
            random_state=random_state,
            scorer=scorer,
        )
        mean_score = float(scores.mean())
        results.append(
            {"params": params, "mean_score": mean_score, "std_score": float(scores.std())}
        )
        if mean_score > best_score:
            best_score = mean_score
            best_params = params
    return GridSearchResult(best_params=best_params, best_score=best_score, results=results)
