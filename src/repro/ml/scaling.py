"""Feature scaling utilities used ahead of distance/margin-based models."""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_Xy


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Constant features (zero variance) are left centred but unscaled so that
    they do not produce NaNs, which matters for attributes the paper finds to
    be non-discriminative (e.g. the mean payload size of the full packet
    group, which is constant across titles).
    """

    def fit(self, X) -> "StandardScaler":
        X, _ = check_Xy(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted; call fit() first")
        X, _ = check_Xy(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted; call fit() first")
        X, _ = check_Xy(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to the ``[0, 1]`` range.

    Used by the player-activity-stage classifier where attributes are already
    relative fractions of the observed session peak but may slightly exceed
    one when the peak estimate is updated online.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        low, high = feature_range
        if not high > low:
            raise ValueError(f"feature_range must be increasing, got {feature_range}")
        self.feature_range = (float(low), float(high))

    def fit(self, X) -> "MinMaxScaler":
        X, _ = check_Xy(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = self.data_max_ - self.data_min_
        self.data_range_ = np.where(span > 0, span, 1.0)
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        if not hasattr(self, "data_min_"):
            raise RuntimeError("MinMaxScaler is not fitted; call fit() first")
        X, _ = check_Xy(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        low, high = self.feature_range
        unit = (X - self.data_min_) / self.data_range_
        return unit * (high - low) + low

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
