"""Kernel support-vector classifier (one-vs-rest).

The second model family tuned in the paper (Fig. 14/15), swept over the
regularisation parameter ``C`` and the kernel type.  Each one-vs-rest binary
problem is solved with the kernelised Pegasos algorithm (Shalev-Shwartz et
al., 2011): stochastic subgradient descent on the regularised hinge loss in
its dual-coefficient parameterisation.  Pegasos is simple, provably stable
and accurate enough to reproduce the relative model ranking (RF > SVM > KNN)
reported in the paper without a heavyweight SMO implementation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseClassifier, check_Xy, validate_positive_int

_SUPPORTED_KERNELS = ("linear", "rbf", "poly")


def _pairwise_kernel(
    A: np.ndarray,
    B: np.ndarray,
    kernel: str,
    gamma: float,
    degree: int,
    coef0: float,
) -> np.ndarray:
    """Compute the kernel matrix between rows of ``A`` and rows of ``B``."""
    if kernel == "linear":
        return A @ B.T
    if kernel == "poly":
        return (gamma * (A @ B.T) + coef0) ** degree
    # rbf
    a2 = np.sum(A * A, axis=1)[:, None]
    b2 = np.sum(B * B, axis=1)[None, :]
    squared = np.maximum(a2 + b2 - 2.0 * (A @ B.T), 0.0)
    return np.exp(-gamma * squared)


class SVMClassifier(BaseClassifier):
    """One-vs-rest kernel SVM trained with kernelised Pegasos.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger values fit the training data
        harder), matching the paper's Fig. 14 sweep.  Internally mapped to
        the Pegasos regulariser ``lambda = 1 / (C * n_samples)``.
    kernel:
        ``"linear"``, ``"rbf"`` (default) or ``"poly"``.
    gamma:
        Kernel coefficient for RBF/poly kernels.  ``"scale"`` (default)
        mirrors the common ``1 / (n_features * Var(X))`` heuristic.
    degree, coef0:
        Polynomial kernel parameters.
    max_iter:
        Number of Pegasos epochs (passes over the training set) per binary
        problem.
    random_state:
        Seed for the stochastic sample selection.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma="scale",
        degree: int = 3,
        coef0: float = 1.0,
        max_iter: int = 30,
        random_state: Optional[int] = None,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if kernel not in _SUPPORTED_KERNELS:
            raise ValueError(
                f"kernel must be one of {_SUPPORTED_KERNELS}, got {kernel!r}"
            )
        validate_positive_int(max_iter, "max_iter")
        validate_positive_int(degree, "degree")
        self.C = float(C)
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = float(coef0)
        self.max_iter = max_iter
        self.random_state = random_state

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            variance = X.var()
            return 1.0 / (X.shape[1] * variance) if variance > 0 else 1.0
        if self.gamma == "auto":
            return 1.0 / X.shape[1]
        gamma = float(self.gamma)
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        return gamma

    def fit(self, X, y) -> "SVMClassifier":
        X, y = check_Xy(X, y)
        encoded = self._store_classes(y)
        self._X = X
        self.n_features_ = X.shape[1]
        self.gamma_ = self._resolve_gamma(X)
        n_samples = X.shape[0]
        n_classes = len(self.classes_)

        K = _pairwise_kernel(X, X, self.kernel, self.gamma_, self.degree, self.coef0)
        rng = np.random.default_rng(self.random_state)

        self.dual_coef_ = np.zeros((n_classes, n_samples))
        targets = np.where(
            encoded[None, :] == np.arange(n_classes)[:, None], 1.0, -1.0
        )
        if n_classes == 2:
            # one binary problem suffices; mirror it for the complement class
            class_range = [1]
        else:
            class_range = list(range(n_classes))

        for class_index in class_range:
            self.dual_coef_[class_index] = self._fit_binary(K, targets[class_index], rng)
        if n_classes == 2:
            self.dual_coef_[0] = -self.dual_coef_[1]
        return self

    def _fit_binary(
        self, K: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Kernelised Pegasos for one binary (+1/-1) problem.

        Returns the dual coefficient vector ``beta`` such that the decision
        function is ``f(x) = sum_j beta_j * K(x_j, x)``.
        """
        n_samples = K.shape[0]
        lam = 1.0 / (self.C * n_samples)
        alpha = np.zeros(n_samples)
        total_steps = self.max_iter * n_samples
        order = rng.integers(0, n_samples, size=total_steps)
        signed = y.copy()
        for step, i in enumerate(order, start=1):
            decision = (signed * alpha) @ K[:, i] / (lam * step)
            if y[i] * decision < 1.0:
                alpha[i] += 1.0
        return (signed * alpha) / (lam * total_steps)

    def decision_function(self, X) -> np.ndarray:
        """Return per-class decision scores for every row of ``X``."""
        self._check_fitted()
        X, _ = check_Xy(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        K = _pairwise_kernel(
            X, self._X, self.kernel, self.gamma_, self.degree, self.coef0
        )
        return K @ self.dual_coef_.T

    def predict_proba(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        # softmax over decision scores provides a ranking-consistent proxy
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
