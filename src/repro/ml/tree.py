"""CART decision-tree classifier.

A vectorised implementation of classification trees with Gini or entropy
impurity.  The tree is the building block of :class:`repro.ml.forest.
RandomForestClassifier`, the model family that performs best for both game
title classification (Fig. 14) and gameplay activity pattern inference
(Fig. 15) in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ml.base import BaseClassifier, check_Xy, validate_positive_int


@dataclass
class _Node:
    """A single tree node.

    Leaves carry a class-probability vector; internal nodes carry a split
    ``(feature, threshold)`` and two children.
    """

    prediction: Optional[np.ndarray] = None
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    n_samples: int = 0
    impurity: float = 0.0
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.prediction is not None


@dataclass
class _SplitCandidate:
    feature: int
    threshold: float
    gain: float
    left_mask: np.ndarray = field(repr=False, default=None)


def _gini(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts / total
    return float(1.0 - np.sum(probs * probs))


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts / total
    probs = probs[probs > 0]
    return float(-np.sum(probs * np.log2(probs)))


_IMPURITY_FUNCTIONS = {"gini": _gini, "entropy": _entropy}


class DecisionTreeClassifier(BaseClassifier):
    """Binary-split CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or smaller
        than ``min_samples_split``.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    max_features:
        Number of features examined per split.  ``None`` uses all features,
        ``"sqrt"`` uses ``sqrt(n_features)`` (the random-forest default),
        an ``int`` uses that many, a ``float`` in ``(0, 1]`` uses that
        fraction.
    criterion:
        ``"gini"`` (default) or ``"entropy"``.
    random_state:
        Seed for the per-split feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        criterion: str = "gini",
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth is not None:
            validate_positive_int(max_depth, "max_depth")
        validate_positive_int(min_samples_split, "min_samples_split")
        validate_positive_int(min_samples_leaf, "min_samples_leaf")
        if criterion not in _IMPURITY_FUNCTIONS:
            raise ValueError(
                f"criterion must be one of {sorted(_IMPURITY_FUNCTIONS)}, got {criterion!r}"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.random_state = random_state
        self._flat = None

    # ------------------------------------------------------------------ fit
    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        X, y = check_Xy(X, y)
        encoded = self._store_classes(y)
        self.n_features_ = X.shape[1]
        self._impurity = _IMPURITY_FUNCTIONS[self.criterion]
        self._rng = np.random.default_rng(self.random_state)
        self._n_split_features = self._resolve_max_features(X.shape[1])
        self.feature_importances_ = np.zeros(X.shape[1])
        self.root_ = self._build(X, encoded, depth=0)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ = self.feature_importances_ / total
        self.n_nodes_ = self._count_nodes(self.root_)
        self._flat = None
        return self

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(self.max_features, float):
            if not 0.0 < self.max_features <= 1.0:
                raise ValueError("float max_features must be in (0, 1]")
            return max(1, int(round(self.max_features * n_features)))
        return min(n_features, validate_positive_int(self.max_features, "max_features"))

    def _leaf(self, encoded: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(encoded, minlength=len(self.classes_)).astype(float)
        total = counts.sum()
        prediction = counts / total if total else np.full(len(self.classes_), 1.0 / len(self.classes_))
        return _Node(
            prediction=prediction,
            n_samples=int(total),
            impurity=self._impurity(counts),
            depth=depth,
        )

    def _build(self, X: np.ndarray, encoded: np.ndarray, depth: int) -> _Node:
        n_samples = X.shape[0]
        counts = np.bincount(encoded, minlength=len(self.classes_)).astype(float)
        node_impurity = self._impurity(counts)
        depth_exhausted = self.max_depth is not None and depth >= self.max_depth
        if (
            depth_exhausted
            or n_samples < self.min_samples_split
            or node_impurity == 0.0
        ):
            return self._leaf(encoded, depth)

        split = self._best_split(X, encoded, node_impurity)
        if split is None:
            return self._leaf(encoded, depth)

        self.feature_importances_[split.feature] += split.gain * n_samples
        left_mask = split.left_mask
        node = _Node(
            feature=split.feature,
            threshold=split.threshold,
            n_samples=n_samples,
            impurity=node_impurity,
            depth=depth,
        )
        node.left = self._build(X[left_mask], encoded[left_mask], depth + 1)
        node.right = self._build(X[~left_mask], encoded[~left_mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, encoded: np.ndarray, parent_impurity: float
    ) -> Optional[_SplitCandidate]:
        n_samples, n_features = X.shape
        features = np.arange(n_features)
        if self._n_split_features < n_features:
            features = self._rng.choice(features, size=self._n_split_features, replace=False)

        best: Optional[_SplitCandidate] = None
        n_classes = len(self.classes_)
        for feature in features:
            values = X[:, feature]
            order = np.argsort(values, kind="mergesort")
            sorted_values = values[order]
            sorted_labels = encoded[order]

            # cumulative class counts for the left partition at each cut point
            one_hot = np.zeros((n_samples, n_classes))
            one_hot[np.arange(n_samples), sorted_labels] = 1.0
            left_counts = np.cumsum(one_hot, axis=0)
            total_counts = left_counts[-1]

            # candidate cut between i and i+1 only where the value changes
            distinct = np.nonzero(np.diff(sorted_values) > 0)[0]
            if distinct.size == 0:
                continue
            left_sizes = distinct + 1
            right_sizes = n_samples - left_sizes
            valid = (left_sizes >= self.min_samples_leaf) & (
                right_sizes >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            cut_indices = distinct[valid]
            left_sizes = left_sizes[valid]
            right_sizes = right_sizes[valid]

            lc = left_counts[cut_indices]
            rc = total_counts - lc
            if self.criterion == "gini":
                left_imp = 1.0 - np.sum((lc / left_sizes[:, None]) ** 2, axis=1)
                right_imp = 1.0 - np.sum((rc / right_sizes[:, None]) ** 2, axis=1)
            else:
                lp = lc / left_sizes[:, None]
                rp = rc / right_sizes[:, None]
                with np.errstate(divide="ignore", invalid="ignore"):
                    left_imp = -np.nansum(np.where(lp > 0, lp * np.log2(lp), 0.0), axis=1)
                    right_imp = -np.nansum(np.where(rp > 0, rp * np.log2(rp), 0.0), axis=1)

            weighted = (left_sizes * left_imp + right_sizes * right_imp) / n_samples
            gains = parent_impurity - weighted
            best_index = int(np.argmax(gains))
            gain = float(gains[best_index])
            if gain <= 1e-12:
                continue
            if best is None or gain > best.gain:
                cut = cut_indices[best_index]
                threshold = float((sorted_values[cut] + sorted_values[cut + 1]) / 2.0)
                best = _SplitCandidate(
                    feature=int(feature),
                    threshold=threshold,
                    gain=gain,
                    left_mask=values <= threshold,
                )
        return best

    # -------------------------------------------------------------- predict
    def _flatten(self):
        """Flatten the node tree into parallel arrays for batch traversal.

        Returns ``(feature, threshold, left, right, proba)`` where row ``i``
        describes node ``i`` (preorder): leaves have ``feature == -1`` and
        their class-probability vector in ``proba[i]``; internal nodes store
        the split and the indices of their children.
        """
        features: list = []
        thresholds: list = []
        lefts: list = []
        rights: list = []
        predictions: list = []

        def visit(node: _Node) -> int:
            index = len(features)
            features.append(-1 if node.is_leaf else node.feature)
            thresholds.append(node.threshold)
            lefts.append(index)
            rights.append(index)
            predictions.append(node.prediction)
            if not node.is_leaf:
                lefts[index] = visit(node.left)
                rights[index] = visit(node.right)
            return index

        visit(self.root_)
        n_classes = len(self.classes_)
        proba = np.zeros((len(features), n_classes))
        for index, prediction in enumerate(predictions):
            if prediction is not None:
                proba[index] = prediction
        return (
            np.asarray(features, dtype=np.int64),
            np.asarray(thresholds, dtype=float),
            np.asarray(lefts, dtype=np.int64),
            np.asarray(rights, dtype=np.int64),
            proba,
        )

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities for every row of ``X`` (batch traversal).

        All rows descend the tree together: per level, one vectorised
        comparison routes every still-internal row to its child node, so the
        cost is O(depth) numpy operations instead of a Python loop per row.
        Each row follows exactly the same ``<= threshold`` decisions as a
        sequential walk, so probabilities are bit-identical.
        """
        self._check_fitted()
        X, _ = check_Xy(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        if X.shape[0] == 1:
            # single-row calls (the real-time per-session path) are faster
            # with a direct node walk than with size-1 array arithmetic
            row = X[0]
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            return node.prediction[None, :].copy()
        if self._flat is None:
            self._flat = self._flatten()
        feature, threshold, left, right, proba = self._flat
        n_rows = X.shape[0]
        nodes = np.zeros(n_rows, dtype=np.int64)
        rows = np.arange(n_rows)
        current = nodes
        split_feature = np.full(n_rows, int(feature[0]), dtype=np.int64)
        while rows.size:
            internal = split_feature >= 0
            if not internal.all():
                # rows that reached a leaf drop out of the traversal
                settled = ~internal
                nodes[rows[settled]] = current[settled]
                rows = rows[internal]
                current = current[internal]
                split_feature = split_feature[internal]
                if not rows.size:
                    break
            go_left = X[rows, split_feature] <= threshold[current]
            current = np.where(go_left, left[current], right[current])
            split_feature = feature[current]
        return proba[nodes]

    # --------------------------------------------------------- persistence
    def export_arrays(self) -> dict:
        """Flat preorder arrays fully describing the fitted tree.

        Returns ``feature`` (int64, ``-1`` marks leaves), ``threshold``
        (float64), ``left`` / ``right`` (int64 child indices, self-indices on
        leaves) and ``proba`` (per-leaf class probabilities, zero rows on
        internal nodes) — the :meth:`_flatten` layout, which together with
        the class labels is everything prediction needs.  Bookkeeping fields
        that only describe training (per-node sample counts and impurities)
        are not exported.
        """
        self._check_fitted()
        if self._flat is None:
            self._flat = self._flatten()
        feature, threshold, left, right, proba = self._flat
        return {
            "feature": feature,
            "threshold": threshold,
            "left": left,
            "right": right,
            "proba": proba,
        }

    @classmethod
    def from_arrays(
        cls,
        feature,
        threshold,
        left,
        right,
        proba,
        classes,
        n_features: int,
        feature_importances=None,
        **params,
    ) -> "DecisionTreeClassifier":
        """Rebuild a fitted tree from its :meth:`export_arrays` layout.

        The node structure (including per-node depths, which the batched
        forest traversal needs for its iteration count) is reconstructed
        recursively from the preorder arrays; predictions are bit-identical
        to the exported tree's because every split threshold and leaf
        probability row round-trips exactly.
        """
        tree = cls(**params)
        feature = np.asarray(feature, dtype=np.int64)
        threshold = np.asarray(threshold, dtype=float)
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        proba = np.asarray(proba, dtype=float)
        tree.classes_ = np.asarray(classes)
        tree.n_features_ = int(n_features)

        def build(index: int, depth: int) -> _Node:
            if feature[index] < 0:
                return _Node(prediction=proba[index].copy(), depth=depth)
            node = _Node(
                feature=int(feature[index]),
                threshold=float(threshold[index]),
                depth=depth,
            )
            node.left = build(int(left[index]), depth + 1)
            node.right = build(int(right[index]), depth + 1)
            return node

        tree.root_ = build(0, 0)
        tree.n_nodes_ = int(feature.size)
        tree.feature_importances_ = (
            np.zeros(tree.n_features_)
            if feature_importances is None
            else np.asarray(feature_importances, dtype=float)
        )
        tree._flat = (feature, threshold, left, right, proba)
        return tree

    # ------------------------------------------------------------ utilities
    def _count_nodes(self, node: _Node) -> int:
        if node.is_leaf:
            return 1
        return 1 + self._count_nodes(node.left) + self._count_nodes(node.right)

    def depth(self) -> int:
        """Return the depth of the fitted tree (root at depth 0)."""
        self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return node.depth
            return max(walk(node.left), walk(node.right))

        return walk(self.root_)
