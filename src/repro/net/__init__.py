"""Packet, flow and capture substrate.

Everything the classification pipeline consumes is expressed in terms of this
subpackage: individual :class:`~repro.net.packet.Packet` records, bidirectional
:class:`~repro.net.flow.Flow` objects keyed by 5-tuples, RTP header handling,
classic-libpcap file I/O, cloud-gaming flow detection signatures, slotted
time-series helpers, and a network-impairment model used to emulate degraded
access links.
"""

from repro.net.conditions import (
    NetworkConditions,
    apply_conditions,
    apply_conditions_columns,
)
from repro.net.filter import (
    CLOUD_GAMING_PLATFORMS,
    CloudGamingFlowDetector,
    FlowSignature,
)
from repro.net.flow import Flow, FlowKey, FlowTable, build_flows
from repro.net.packet import Direction, Packet, PacketColumns, PacketStream
from repro.net.pcap import (
    ParseStats,
    read_pcap,
    read_pcap_columns,
    read_pcap_stream,
    write_pcap,
)
from repro.net.rtp import RTPHeader, build_rtp_packet, parse_rtp_payload
from repro.net.timeseries import SlotSeries, slot_aggregate, throughput_series

__all__ = [
    "Packet",
    "PacketColumns",
    "PacketStream",
    "Direction",
    "Flow",
    "FlowKey",
    "FlowTable",
    "build_flows",
    "RTPHeader",
    "build_rtp_packet",
    "parse_rtp_payload",
    "ParseStats",
    "read_pcap",
    "read_pcap_columns",
    "read_pcap_stream",
    "write_pcap",
    "CloudGamingFlowDetector",
    "FlowSignature",
    "CLOUD_GAMING_PLATFORMS",
    "NetworkConditions",
    "apply_conditions",
    "apply_conditions_columns",
    "SlotSeries",
    "slot_aggregate",
    "throughput_series",
]
