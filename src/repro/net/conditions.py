"""Network impairment model (latency, jitter, loss, bandwidth cap).

Used to emulate degraded access links: the paper's lab network is near-ideal
(<10 ms latency, <0.1% loss, ~1 Gbps), while a fraction of ISP sessions
suffer genuinely poor network conditions that the effective-QoE calibration
must still flag as bad (§5.3).  Applying :func:`apply_conditions` to a
synthetic session produces the degraded packet timings/loss that drive the
objective-QoE estimator toward "bad" labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.net.packet import DOWNSTREAM_CODE, Direction, Packet, PacketColumns


@dataclass(frozen=True)
class NetworkConditions:
    """Access-link conditions applied to a packet stream.

    Attributes
    ----------
    latency_ms:
        One-way propagation delay added to every packet.
    jitter_ms:
        Standard deviation of a truncated-Gaussian per-packet delay.
    loss_rate:
        Independent per-packet drop probability (0..1).
    bandwidth_mbps:
        Optional downstream bottleneck; packets are additionally delayed by
        queueing behind earlier bytes when the offered load exceeds it.
    """

    latency_ms: float = 5.0
    jitter_ms: float = 1.0
    loss_rate: float = 0.0
    bandwidth_mbps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError(f"latency_ms must be non-negative, got {self.latency_ms}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be non-negative, got {self.jitter_ms}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.bandwidth_mbps is not None and self.bandwidth_mbps <= 0:
            raise ValueError(
                f"bandwidth_mbps must be positive, got {self.bandwidth_mbps}"
            )

    @classmethod
    def ideal(cls) -> "NetworkConditions":
        """Lab-grade conditions (§3.1): negligible latency, jitter and loss."""
        return cls(latency_ms=5.0, jitter_ms=0.5, loss_rate=0.0005)

    @classmethod
    def congested(cls) -> "NetworkConditions":
        """A congested cell/home link producing visibly degraded QoE."""
        return cls(latency_ms=70.0, jitter_ms=25.0, loss_rate=0.03, bandwidth_mbps=6.0)

    def is_degraded(
        self,
        latency_threshold_ms: float = 40.0,
        loss_threshold: float = 0.01,
    ) -> bool:
        """Whether these conditions should be considered network-impaired."""
        return self.latency_ms > latency_threshold_ms or self.loss_rate > loss_threshold


def apply_conditions(
    packets: Iterable[Packet],
    conditions: NetworkConditions,
    rng: Optional[np.random.Generator] = None,
) -> List[Packet]:
    """Apply latency, jitter, loss and an optional bottleneck to packets.

    The bottleneck only shapes downstream packets (the video feed); upstream
    input packets are tiny and never queue in practice.

    Returns a new timestamp-sorted list of surviving packets.
    """
    rng = rng or np.random.default_rng()
    packets = sorted(packets, key=lambda p: p.timestamp)
    if not packets:
        return []

    survivors: List[Packet] = []
    # drops are i.i.d. per packet
    keep = rng.random(len(packets)) >= conditions.loss_rate
    jitter = np.abs(rng.normal(0.0, conditions.jitter_ms / 1000.0, size=len(packets)))
    base_delay = conditions.latency_ms / 1000.0

    bottleneck_busy_until = 0.0
    bytes_per_second = (
        conditions.bandwidth_mbps * 1e6 / 8.0 if conditions.bandwidth_mbps else None
    )

    for index, packet in enumerate(packets):
        if not keep[index]:
            continue
        delay = base_delay + jitter[index]
        arrival = packet.timestamp + delay
        if bytes_per_second is not None and packet.direction is Direction.DOWNSTREAM:
            transmit_time = packet.payload_size / bytes_per_second
            start = max(arrival, bottleneck_busy_until)
            bottleneck_busy_until = start + transmit_time
            arrival = bottleneck_busy_until
        survivors.append(packet.shifted(arrival - packet.timestamp))

    survivors.sort(key=lambda p: p.timestamp)
    return survivors


def apply_conditions_columns(
    columns: PacketColumns,
    conditions: NetworkConditions,
    rng: Optional[np.random.Generator] = None,
) -> PacketColumns:
    """Columnar (vectorised) version of :func:`apply_conditions`.

    Operates directly on a :class:`PacketColumns` batch: loss and jitter are
    drawn for all packets at once (in the same order as the object-based
    implementation, so identical RNG states produce identical sessions when
    no bottleneck is configured) and the bottleneck queue recursion
    ``busy_i = max(arrival_i, busy_{i-1}) + transmit_i`` is solved in closed
    form with a cumulative sum + running maximum.
    """
    rng = rng or np.random.default_rng()
    columns = columns.sorted_by_time()
    n = len(columns)
    if n == 0:
        return columns

    keep = rng.random(n) >= conditions.loss_rate
    jitter = np.abs(rng.normal(0.0, conditions.jitter_ms / 1000.0, size=n))
    arrival = columns.timestamps + conditions.latency_ms / 1000.0 + jitter

    if conditions.bandwidth_mbps is not None:
        bytes_per_second = conditions.bandwidth_mbps * 1e6 / 8.0
        queued = np.flatnonzero(keep & (columns.directions == DOWNSTREAM_CODE))
        if queued.size:
            transmit = columns.payload_sizes[queued] / bytes_per_second
            served = np.cumsum(transmit)
            # busy_i = served_i + max_{j<=i}(arrival_j - served_{j-1})
            arrival[queued] = served + np.maximum.accumulate(
                arrival[queued] - (served - transmit)
            )

    survivors = columns.take(np.flatnonzero(keep))
    survivors.timestamps = arrival[keep]
    return survivors.sorted_by_time()
