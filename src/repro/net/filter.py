"""Cloud-gaming streaming-flow detection (the "Cloud Gaming Packet Filter").

The first stage of the paper's pipeline (Fig. 6) selects only packets that
belong to cloud game streaming flows, using adapted state-of-the-art flow
signatures [23, 32, 52] that reach 100% detection accuracy for four major
platforms: NVIDIA GeForce NOW, Xbox Cloud Gaming, Amazon Luna and PS5 Cloud
Streaming.  We model those signatures as flow-metadata predicates: RTP over
UDP, a platform-specific server port range, sustained downstream bitrate and
a heavily downstream-dominated byte ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.flow import Flow, build_flows
from repro.net.packet import Packet


@dataclass(frozen=True)
class FlowSignature:
    """Metadata predicate describing one platform's streaming flows.

    Attributes
    ----------
    platform:
        Human-readable platform name.
    server_port_ranges:
        Inclusive UDP port ranges used by the platform's streaming servers.
    min_downstream_mbps:
        Minimum sustained downstream payload throughput.
    min_downstream_fraction:
        Minimum fraction of payload bytes that must flow downstream.
    requires_rtp:
        Whether packets must carry RTP headers.
    min_duration_s:
        Minimum flow duration before a confident match is declared.
    """

    platform: str
    server_port_ranges: Tuple[Tuple[int, int], ...]
    min_downstream_mbps: float = 3.0
    min_downstream_fraction: float = 0.9
    requires_rtp: bool = True
    min_duration_s: float = 2.0

    def matches(self, flow: Flow) -> bool:
        """Return True when the flow satisfies every predicate."""
        return self.matches_summary(flow.summary())

    def matches_summary(self, summary: dict) -> bool:
        """Evaluate the predicates on flow-metadata fields directly.

        ``summary`` needs ``duration_s``, ``is_rtp``, ``downstream_mbps``,
        ``downstream_fraction`` and ``server_port`` — either a
        :meth:`Flow.summary` dict or the equivalent aggregates a bounded
        session state tracks without retaining packets
        (:meth:`~repro.core.reducers.SessionReducerCascade.flow_summary`).
        """
        if summary["duration_s"] < self.min_duration_s:
            return False
        if self.requires_rtp and not summary["is_rtp"]:
            return False
        if summary["downstream_mbps"] < self.min_downstream_mbps:
            return False
        if summary["downstream_fraction"] < self.min_downstream_fraction:
            return False
        port = summary["server_port"]
        return any(low <= port <= high for low, high in self.server_port_ranges)


#: Platform signatures adapted from prior work [23, 32, 52].  Port ranges are
#: the publicly documented streaming port ranges of each platform.
CLOUD_GAMING_PLATFORMS: Dict[str, FlowSignature] = {
    "GeForce NOW": FlowSignature(
        platform="GeForce NOW",
        server_port_ranges=((49003, 49006), (47998, 48010)),
        min_downstream_mbps=3.0,
    ),
    "Xbox Cloud Gaming": FlowSignature(
        platform="Xbox Cloud Gaming",
        server_port_ranges=((9002, 9002), (3074, 3074)),
        min_downstream_mbps=3.0,
    ),
    "Amazon Luna": FlowSignature(
        platform="Amazon Luna",
        server_port_ranges=((33000, 34000),),
        min_downstream_mbps=3.0,
    ),
    "PS5 Cloud Streaming": FlowSignature(
        platform="PS5 Cloud Streaming",
        server_port_ranges=((9295, 9304),),
        min_downstream_mbps=3.0,
    ),
}


@dataclass
class DetectedSession:
    """A streaming flow identified as a cloud gaming session."""

    flow: Flow
    platform: str

    @property
    def packets(self):
        return self.flow.packets


class CloudGamingFlowDetector:
    """Detects cloud-game streaming flows among arbitrary traffic.

    Parameters
    ----------
    signatures:
        Platform signatures to match against; defaults to the four platforms
        validated in the paper.
    """

    def __init__(self, signatures: Optional[Sequence[FlowSignature]] = None) -> None:
        self.signatures = list(signatures) if signatures else list(
            CLOUD_GAMING_PLATFORMS.values()
        )

    def classify_flow(self, flow: Flow) -> Optional[str]:
        """Return the matching platform name, or ``None`` when no match."""
        return self.classify_summary(flow.summary())

    def classify_summary(self, summary: dict) -> Optional[str]:
        """Classify from flow-metadata aggregates (no packets required).

        Signatures are evaluated in the same order as :meth:`classify_flow`,
        so for a summary equal to ``flow.summary()`` the verdict is
        identical — this is how bounded session states detect the platform
        at close time without packet history.
        """
        for signature in self.signatures:
            if signature.matches_summary(summary):
                return signature.platform
        return None

    def detect(self, packets: Iterable[Packet]) -> List[DetectedSession]:
        """Assemble packets into flows and return the gaming sessions found."""
        sessions: List[DetectedSession] = []
        for flow in build_flows(packets):
            platform = self.classify_flow(flow)
            if platform is not None:
                sessions.append(DetectedSession(flow=flow, platform=platform))
        return sessions

    def filter_packets(self, packets: Iterable[Packet]) -> List[Packet]:
        """Return only the packets belonging to detected gaming sessions."""
        selected: List[Packet] = []
        for session in self.detect(packets):
            selected.extend(session.packets)
        selected.sort(key=lambda p: p.timestamp)
        return selected
