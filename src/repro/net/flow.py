"""Flow assembly: grouping packets into bidirectional 5-tuple flows.

The cloud-gaming packet filter (Fig. 6, left box) operates on flows rather
than individual packets: a game streaming session appears as one long-lived
bidirectional UDP/RTP flow between the client and a cloud GPU server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.net.packet import Direction, Packet, PacketStream


@dataclass(frozen=True, slots=True)
class FlowKey:
    """Canonical (direction-agnostic) 5-tuple identifying a flow.

    The key always stores the client endpoint first so that both directions
    of a conversation map to the same key.
    """

    client_ip: str
    client_port: int
    server_ip: str
    server_port: int
    protocol: str = "udp"

    @classmethod
    def from_packet(cls, packet: Packet) -> "FlowKey":
        """Derive the canonical key from a packet using its direction."""
        if packet.direction is Direction.UPSTREAM:
            return cls(
                client_ip=packet.src_ip,
                client_port=packet.src_port,
                server_ip=packet.dst_ip,
                server_port=packet.dst_port,
                protocol=packet.protocol,
            )
        return cls(
            client_ip=packet.dst_ip,
            client_port=packet.dst_port,
            server_ip=packet.src_ip,
            server_port=packet.src_port,
            protocol=packet.protocol,
        )


class Flow:
    """A bidirectional flow: the packet stream plus flow-level metadata."""

    def __init__(self, key: FlowKey) -> None:
        self.key = key
        self.packets = PacketStream()

    @classmethod
    def from_stream(cls, key: FlowKey, stream: PacketStream) -> "Flow":
        """Wrap an already-assembled per-flow stream (no per-packet adds).

        Used by the streaming runtime to run the platform signatures against
        a session's accumulated columnar stream without rebuilding it packet
        by packet.
        """
        flow = cls(key)
        flow.packets = stream
        return flow

    def add(self, packet: Packet) -> None:
        """Add a packet to the flow."""
        self.packets.append(packet)

    # ------------------------------------------------------------ metadata
    @property
    def start_time(self) -> float:
        return self.packets.start_time

    @property
    def duration(self) -> float:
        return self.packets.duration

    @property
    def packet_count(self) -> int:
        return len(self.packets)

    def bytes(self, direction: Optional[Direction] = None) -> int:
        """Total payload bytes, optionally filtered by direction."""
        return self.packets.total_bytes(direction)

    def mean_downstream_mbps(self) -> float:
        """Mean downstream throughput in Mbps over the flow lifetime."""
        return self.packets.mean_throughput_mbps(Direction.DOWNSTREAM)

    def mean_upstream_kbps(self) -> float:
        """Mean upstream throughput in Kbps over the flow lifetime."""
        return self.packets.mean_throughput_mbps(Direction.UPSTREAM) * 1000.0

    def downstream_fraction(self) -> float:
        """Fraction of payload bytes flowing downstream (0..1)."""
        total = self.bytes()
        if total == 0:
            return 0.0
        return self.bytes(Direction.DOWNSTREAM) / total

    def is_rtp(self) -> bool:
        """True when the flow carries RTP-tagged packets."""
        return self.packets.has_rtp

    def max_payload_size(self, direction: Optional[Direction] = None) -> int:
        """Largest payload observed in the flow (the "full" packet size)."""
        sizes = self.packets.payload_sizes(direction)
        return int(sizes.max()) if sizes.size else 0

    def summary(self) -> dict:
        """Flow metadata summary used by the detection signatures."""
        return {
            "client": f"{self.key.client_ip}:{self.key.client_port}",
            "server": f"{self.key.server_ip}:{self.key.server_port}",
            "protocol": self.key.protocol,
            "duration_s": self.duration,
            "packets": self.packet_count,
            "downstream_mbps": self.mean_downstream_mbps(),
            "upstream_kbps": self.mean_upstream_kbps(),
            "downstream_fraction": self.downstream_fraction(),
            "is_rtp": self.is_rtp(),
            "server_port": self.key.server_port,
            "max_payload": self.max_payload_size(),
        }


class FlowTable:
    """Incrementally assembles packets into flows keyed by 5-tuple."""

    def __init__(self) -> None:
        self._flows: Dict[FlowKey, Flow] = {}

    def add(self, packet: Packet) -> Flow:
        """Route a packet to its flow (creating the flow when new)."""
        key = FlowKey.from_packet(packet)
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(key)
            self._flows[key] = flow
        flow.add(packet)
        return flow

    def add_all(self, packets: Iterable[Packet]) -> None:
        """Add many packets."""
        for packet in packets:
            self.add(packet)

    def flows(self) -> List[Flow]:
        """All flows ordered by start time."""
        return sorted(self._flows.values(), key=lambda f: f.start_time)

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._flows

    def get(self, key: FlowKey) -> Optional[Flow]:
        return self._flows.get(key)

    def largest_flow(self) -> Optional[Flow]:
        """Return the flow carrying the most bytes (the streaming flow)."""
        if not self._flows:
            return None
        return max(self._flows.values(), key=lambda f: f.bytes())


def build_flows(packets: Iterable[Packet]) -> List[Flow]:
    """Convenience wrapper: assemble packets into a list of flows."""
    table = FlowTable()
    table.add_all(packets)
    return table.flows()


def interarrival_times(stream: PacketStream, direction: Optional[Direction] = None) -> np.ndarray:
    """Inter-arrival times (seconds) between consecutive packets."""
    times = stream.timestamps(direction)
    if times.size < 2:
        return np.array([], dtype=float)
    return np.diff(times)
