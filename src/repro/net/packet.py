"""Packet-level primitives.

A :class:`Packet` is the atomic observation of the whole system: timestamp,
direction, payload size and transport metadata.  The classification pipeline
never needs payload bytes — only sizes, times and directions — which is what
allows the traffic simulator to substitute for real GeForce NOW captures (see
DESIGN.md §2).

:class:`PacketStream` is a *columnar* structure-of-arrays store (DESIGN.md
§3): timestamps, payload sizes and directions live in contiguous numpy
arrays, per-direction index views are computed lazily and cached, and time
windows (:meth:`PacketStream.between` / :meth:`PacketStream.first_seconds`)
are zero-copy slices over the parent arrays.  :class:`Packet` objects are
materialised on demand only when callers iterate or index the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class Direction(Enum):
    """Direction of a packet relative to the game client."""

    DOWNSTREAM = "downstream"  # cloud server -> client (video/audio)
    UPSTREAM = "upstream"      # client -> cloud server (inputs)

    def flipped(self) -> "Direction":
        """Return the opposite direction."""
        if self is Direction.DOWNSTREAM:
            return Direction.UPSTREAM
        return Direction.DOWNSTREAM


#: Integer codes used by the columnar direction column.
DOWNSTREAM_CODE = 0
UPSTREAM_CODE = 1

_DIRECTION_CODES = {Direction.DOWNSTREAM: DOWNSTREAM_CODE, Direction.UPSTREAM: UPSTREAM_CODE}
_DIRECTIONS_BY_CODE = (Direction.DOWNSTREAM, Direction.UPSTREAM)

#: Sentinel for "no RTP header field" in the integer RTP columns.
RTP_NONE = -1

#: Default transport addressing of a packet built without explicit endpoints.
DEFAULT_ADDRESS = ("0.0.0.0", "0.0.0.0", 0, 0, "udp")


@dataclass(frozen=True, slots=True)
class Packet:
    """A single observed packet.

    Attributes
    ----------
    timestamp:
        Seconds since the start of the capture (float, sub-millisecond
        resolution).
    direction:
        :class:`Direction` relative to the game client.
    payload_size:
        UDP payload size in bytes (the quantity plotted in Fig. 3).
    src_ip, dst_ip, src_port, dst_port, protocol:
        Transport 5-tuple; ``protocol`` is ``"udp"`` for RTP streaming flows.
    rtp_payload_type, rtp_ssrc, rtp_sequence, rtp_timestamp:
        Optional RTP header fields when the packet belongs to an RTP flow.
    """

    timestamp: float
    direction: Direction
    payload_size: int
    src_ip: str = "0.0.0.0"
    dst_ip: str = "0.0.0.0"
    src_port: int = 0
    dst_port: int = 0
    protocol: str = "udp"
    rtp_payload_type: Optional[int] = None
    rtp_ssrc: Optional[int] = None
    rtp_sequence: Optional[int] = None
    rtp_timestamp: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.timestamp}")
        if self.payload_size < 0:
            raise ValueError(
                f"payload_size must be non-negative, got {self.payload_size}"
            )
        if not 0 <= self.src_port <= 65535:
            raise ValueError(f"src_port out of range: {self.src_port}")
        if not 0 <= self.dst_port <= 65535:
            raise ValueError(f"dst_port out of range: {self.dst_port}")

    @property
    def wire_size(self) -> int:
        """Approximate on-wire size (payload + IPv4/UDP/RTP overhead)."""
        overhead = 20 + 8  # IPv4 + UDP
        if self.rtp_ssrc is not None:
            overhead += 12
        return self.payload_size + overhead

    def shifted(self, offset: float) -> "Packet":
        """Return a copy with the timestamp shifted by ``offset`` seconds."""
        return replace(self, timestamp=self.timestamp + offset)


def _as_int_column(values, size: int, dtype=np.int64) -> Optional[np.ndarray]:
    """Normalise an optional scalar-or-array RTP field into a full column."""
    if values is None:
        return None
    if np.isscalar(values):
        return np.full(size, int(values), dtype=dtype)
    column = np.asarray(values, dtype=dtype)
    if column.shape != (size,):
        raise ValueError(f"column must have shape ({size},), got {column.shape}")
    return column


def _address_column(address, size: int) -> Optional[np.ndarray]:
    """Normalise a 5-tuple (or per-row object array) into an address column."""
    if address is None:
        return None
    if isinstance(address, tuple):
        column = np.empty(size, dtype=object)
        column.fill(address)
        return column
    column = np.asarray(address, dtype=object)
    if column.shape != (size,):
        raise ValueError(f"addresses must have shape ({size},), got {column.shape}")
    return column


@dataclass
class PacketColumns:
    """A plain structure-of-arrays batch of packets.

    This is the interchange format between the traffic generators and
    :class:`PacketStream`: generators synthesise whole arrays instead of
    millions of :class:`Packet` objects.  ``rtp_*`` columns use
    :data:`RTP_NONE` for absent header fields; ``addresses`` holds
    ``(src_ip, dst_ip, src_port, dst_port, protocol)`` tuples (``None``
    means every row uses :data:`DEFAULT_ADDRESS`).
    """

    timestamps: np.ndarray
    payload_sizes: np.ndarray
    directions: np.ndarray
    rtp_payload_type: Optional[np.ndarray] = None
    rtp_ssrc: Optional[np.ndarray] = None
    rtp_sequence: Optional[np.ndarray] = None
    rtp_timestamp: Optional[np.ndarray] = None
    addresses: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        self.payload_sizes = np.asarray(self.payload_sizes, dtype=float)
        self.directions = np.asarray(self.directions, dtype=np.int8)
        n = self.timestamps.size
        if self.payload_sizes.size != n or self.directions.size != n:
            raise ValueError("all packet columns must have the same length")
        for name in ("rtp_payload_type", "rtp_ssrc", "rtp_sequence",
                     "rtp_timestamp", "addresses"):
            column = getattr(self, name)
            if column is not None and column.shape != (n,):
                raise ValueError(
                    f"{name} column must have shape ({n},), got {column.shape}"
                )

    def __len__(self) -> int:
        return int(self.timestamps.size)

    @classmethod
    def empty(cls) -> "PacketColumns":
        return cls(
            timestamps=np.array([], dtype=float),
            payload_sizes=np.array([], dtype=float),
            directions=np.array([], dtype=np.int8),
        )

    @classmethod
    def uniform(
        cls,
        timestamps,
        payload_sizes,
        direction: Direction,
        address: Optional[Tuple[str, str, int, int, str]] = None,
        rtp_payload_type=None,
        rtp_ssrc=None,
        rtp_sequence=None,
        rtp_timestamp=None,
    ) -> "PacketColumns":
        """Build a batch whose rows share one direction (and addressing)."""
        timestamps = np.asarray(timestamps, dtype=float)
        n = timestamps.size
        return cls(
            timestamps=timestamps,
            payload_sizes=np.asarray(payload_sizes, dtype=float),
            directions=np.full(n, _DIRECTION_CODES[direction], dtype=np.int8),
            rtp_payload_type=_as_int_column(rtp_payload_type, n),
            rtp_ssrc=_as_int_column(rtp_ssrc, n),
            rtp_sequence=_as_int_column(rtp_sequence, n),
            rtp_timestamp=_as_int_column(rtp_timestamp, n),
            addresses=_address_column(address, n),
        )

    @classmethod
    def concat(cls, batches: Sequence["PacketColumns"]) -> "PacketColumns":
        """Concatenate batches (row order preserved, no sorting)."""
        batches = [batch for batch in batches if len(batch)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        sizes = [len(batch) for batch in batches]

        def cat_optional(field: str, fill, dtype) -> Optional[np.ndarray]:
            columns = [getattr(batch, field) for batch in batches]
            if all(column is None for column in columns):
                return None
            parts = []
            for column, size in zip(columns, sizes):
                if column is None:
                    part = np.empty(size, dtype=dtype)
                    part.fill(fill)
                    parts.append(part)
                else:
                    parts.append(column)
            return np.concatenate(parts)

        return cls(
            timestamps=np.concatenate([batch.timestamps for batch in batches]),
            payload_sizes=np.concatenate([batch.payload_sizes for batch in batches]),
            directions=np.concatenate([batch.directions for batch in batches]),
            rtp_payload_type=cat_optional("rtp_payload_type", RTP_NONE, np.int64),
            rtp_ssrc=cat_optional("rtp_ssrc", RTP_NONE, np.int64),
            rtp_sequence=cat_optional("rtp_sequence", RTP_NONE, np.int64),
            rtp_timestamp=cat_optional("rtp_timestamp", RTP_NONE, np.int64),
            addresses=cat_optional("addresses", DEFAULT_ADDRESS, object),
        )

    def take_optional(self, indices) -> dict:
        """The five optional columns row-subset by ``indices`` (as kwargs)."""
        return {
            name: None if column is None else column[indices]
            for name, column in (
                ("rtp_payload_type", self.rtp_payload_type),
                ("rtp_ssrc", self.rtp_ssrc),
                ("rtp_sequence", self.rtp_sequence),
                ("rtp_timestamp", self.rtp_timestamp),
                ("addresses", self.addresses),
            )
        }

    def take(self, indices) -> "PacketColumns":
        """Row-subset / reorder by an index array (or zero-copy by a slice)."""
        return PacketColumns(
            timestamps=self.timestamps[indices],
            payload_sizes=self.payload_sizes[indices],
            directions=self.directions[indices],
            **self.take_optional(indices),
        )

    def slice_view(self, start: int, stop: int) -> "PacketColumns":
        """Zero-copy contiguous row window ``[start, stop)`` of this batch.

        Every column of the result is a numpy basic-slice *view* over this
        batch's arrays — no data is copied, and writes through either alias
        are visible in both.  This is the substrate of the shared-memory
        data plane (DESIGN.md §12): a worker copies one ring slot into a
        local tick batch, then hands each flow a ``slice_view`` of it.
        """
        window = slice(start, stop)
        return PacketColumns(
            timestamps=self.timestamps[window],
            payload_sizes=self.payload_sizes[window],
            directions=self.directions[window],
            **self.take_optional(window),
        )

    def column_presence(self) -> Tuple[bool, bool, bool, bool, bool]:
        """Presence flags of the five optional columns (RTP ×4, addresses).

        The flags are what a columnar transport must carry out-of-band to
        rebuild a batch exactly: presence (not just values) is observable —
        ``nbytes`` and snapshot contents differ between an absent column
        and one full of sentinels.
        """
        return (
            self.rtp_payload_type is not None,
            self.rtp_ssrc is not None,
            self.rtp_sequence is not None,
            self.rtp_timestamp is not None,
            self.addresses is not None,
        )

    def sorted_by_time(self) -> "PacketColumns":
        """Return a stably time-sorted copy (self when already sorted)."""
        ts = self.timestamps
        if ts.size < 2 or bool(np.all(ts[1:] >= ts[:-1])):
            return self
        return self.take(np.argsort(ts, kind="stable"))

    def nbytes(self) -> int:
        """Total bytes of the backing arrays (present optional columns too)."""
        total = self.timestamps.nbytes + self.payload_sizes.nbytes
        total += self.directions.nbytes
        for column in (
            self.rtp_payload_type,
            self.rtp_ssrc,
            self.rtp_sequence,
            self.rtp_timestamp,
            self.addresses,
        ):
            if column is not None:
                total += column.nbytes
        return total


def _columns_from_packets(packets: Iterable[Packet]) -> PacketColumns:
    """Extract columns from packet objects (the only per-packet loop)."""
    ts: List[float] = []
    sz: List[int] = []
    dirs: List[int] = []
    rtp_pt: List[int] = []
    rtp_ssrc: List[int] = []
    rtp_seq: List[int] = []
    rtp_ts: List[int] = []
    addrs: List[tuple] = []
    any_rtp = False
    any_addr = False
    for p in packets:
        ts.append(p.timestamp)
        sz.append(p.payload_size)
        dirs.append(_DIRECTION_CODES[p.direction])
        pt, ssrc, seq, rts = p.rtp_payload_type, p.rtp_ssrc, p.rtp_sequence, p.rtp_timestamp
        if pt is not None or ssrc is not None or seq is not None or rts is not None:
            any_rtp = True
        rtp_pt.append(RTP_NONE if pt is None else pt)
        rtp_ssrc.append(RTP_NONE if ssrc is None else ssrc)
        rtp_seq.append(RTP_NONE if seq is None else seq)
        rtp_ts.append(RTP_NONE if rts is None else rts)
        addr = (p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.protocol)
        if addr != DEFAULT_ADDRESS:
            any_addr = True
        addrs.append(addr)
    n = len(ts)
    address_column: Optional[np.ndarray] = None
    if any_addr:
        address_column = np.empty(n, dtype=object)
        address_column[:] = addrs
    return PacketColumns(
        timestamps=np.asarray(ts, dtype=float),
        payload_sizes=np.asarray(sz, dtype=float),
        directions=np.asarray(dirs, dtype=np.int8),
        rtp_payload_type=np.asarray(rtp_pt, dtype=np.int64) if any_rtp else None,
        rtp_ssrc=np.asarray(rtp_ssrc, dtype=np.int64) if any_rtp else None,
        rtp_sequence=np.asarray(rtp_seq, dtype=np.int64) if any_rtp else None,
        rtp_timestamp=np.asarray(rtp_ts, dtype=np.int64) if any_rtp else None,
        addresses=address_column,
    )


class PacketStream:
    """An ordered sequence of packets backed by columnar numpy storage.

    The stream keeps packets sorted by timestamp (stable order for ties) and
    exposes the vectorised views (timestamp / payload-size arrays per
    direction) used heavily by the feature extraction code.  Object access
    (:meth:`__iter__` / :meth:`__getitem__`) materialises :class:`Packet`
    instances lazily from the columns.

    Appends are buffered and merged into the columns on the next read, so an
    out-of-order feed costs one stable sort per read burst rather than a full
    ``list.sort`` per packet.
    """

    __slots__ = ("_columns", "_pending", "_dir_cache")

    def __init__(self, packets: Optional[Iterable[Packet]] = None) -> None:
        if isinstance(packets, PacketColumns):
            self._columns = packets.sorted_by_time()
        elif packets is None:
            self._columns = PacketColumns.empty()
        else:
            self._columns = _columns_from_packets(packets).sorted_by_time()
        self._pending: List[Packet] = []
        self._dir_cache: Optional[dict] = None
        self._freeze()

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "PacketStream":
        """Build a stream from packet objects."""
        return cls(packets)

    @classmethod
    def from_columns(
        cls, columns: PacketColumns, assume_sorted: bool = False
    ) -> "PacketStream":
        """Build a stream directly from a columnar batch (no object loop).

        The batch's arrays are adopted by the stream and marked read-only;
        pass a copy if the caller needs to keep mutating its buffers.
        """
        stream = cls.__new__(cls)
        stream._columns = columns if assume_sorted else columns.sorted_by_time()
        stream._pending = []
        stream._dir_cache = None
        stream._freeze()
        return stream

    @classmethod
    def from_arrays(
        cls,
        timestamps,
        payload_sizes,
        directions,
        rtp_payload_type=None,
        rtp_ssrc=None,
        rtp_sequence=None,
        rtp_timestamp=None,
        addresses=None,
        assume_sorted: bool = False,
    ) -> "PacketStream":
        """Build a stream from raw arrays.

        ``directions`` may be an int-code array or a single
        :class:`Direction` applied to every row.  The input arrays are
        adopted by the stream and marked read-only (zero-copy ownership
        transfer); pass copies if the caller keeps mutating its buffers.
        """
        timestamps = np.asarray(timestamps, dtype=float)
        n = timestamps.size
        if isinstance(directions, Direction):
            directions = np.full(n, _DIRECTION_CODES[directions], dtype=np.int8)
        columns = PacketColumns(
            timestamps=timestamps,
            payload_sizes=np.asarray(payload_sizes, dtype=float),
            directions=np.asarray(directions, dtype=np.int8),
            rtp_payload_type=_as_int_column(rtp_payload_type, n),
            rtp_ssrc=_as_int_column(rtp_ssrc, n),
            rtp_sequence=_as_int_column(rtp_sequence, n),
            rtp_timestamp=_as_int_column(rtp_timestamp, n),
            addresses=_address_column(addresses, n),
        )
        return cls.from_columns(columns, assume_sorted=assume_sorted)

    # ------------------------------------------------------------- internals
    def _freeze(self) -> None:
        # the hot columns are shared with caches, child streams and callers;
        # mark them read-only so aliasing bugs fail loudly instead of
        # corrupting every view
        for column in (
            self._columns.timestamps,
            self._columns.payload_sizes,
            self._columns.directions,
        ):
            if column.base is None and column.flags.owndata:
                column.setflags(write=False)

    def _materialize(self) -> None:
        """Merge buffered appends into the sorted columns."""
        if not self._pending:
            return
        pending = _columns_from_packets(self._pending)
        self._pending = []
        merged = PacketColumns.concat([self._columns, pending])
        self._columns = merged.sorted_by_time()
        self._dir_cache = None
        self._freeze()

    def _invalidate(self) -> None:
        self._dir_cache = None

    def _dir_select(self, direction: Direction):
        """Cached (indices, timestamps, payload_sizes) of one direction."""
        self._materialize()
        code = _DIRECTION_CODES[direction]
        if self._dir_cache is None:
            self._dir_cache = {}
        selection = self._dir_cache.get(code)
        if selection is None:
            indices = np.flatnonzero(self._columns.directions == code)
            selection = (
                indices,
                self._columns.timestamps[indices],
                self._columns.payload_sizes[indices],
            )
            self._dir_cache[code] = selection
        return selection

    def _packet_at(self, row: int) -> Packet:
        cols = self._columns
        addr = DEFAULT_ADDRESS if cols.addresses is None else cols.addresses[row]

        def opt(column: Optional[np.ndarray]) -> Optional[int]:
            if column is None:
                return None
            value = int(column[row])
            return None if value == RTP_NONE else value

        return Packet(
            timestamp=float(cols.timestamps[row]),
            direction=_DIRECTIONS_BY_CODE[cols.directions[row]],
            payload_size=int(cols.payload_sizes[row]),
            src_ip=addr[0],
            dst_ip=addr[1],
            src_port=int(addr[2]),
            dst_port=int(addr[3]),
            protocol=addr[4],
            rtp_payload_type=opt(cols.rtp_payload_type),
            rtp_ssrc=opt(cols.rtp_ssrc),
            rtp_sequence=opt(cols.rtp_sequence),
            rtp_timestamp=opt(cols.rtp_timestamp),
        )

    # ------------------------------------------------------------ container
    def __len__(self) -> int:
        return len(self._columns) + len(self._pending)

    def __iter__(self) -> Iterator[Packet]:
        self._materialize()
        for row in range(len(self._columns)):
            yield self._packet_at(row)

    def __getitem__(self, index):
        self._materialize()
        if isinstance(index, slice):
            return [self._packet_at(row) for row in range(*index.indices(len(self._columns)))]
        n = len(self._columns)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("packet index out of range")
        return self._packet_at(index)

    def append(self, packet: Packet) -> None:
        """Append a packet, keeping timestamp order.

        Out-of-order appends no longer trigger a per-packet ``list.sort``:
        packets are buffered and merged with one stable sort at the next
        read, so a fully reversed feed costs O(n log n) total instead of
        O(n^2 log n).
        """
        self._pending.append(packet)
        self._invalidate()

    def extend(self, packets: Iterable[Packet]) -> None:
        """Append many packets; they are merged (and sorted) on next read."""
        self._pending.extend(packets)
        self._invalidate()

    # ------------------------------------------------------------- filtering
    def filter_direction(self, direction: Direction) -> "PacketStream":
        """Return a stream containing only packets in ``direction``.

        The timestamp/size columns of the result are the lazily-cached
        per-direction views, so repeated filtering is O(1) after the first
        call.
        """
        indices, times, sizes = self._dir_select(direction)
        child = PacketColumns(
            timestamps=times,  # the cached per-direction views, not copies
            payload_sizes=sizes,
            directions=np.full(indices.size, _DIRECTION_CODES[direction], dtype=np.int8),
            **self._columns.take_optional(indices),
        )
        return PacketStream.from_columns(child, assume_sorted=True)

    def between(self, start: float, end: float) -> "PacketStream":
        """Return packets with ``start <= timestamp < end`` (zero-copy views)."""
        if end < start:
            raise ValueError(f"end ({end}) must not precede start ({start})")
        self._materialize()
        ts = self._columns.timestamps
        lo = int(np.searchsorted(ts, start, side="left"))
        hi = int(np.searchsorted(ts, end, side="left"))
        window = self._columns.take(slice(lo, hi))
        return PacketStream.from_columns(window, assume_sorted=True)

    def first_seconds(self, seconds: float) -> "PacketStream":
        """Return packets from the first ``seconds`` of the stream."""
        self._materialize()
        if not len(self._columns):
            return PacketStream()
        origin = float(self._columns.timestamps[0])
        return self.between(origin, origin + seconds)

    # ------------------------------------------------------------ vector views
    def timestamps(self, direction: Optional[Direction] = None) -> np.ndarray:
        """Timestamps as a float array, optionally filtered by direction.

        Returns a (read-only) view over the columnar storage — no per-packet
        work.  Copy before mutating.
        """
        self._materialize()
        if direction is None:
            return self._columns.timestamps
        return self._dir_select(direction)[1]

    def payload_sizes(self, direction: Optional[Direction] = None) -> np.ndarray:
        """Payload sizes as a float array, optionally filtered by direction."""
        self._materialize()
        if direction is None:
            return self._columns.payload_sizes
        return self._dir_select(direction)[2]

    def direction_codes(self) -> np.ndarray:
        """The int8 direction column (0=downstream, 1=upstream)."""
        self._materialize()
        return self._columns.directions

    def direction_indices(self, direction: Direction) -> np.ndarray:
        """Row indices of one direction (cached alongside the views)."""
        return self._dir_select(direction)[0]

    def columns(self) -> PacketColumns:
        """The underlying (sorted) columnar batch."""
        self._materialize()
        return self._columns

    def rtp_sequences(self, direction: Optional[Direction] = None) -> np.ndarray:
        """RTP sequence numbers of RTP packets, in arrival order."""
        self._materialize()
        column = self._columns.rtp_sequence
        if column is None:
            return np.array([], dtype=np.int64)
        if direction is not None:
            column = column[self._dir_select(direction)[0]]
        return column[column != RTP_NONE]

    def rtp_timestamps(self, direction: Optional[Direction] = None) -> np.ndarray:
        """RTP timestamps of RTP packets, in arrival order."""
        self._materialize()
        column = self._columns.rtp_timestamp
        if column is None:
            return np.array([], dtype=np.int64)
        if direction is not None:
            column = column[self._dir_select(direction)[0]]
        return column[column != RTP_NONE]

    @property
    def has_rtp(self) -> bool:
        """Whether any packet carries an RTP SSRC."""
        self._materialize()
        column = self._columns.rtp_ssrc
        return column is not None and bool(np.any(column != RTP_NONE))

    # ------------------------------------------------------------ aggregates
    @property
    def duration(self) -> float:
        """Span between the first and last packet, in seconds."""
        self._materialize()
        ts = self._columns.timestamps
        if ts.size < 2:
            return 0.0
        return float(ts[-1] - ts[0])

    @property
    def start_time(self) -> float:
        """Timestamp of the first packet (0.0 for an empty stream)."""
        self._materialize()
        ts = self._columns.timestamps
        return float(ts[0]) if ts.size else 0.0

    def total_bytes(self, direction: Optional[Direction] = None) -> int:
        """Sum of payload sizes, optionally per direction (columnar sum)."""
        return int(self.payload_sizes(direction).sum())

    def mean_throughput_mbps(self, direction: Optional[Direction] = None) -> float:
        """Mean payload throughput over the stream duration in Mbps."""
        if self.duration <= 0:
            return 0.0
        return self.total_bytes(direction) * 8 / self.duration / 1e6

    def packet_rate(self, direction: Optional[Direction] = None) -> float:
        """Mean packets per second over the stream duration."""
        if self.duration <= 0:
            return 0.0
        return self.timestamps(direction).size / self.duration

    def to_list(self) -> List[Packet]:
        """Materialise the stream as a list of :class:`Packet` objects."""
        return list(self)


def merge_streams(streams: Sequence[PacketStream]) -> PacketStream:
    """Merge several streams into one timestamp-ordered stream."""
    if not streams:
        return PacketStream()
    merged = PacketColumns.concat([stream.columns() for stream in streams])
    return PacketStream.from_columns(merged)
