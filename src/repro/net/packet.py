"""Packet-level primitives.

A :class:`Packet` is the atomic observation of the whole system: timestamp,
direction, payload size and transport metadata.  The classification pipeline
never needs payload bytes — only sizes, times and directions — which is what
allows the traffic simulator to substitute for real GeForce NOW captures (see
DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np


class Direction(Enum):
    """Direction of a packet relative to the game client."""

    DOWNSTREAM = "downstream"  # cloud server -> client (video/audio)
    UPSTREAM = "upstream"      # client -> cloud server (inputs)

    def flipped(self) -> "Direction":
        """Return the opposite direction."""
        if self is Direction.DOWNSTREAM:
            return Direction.UPSTREAM
        return Direction.DOWNSTREAM


@dataclass(frozen=True, slots=True)
class Packet:
    """A single observed packet.

    Attributes
    ----------
    timestamp:
        Seconds since the start of the capture (float, sub-millisecond
        resolution).
    direction:
        :class:`Direction` relative to the game client.
    payload_size:
        UDP payload size in bytes (the quantity plotted in Fig. 3).
    src_ip, dst_ip, src_port, dst_port, protocol:
        Transport 5-tuple; ``protocol`` is ``"udp"`` for RTP streaming flows.
    rtp_payload_type, rtp_ssrc, rtp_sequence, rtp_timestamp:
        Optional RTP header fields when the packet belongs to an RTP flow.
    """

    timestamp: float
    direction: Direction
    payload_size: int
    src_ip: str = "0.0.0.0"
    dst_ip: str = "0.0.0.0"
    src_port: int = 0
    dst_port: int = 0
    protocol: str = "udp"
    rtp_payload_type: Optional[int] = None
    rtp_ssrc: Optional[int] = None
    rtp_sequence: Optional[int] = None
    rtp_timestamp: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.timestamp}")
        if self.payload_size < 0:
            raise ValueError(
                f"payload_size must be non-negative, got {self.payload_size}"
            )
        if not 0 <= self.src_port <= 65535:
            raise ValueError(f"src_port out of range: {self.src_port}")
        if not 0 <= self.dst_port <= 65535:
            raise ValueError(f"dst_port out of range: {self.dst_port}")

    @property
    def wire_size(self) -> int:
        """Approximate on-wire size (payload + IPv4/UDP/RTP overhead)."""
        overhead = 20 + 8  # IPv4 + UDP
        if self.rtp_ssrc is not None:
            overhead += 12
        return self.payload_size + overhead

    def shifted(self, offset: float) -> "Packet":
        """Return a copy with the timestamp shifted by ``offset`` seconds."""
        return replace(self, timestamp=self.timestamp + offset)


class PacketStream:
    """An ordered sequence of packets with convenience accessors.

    The stream keeps packets sorted by timestamp and exposes vectorised views
    (numpy arrays of timestamps and sizes per direction) used heavily by the
    feature extraction code.
    """

    def __init__(self, packets: Optional[Iterable[Packet]] = None) -> None:
        self._packets: List[Packet] = sorted(packets or [], key=lambda p: p.timestamp)

    # ------------------------------------------------------------ container
    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def __getitem__(self, index):
        return self._packets[index]

    def append(self, packet: Packet) -> None:
        """Append a packet, keeping timestamp order."""
        if self._packets and packet.timestamp < self._packets[-1].timestamp:
            self._packets.append(packet)
            self._packets.sort(key=lambda p: p.timestamp)
        else:
            self._packets.append(packet)

    def extend(self, packets: Iterable[Packet]) -> None:
        """Append many packets and re-sort once."""
        self._packets.extend(packets)
        self._packets.sort(key=lambda p: p.timestamp)

    # ------------------------------------------------------------- filtering
    def filter_direction(self, direction: Direction) -> "PacketStream":
        """Return a new stream containing only packets in ``direction``."""
        return PacketStream(p for p in self._packets if p.direction is direction)

    def between(self, start: float, end: float) -> "PacketStream":
        """Return packets with ``start <= timestamp < end``."""
        if end < start:
            raise ValueError(f"end ({end}) must not precede start ({start})")
        return PacketStream(
            p for p in self._packets if start <= p.timestamp < end
        )

    def first_seconds(self, seconds: float) -> "PacketStream":
        """Return packets from the first ``seconds`` of the stream."""
        if not self._packets:
            return PacketStream()
        origin = self._packets[0].timestamp
        return self.between(origin, origin + seconds)

    # ------------------------------------------------------------ vector views
    def timestamps(self, direction: Optional[Direction] = None) -> np.ndarray:
        """Timestamps as a float array, optionally filtered by direction."""
        return np.array(
            [
                p.timestamp
                for p in self._packets
                if direction is None or p.direction is direction
            ],
            dtype=float,
        )

    def payload_sizes(self, direction: Optional[Direction] = None) -> np.ndarray:
        """Payload sizes as a float array, optionally filtered by direction."""
        return np.array(
            [
                p.payload_size
                for p in self._packets
                if direction is None or p.direction is direction
            ],
            dtype=float,
        )

    # ------------------------------------------------------------ aggregates
    @property
    def duration(self) -> float:
        """Span between the first and last packet, in seconds."""
        if len(self._packets) < 2:
            return 0.0
        return self._packets[-1].timestamp - self._packets[0].timestamp

    @property
    def start_time(self) -> float:
        """Timestamp of the first packet (0.0 for an empty stream)."""
        return self._packets[0].timestamp if self._packets else 0.0

    def total_bytes(self, direction: Optional[Direction] = None) -> int:
        """Sum of payload sizes, optionally per direction."""
        return int(
            sum(
                p.payload_size
                for p in self._packets
                if direction is None or p.direction is direction
            )
        )

    def mean_throughput_mbps(self, direction: Optional[Direction] = None) -> float:
        """Mean payload throughput over the stream duration in Mbps."""
        if self.duration <= 0:
            return 0.0
        return self.total_bytes(direction) * 8 / self.duration / 1e6

    def packet_rate(self, direction: Optional[Direction] = None) -> float:
        """Mean packets per second over the stream duration."""
        if self.duration <= 0:
            return 0.0
        count = sum(
            1 for p in self._packets if direction is None or p.direction is direction
        )
        return count / self.duration

    def to_list(self) -> List[Packet]:
        """Return a shallow copy of the underlying packet list."""
        return list(self._packets)


def merge_streams(streams: Sequence[PacketStream]) -> PacketStream:
    """Merge several streams into one timestamp-ordered stream."""
    merged = PacketStream()
    for stream in streams:
        merged.extend(stream)
    return merged
