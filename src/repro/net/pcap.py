"""Classic libpcap file reading and writing.

The lab methodology of the paper captures sessions with Wireshark/TCPdump
into PCAP files (§3.1).  This module implements the classic libpcap container
(magic ``0xa1b2c3d4``, microsecond timestamps) plus minimal Ethernet/IPv4/UDP
encapsulation so that synthetic sessions can be round-tripped through real
PCAP bytes and, conversely, real captures of RTP/UDP traffic can be loaded
into :class:`~repro.net.packet.PacketStream` objects.

Two read paths are provided:

* :func:`read_pcap` — the object path, returning ``List[Packet]``;
* :func:`read_pcap_columns` / :func:`read_pcap_stream` — the columnar fast
  path, decoding all capture records into one
  :class:`~repro.net.packet.PacketColumns` batch with vectorised header
  field extraction (no per-packet :class:`Packet` objects), which keeps
  real-capture ingestion on the same batch substrate as the synthetic
  generators.

Both paths tolerate hostile input — truncated records, short frames, wrong
link-layer/IP lengths, mangled RTP — by skipping (or, for RTP, demoting to
non-RTP columns) rather than raising; pass a :class:`ParseStats` to account
every skipped record by reason.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.net.packet import (
    DEFAULT_ADDRESS,
    DOWNSTREAM_CODE,
    Direction,
    Packet,
    PacketColumns,
    PacketStream,
    RTP_NONE,
    UPSTREAM_CODE,
)
from repro.net.rtp import RTPHeader, RTP_VERSION, looks_like_rtp, parse_rtp_payload

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_VERSION_MAJOR = 2
PCAP_VERSION_MINOR = 4
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_ETH_HEADER_LEN = 14
_IPV4_MIN_HEADER_LEN = 20
_UDP_HEADER_LEN = 8
_ETHERTYPE_IPV4 = 0x0800
_IPPROTO_UDP = 17


@dataclass
class ParseStats:
    """Accounting of what a capture read kept, skipped and repaired.

    Hostile or damaged captures (probe overruns, middlebox mangling, link
    types this decoder does not speak) must never crash ingestion *or*
    disappear silently: pass an instance to :func:`read_pcap_columns` /
    :func:`iter_pcap_column_batches` / :func:`read_pcap_stream` and every
    record is accounted either as decoded or under exactly one skip/repair
    counter.  Counters accumulate, so one instance can total several files
    (or every batch of a chunked read).
    """

    #: records with complete headers and frame bytes (scanner output)
    n_records: int = 0
    #: rows that decoded into columns
    n_decoded: int = 0
    #: trailing records cut off mid-header or mid-frame (dropped by the scan)
    truncated_records: int = 0
    #: frames shorter than Ethernet + minimal IPv4 + UDP headers
    short_frames: int = 0
    #: non-IPv4 ethertypes (ARP, IPv6, VLAN, ...)
    non_ipv4: int = 0
    #: IPv4 but not UDP (TCP, ICMP, ...)
    non_udp: int = 0
    #: IHL below 20 bytes, or frame too short for the IHL it claims
    bad_ip_header: int = 0
    #: UDP length field smaller than the UDP header itself
    bad_udp_length: int = 0
    #: RTP version bits present but the payload is too short for a full
    #: header — the row is *kept* with non-RTP columns, not skipped
    malformed_rtp: int = 0

    @property
    def n_skipped(self) -> int:
        """Complete records that decoded to no row (truncation not included)."""
        return (
            self.short_frames
            + self.non_ipv4
            + self.non_udp
            + self.bad_ip_header
            + self.bad_udp_length
        )


def _ip_to_bytes(ip: str) -> bytes:
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {ip!r}")
    try:
        values = [int(part) for part in parts]
    except ValueError as exc:
        raise ValueError(f"invalid IPv4 address {ip!r}") from exc
    if any(not 0 <= value <= 255 for value in values):
        raise ValueError(f"invalid IPv4 address {ip!r}")
    return bytes(values)


def _bytes_to_ip(data: bytes) -> str:
    return ".".join(str(b) for b in data)


def _checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _encapsulate(packet: Packet, payload: bytes) -> bytes:
    """Wrap a payload in Ethernet/IPv4/UDP headers for the given packet."""
    eth = b"\x02" * 6 + b"\x04" * 6 + struct.pack("!H", _ETHERTYPE_IPV4)
    udp_length = _UDP_HEADER_LEN + len(payload)
    total_length = _IPV4_MIN_HEADER_LEN + udp_length
    ip_header_wo_checksum = struct.pack(
        "!BBHHHBBH4s4s",
        0x45,
        0,
        total_length,
        0,
        0,
        64,
        _IPPROTO_UDP,
        0,
        _ip_to_bytes(packet.src_ip),
        _ip_to_bytes(packet.dst_ip),
    )
    checksum = _checksum(ip_header_wo_checksum)
    ip_header = ip_header_wo_checksum[:10] + struct.pack("!H", checksum) + ip_header_wo_checksum[12:]
    udp_header = struct.pack(
        "!HHHH", packet.src_port, packet.dst_port, udp_length, 0
    )
    return eth + ip_header + udp_header + payload


def _synthesise_payload(packet: Packet) -> bytes:
    """Produce payload bytes for a packet (RTP header + zero padding)."""
    if packet.rtp_ssrc is not None:
        header = RTPHeader(
            payload_type=packet.rtp_payload_type or 96,
            sequence_number=(packet.rtp_sequence or 0) & 0xFFFF,
            timestamp=(packet.rtp_timestamp or 0) & 0xFFFFFFFF,
            ssrc=packet.rtp_ssrc & 0xFFFFFFFF,
        )
        body_len = max(0, packet.payload_size - len(header.encode()))
        return header.encode() + bytes(body_len)
    return bytes(packet.payload_size)


def write_pcap(
    path: Union[str, Path],
    packets: Iterable[Packet],
    snaplen: int = 65535,
) -> int:
    """Write packets to a classic PCAP file.

    Returns the number of records written.  Packets are emitted in timestamp
    order regardless of input order.
    """
    path = Path(path)
    ordered = sorted(packets, key=lambda p: p.timestamp)
    with path.open("wb") as handle:
        handle.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                PCAP_VERSION_MAJOR,
                PCAP_VERSION_MINOR,
                0,
                0,
                snaplen,
                LINKTYPE_ETHERNET,
            )
        )
        for packet in ordered:
            frame = _encapsulate(packet, _synthesise_payload(packet))
            seconds = int(packet.timestamp)
            microseconds = int(round((packet.timestamp - seconds) * 1_000_000))
            if microseconds >= 1_000_000:
                seconds += 1
                microseconds -= 1_000_000
            captured = frame[:snaplen]
            handle.write(
                _RECORD_HEADER.pack(seconds, microseconds, len(captured), len(frame))
            )
            handle.write(captured)
    return len(ordered)


def read_pcap(
    path: Union[str, Path],
    client_ip: Optional[str] = None,
) -> List[Packet]:
    """Read a classic PCAP file back into :class:`Packet` records.

    Parameters
    ----------
    client_ip:
        IP address of the game client; packets sourced from it are labeled
        upstream, everything else downstream.  When omitted, the most common
        destination address of large packets is assumed to be the client.

    Notes
    -----
    Only Ethernet/IPv4/UDP frames are decoded; other frames are skipped.
    """
    path = Path(path)
    raw_records: List[tuple[float, bytes]] = []
    with path.open("rb") as handle:
        header = handle.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError(f"{path} is not a valid pcap file (truncated header)")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC:
            record_struct = _RECORD_HEADER
        elif magic == PCAP_MAGIC_SWAPPED:
            record_struct = struct.Struct(">IIII")
        else:
            raise ValueError(f"{path} is not a classic pcap file (magic {magic:#x})")
        while True:
            record_header = handle.read(record_struct.size)
            if len(record_header) < record_struct.size:
                break
            seconds, microseconds, captured_len, _original_len = record_struct.unpack(
                record_header
            )
            data = handle.read(captured_len)
            if len(data) < captured_len:
                break
            raw_records.append((seconds + microseconds / 1_000_000, data))

    decoded: List[tuple[float, str, str, int, int, int, Optional[RTPHeader]]] = []
    for timestamp, frame in raw_records:
        parsed = _decode_frame(frame)
        if parsed is not None:
            decoded.append((timestamp,) + parsed)

    if client_ip is None:
        client_ip = _infer_client_ip(decoded)

    packets: List[Packet] = []
    for timestamp, src_ip, dst_ip, src_port, dst_port, payload_len, rtp in decoded:
        direction = (
            Direction.UPSTREAM if src_ip == client_ip else Direction.DOWNSTREAM
        )
        packets.append(
            Packet(
                timestamp=timestamp,
                direction=direction,
                payload_size=payload_len,
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_port=src_port,
                dst_port=dst_port,
                protocol="udp",
                rtp_payload_type=rtp.payload_type if rtp else None,
                rtp_ssrc=rtp.ssrc if rtp else None,
                rtp_sequence=rtp.sequence_number if rtp else None,
                rtp_timestamp=rtp.timestamp if rtp else None,
            )
        )
    return packets


def _decode_frame(frame: bytes):
    """Decode one Ethernet/IPv4/UDP frame; return None when not decodable."""
    if len(frame) < _ETH_HEADER_LEN + _IPV4_MIN_HEADER_LEN + _UDP_HEADER_LEN:
        return None
    ethertype = struct.unpack("!H", frame[12:14])[0]
    if ethertype != _ETHERTYPE_IPV4:
        return None
    ip_start = _ETH_HEADER_LEN
    version_ihl = frame[ip_start]
    ihl = (version_ihl & 0x0F) * 4
    protocol = frame[ip_start + 9]
    if protocol != _IPPROTO_UDP:
        return None
    if ihl < _IPV4_MIN_HEADER_LEN:
        # a corrupt IHL would misplace every later field (columnar parity)
        return None
    src_ip = _bytes_to_ip(frame[ip_start + 12 : ip_start + 16])
    dst_ip = _bytes_to_ip(frame[ip_start + 16 : ip_start + 20])
    udp_start = ip_start + ihl
    if len(frame) < udp_start + _UDP_HEADER_LEN:
        return None
    src_port, dst_port, udp_length, _checksum_field = struct.unpack(
        "!HHHH", frame[udp_start : udp_start + _UDP_HEADER_LEN]
    )
    if udp_length < _UDP_HEADER_LEN:
        # mangled datagram, not an empty one (columnar parity)
        return None
    payload = frame[udp_start + _UDP_HEADER_LEN :]
    payload_len = udp_length - _UDP_HEADER_LEN
    rtp = None
    if looks_like_rtp(payload):
        try:
            rtp, _body = parse_rtp_payload(payload)
        except ValueError:
            rtp = None
    return src_ip, dst_ip, src_port, dst_port, payload_len, rtp


def _infer_client_ip(decoded) -> str:
    """Guess the client address: the endpoint receiving the most bytes."""
    received: dict[str, int] = {}
    for _ts, _src, dst_ip, _sp, _dp, payload_len, _rtp in decoded:
        received[dst_ip] = received.get(dst_ip, 0) + payload_len
    if not received:
        return "0.0.0.0"
    return max(received, key=received.get)


# ---------------------------------------------------------------------------
# columnar fast path
# ---------------------------------------------------------------------------
def _scan_records(data: bytes, source: str = "buffer", stats: Optional[ParseStats] = None):
    """Walk the record headers of a classic pcap byte buffer.

    Returns ``(timestamps, frame_offsets, frame_lengths)`` as numpy arrays
    (float64 seconds and int64 byte offsets/lengths into ``data``).  Only the
    16-byte record headers are touched — frame decoding happens vectorised
    afterwards.  Truncated trailing records are dropped, exactly like
    :func:`read_pcap`; ``stats`` (when given) counts them.
    """
    if len(data) < _GLOBAL_HEADER.size:
        raise ValueError(f"{source} is not a valid pcap file (truncated header)")
    magic = struct.unpack("<I", data[:4])[0]
    if magic == PCAP_MAGIC:
        record_struct = _RECORD_HEADER
    elif magic == PCAP_MAGIC_SWAPPED:
        record_struct = struct.Struct(">IIII")
    else:
        raise ValueError(f"{source} is not a classic pcap file (magic {magic:#x})")

    seconds: List[int] = []
    microseconds: List[int] = []
    offsets: List[int] = []
    lengths: List[int] = []
    header_size = record_struct.size
    position = _GLOBAL_HEADER.size
    end = len(data)
    while position + header_size <= end:
        secs, usecs, captured_len, _original_len = record_struct.unpack_from(
            data, position
        )
        frame_start = position + header_size
        if frame_start + captured_len > end:
            break
        seconds.append(secs)
        microseconds.append(usecs)
        offsets.append(frame_start)
        lengths.append(captured_len)
        position = frame_start + captured_len
    if stats is not None:
        stats.n_records += len(offsets)
        if position < end:
            # trailing bytes form a record cut off mid-header or mid-frame
            stats.truncated_records += 1
    timestamps = np.asarray(seconds, dtype=float) + np.asarray(
        microseconds, dtype=float
    ) / 1_000_000
    return (
        timestamps,
        np.asarray(offsets, dtype=np.int64),
        np.asarray(lengths, dtype=np.int64),
    )


def _u32_to_ip(value: int) -> str:
    return f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"


def read_pcap_columns(
    path: Union[str, Path],
    client_ip: Optional[str] = None,
    stats: Optional[ParseStats] = None,
) -> PacketColumns:
    """Read a classic PCAP file straight into a :class:`PacketColumns` batch.

    The columnar counterpart of :func:`read_pcap`: every Ethernet/IPv4/UDP
    header field of every record is extracted with vectorised byte gathers
    over the capture buffer — no per-packet :class:`Packet` (or RTP header)
    objects are built.  Field values, record order, RTP columns and the
    inferred client address match :func:`read_pcap` exactly.

    Parameters
    ----------
    client_ip:
        IP address of the game client; packets sourced from it are labeled
        upstream, everything else downstream.  When omitted, the endpoint
        receiving the most payload bytes is assumed to be the client (ties
        break toward the address seen earliest, as in :func:`read_pcap`).
    stats:
        Optional :class:`ParseStats` accumulating skip/repair counters; on a
        well-formed capture of UDP traffic it ends with
        ``n_decoded == n_records`` and every other counter zero.

    Returns
    -------
    PacketColumns
        One row per decodable UDP frame, in file (capture) order:
        ``timestamps`` float64 seconds, ``payload_sizes`` float64 (UDP
        payload bytes), ``directions`` int8, int64 ``rtp_*`` columns with
        :data:`~repro.net.packet.RTP_NONE` for non-RTP rows (``None`` when
        no row carries RTP), and per-row transport 5-tuples in ``addresses``.
    """
    path = Path(path)
    data = path.read_bytes()
    timestamps, offsets, lengths = _scan_records(data, source=str(path), stats=stats)
    client_u32 = (
        None if client_ip is None else int.from_bytes(_ip_to_bytes(client_ip), "big")
    )
    columns, _ = _decode_records(
        data, timestamps, offsets, lengths, client_u32, stats=stats
    )
    return columns


def _decode_records(
    data: bytes,
    timestamps: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    client_u32: Optional[int] = None,
    stats: Optional[ParseStats] = None,
):
    """Vectorised Ethernet/IPv4/UDP/RTP decode of a span of capture records.

    The decode core shared by :func:`read_pcap_columns` (whole capture) and
    :func:`iter_pcap_column_batches` (successive spans).  Returns
    ``(columns, client_u32)``; when ``client_u32`` is ``None`` the client is
    inferred from *these* records (most payload bytes received,
    earliest-seen tie-break) and the inferred value is returned so chunked
    callers can pin it for subsequent spans.  Undecodable records are
    skipped, each under exactly one ``stats`` counter when given.
    """
    buf = np.frombuffer(data, dtype=np.uint8)
    n_bytes = buf.size

    def gather(byte_offsets: np.ndarray) -> np.ndarray:
        """Byte values at ``byte_offsets``, clamped in-range (int64).

        Clamping keeps gathers for frames that fail an earlier validity
        check in bounds; those rows are discarded by the final mask.
        """
        return buf[np.minimum(byte_offsets, n_bytes - 1)].astype(np.int64)

    # staged validity masks: a record failing stage N is charged to that
    # stage's counter alone, so every skip has exactly one reason
    minimum_frame = _ETH_HEADER_LEN + _IPV4_MIN_HEADER_LEN + _UDP_HEADER_LEN
    long_enough = lengths >= minimum_frame
    ethertype = (gather(offsets + 12) << 8) | gather(offsets + 13)
    ipv4 = long_enough & (ethertype == _ETHERTYPE_IPV4)
    ip_start = offsets + _ETH_HEADER_LEN
    ihl = (gather(ip_start) & 0x0F) * 4
    udp = ipv4 & (gather(ip_start + 9) == _IPPROTO_UDP)
    # a corrupt IHL would misplace every later field, silently decoding
    # garbage ports/payloads: require a sane header that fits the frame
    sane_ip = udp & (ihl >= _IPV4_MIN_HEADER_LEN)
    src_u32 = (
        (gather(ip_start + 12) << 24)
        | (gather(ip_start + 13) << 16)
        | (gather(ip_start + 14) << 8)
        | gather(ip_start + 15)
    )
    dst_u32 = (
        (gather(ip_start + 16) << 24)
        | (gather(ip_start + 17) << 16)
        | (gather(ip_start + 18) << 8)
        | gather(ip_start + 19)
    )
    udp_start = ip_start + ihl
    sane_ip &= lengths >= _ETH_HEADER_LEN + ihl + _UDP_HEADER_LEN
    src_ports = (gather(udp_start) << 8) | gather(udp_start + 1)
    dst_ports = (gather(udp_start + 2) << 8) | gather(udp_start + 3)
    udp_lengths = (gather(udp_start + 4) << 8) | gather(udp_start + 5)
    # a UDP length below its own header size is a mangled datagram, not an
    # empty one — skip it rather than clamp it to a zero-payload row
    ok = sane_ip & (udp_lengths >= _UDP_HEADER_LEN)
    payload_sizes = np.maximum(0, udp_lengths - _UDP_HEADER_LEN)

    payload_start = udp_start + _UDP_HEADER_LEN
    payload_avail = offsets + lengths - payload_start
    first_byte = gather(payload_start)
    rtp_version_bits = (first_byte >> 6) == RTP_VERSION
    is_rtp = ok & (payload_avail >= 12) & rtp_version_bits
    rtp_payload_type = np.where(is_rtp, gather(payload_start + 1) & 0x7F, RTP_NONE)
    rtp_sequence = np.where(
        is_rtp, (gather(payload_start + 2) << 8) | gather(payload_start + 3), RTP_NONE
    )
    rtp_timestamp = np.where(
        is_rtp,
        (gather(payload_start + 4) << 24)
        | (gather(payload_start + 5) << 16)
        | (gather(payload_start + 6) << 8)
        | gather(payload_start + 7),
        RTP_NONE,
    )
    rtp_ssrc = np.where(
        is_rtp,
        (gather(payload_start + 8) << 24)
        | (gather(payload_start + 9) << 16)
        | (gather(payload_start + 10) << 8)
        | gather(payload_start + 11),
        RTP_NONE,
    )

    if stats is not None:
        stats.n_decoded += int(np.count_nonzero(ok))
        stats.short_frames += int(np.count_nonzero(~long_enough))
        stats.non_ipv4 += int(np.count_nonzero(long_enough & ~ipv4))
        stats.non_udp += int(np.count_nonzero(ipv4 & ~udp))
        stats.bad_ip_header += int(np.count_nonzero(udp & ~sane_ip))
        stats.bad_udp_length += int(np.count_nonzero(sane_ip & ~ok))
        stats.malformed_rtp += int(
            np.count_nonzero(ok & rtp_version_bits & (payload_avail >= 1) & ~is_rtp)
        )

    keep = np.flatnonzero(ok)
    timestamps = timestamps[keep]
    payload_sizes = payload_sizes[keep].astype(float)
    src_u32, dst_u32 = src_u32[keep], dst_u32[keep]
    src_ports, dst_ports = src_ports[keep], dst_ports[keep]
    is_rtp = is_rtp[keep]

    if client_u32 is None:
        client_u32 = _infer_client_u32(dst_u32, payload_sizes)
    directions = np.where(src_u32 == client_u32, UPSTREAM_CODE, DOWNSTREAM_CODE).astype(
        np.int8
    )

    addresses = _address_tuples(src_u32, dst_u32, src_ports, dst_ports)
    any_rtp = bool(is_rtp.any())
    columns = PacketColumns(
        timestamps=timestamps,
        payload_sizes=payload_sizes,
        directions=directions,
        rtp_payload_type=rtp_payload_type[keep] if any_rtp else None,
        rtp_ssrc=rtp_ssrc[keep] if any_rtp else None,
        rtp_sequence=rtp_sequence[keep] if any_rtp else None,
        rtp_timestamp=rtp_timestamp[keep] if any_rtp else None,
        addresses=addresses,
    )
    return columns, client_u32


def iter_pcap_column_batches(
    path: Union[str, Path],
    batch_packets: int = 50_000,
    batch_seconds: Optional[float] = None,
    client_ip: Optional[str] = None,
    stats: Optional[ParseStats] = None,
):
    """Decode a capture into successive :class:`PacketColumns` batches.

    A live-feed adapter for the streaming runtime: the capture's record
    headers are scanned once, then records decode lazily span by span with
    the same vectorised byte gathers as :func:`read_pcap_columns` — a
    multi-gigabyte capture never materialises as one batch.  Concatenating
    every yielded batch reproduces :func:`read_pcap_columns` of the whole
    file exactly (given the same ``client_ip``).

    Parameters
    ----------
    batch_packets:
        Records per batch (ignored when ``batch_seconds`` is given).
    batch_seconds:
        Split batches on capture-time boundaries instead of record counts
        (assumes the usual capture-order, non-decreasing timestamps).
    client_ip:
        IP address of the game client.  When omitted it is inferred from the
        *first* batch (the whole-file reader infers from all records; supply
        it explicitly when the capture opens with unrepresentative traffic).
    stats:
        Optional :class:`ParseStats`; skip counters accumulate batch by
        batch as spans decode (truncation is counted up front by the scan).
    """
    if batch_packets <= 0:
        raise ValueError(f"batch_packets must be positive, got {batch_packets}")
    if batch_seconds is not None and batch_seconds <= 0:
        raise ValueError(f"batch_seconds must be positive, got {batch_seconds}")
    path = Path(path)
    data = path.read_bytes()
    timestamps, offsets, lengths = _scan_records(data, source=str(path), stats=stats)
    n_records = timestamps.size
    client_u32 = (
        None if client_ip is None else int.from_bytes(_ip_to_bytes(client_ip), "big")
    )
    if n_records == 0:
        return
    if batch_seconds is None:
        bounds = list(range(0, n_records, batch_packets)) + [n_records]
    else:
        origin = float(timestamps[0])
        last = float(timestamps[-1])
        edges = origin + batch_seconds * np.arange(
            1, int(np.ceil(max(last - origin, 0.0) / batch_seconds)) + 1
        )
        bounds = [0] + [int(i) for i in np.searchsorted(timestamps, edges, side="left")] + [n_records]
    for start, end in zip(bounds[:-1], bounds[1:]):
        if end <= start:
            continue
        span = slice(start, end)
        columns, client_u32 = _decode_records(
            data, timestamps[span], offsets[span], lengths[span], client_u32,
            stats=stats,
        )
        if len(columns):
            yield columns


def _infer_client_u32(dst_u32: np.ndarray, payload_sizes: np.ndarray) -> int:
    """Vectorised :func:`_infer_client_ip` on integer-coded addresses.

    The endpoint receiving the most payload bytes wins; ties break toward
    the destination seen earliest in the capture, matching the dict
    insertion-order semantics of the object path.
    """
    if dst_u32.size == 0:
        return 0
    unique, first_seen, inverse = np.unique(
        dst_u32, return_index=True, return_inverse=True
    )
    received = np.bincount(inverse, weights=payload_sizes)
    candidates = np.flatnonzero(received == received.max())
    winner = candidates[np.argmin(first_seen[candidates])]
    return int(unique[winner])


def _address_tuples(
    src_u32: np.ndarray,
    dst_u32: np.ndarray,
    src_ports: np.ndarray,
    dst_ports: np.ndarray,
) -> Optional[np.ndarray]:
    """Per-row transport 5-tuples, interned per distinct flow.

    String formatting happens once per distinct ``(src, dst, sport, dport)``
    combination (a handful of flows in a capture), then rows are assigned by
    inverse indices.  Returns ``None`` when every row carries the default
    address, matching the object-path column layout.
    """
    if src_u32.size == 0:
        return None
    flows = np.stack([src_u32, dst_u32, src_ports, dst_ports], axis=1)
    unique, inverse = np.unique(flows, axis=0, return_inverse=True)
    tuples = np.empty(unique.shape[0], dtype=object)
    for index, (src, dst, sport, dport) in enumerate(unique.tolist()):
        tuples[index] = (_u32_to_ip(src), _u32_to_ip(dst), int(sport), int(dport), "udp")
    if unique.shape[0] == 1 and tuples[0] == DEFAULT_ADDRESS:
        return None
    return tuples[inverse]


def read_pcap_stream(
    path: Union[str, Path],
    client_ip: Optional[str] = None,
    stats: Optional[ParseStats] = None,
) -> PacketStream:
    """Read a PCAP file into a :class:`PacketStream` on the columnar path.

    Convenience wrapper over :func:`read_pcap_columns`; equivalent to
    ``PacketStream(read_pcap(path, client_ip))`` without ever materialising
    :class:`Packet` objects.
    """
    return PacketStream.from_columns(
        read_pcap_columns(path, client_ip=client_ip, stats=stats)
    )
