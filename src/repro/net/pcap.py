"""Classic libpcap file reading and writing.

The lab methodology of the paper captures sessions with Wireshark/TCPdump
into PCAP files (§3.1).  This module implements the classic libpcap container
(magic ``0xa1b2c3d4``, microsecond timestamps) plus minimal Ethernet/IPv4/UDP
encapsulation so that synthetic sessions can be round-tripped through real
PCAP bytes and, conversely, real captures of RTP/UDP traffic can be loaded
into :class:`~repro.net.packet.PacketStream` objects.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.net.packet import Direction, Packet
from repro.net.rtp import RTPHeader, looks_like_rtp, parse_rtp_payload

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_VERSION_MAJOR = 2
PCAP_VERSION_MINOR = 4
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_ETH_HEADER_LEN = 14
_IPV4_MIN_HEADER_LEN = 20
_UDP_HEADER_LEN = 8
_ETHERTYPE_IPV4 = 0x0800
_IPPROTO_UDP = 17


def _ip_to_bytes(ip: str) -> bytes:
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {ip!r}")
    try:
        values = [int(part) for part in parts]
    except ValueError as exc:
        raise ValueError(f"invalid IPv4 address {ip!r}") from exc
    if any(not 0 <= value <= 255 for value in values):
        raise ValueError(f"invalid IPv4 address {ip!r}")
    return bytes(values)


def _bytes_to_ip(data: bytes) -> str:
    return ".".join(str(b) for b in data)


def _checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _encapsulate(packet: Packet, payload: bytes) -> bytes:
    """Wrap a payload in Ethernet/IPv4/UDP headers for the given packet."""
    eth = b"\x02" * 6 + b"\x04" * 6 + struct.pack("!H", _ETHERTYPE_IPV4)
    udp_length = _UDP_HEADER_LEN + len(payload)
    total_length = _IPV4_MIN_HEADER_LEN + udp_length
    ip_header_wo_checksum = struct.pack(
        "!BBHHHBBH4s4s",
        0x45,
        0,
        total_length,
        0,
        0,
        64,
        _IPPROTO_UDP,
        0,
        _ip_to_bytes(packet.src_ip),
        _ip_to_bytes(packet.dst_ip),
    )
    checksum = _checksum(ip_header_wo_checksum)
    ip_header = ip_header_wo_checksum[:10] + struct.pack("!H", checksum) + ip_header_wo_checksum[12:]
    udp_header = struct.pack(
        "!HHHH", packet.src_port, packet.dst_port, udp_length, 0
    )
    return eth + ip_header + udp_header + payload


def _synthesise_payload(packet: Packet) -> bytes:
    """Produce payload bytes for a packet (RTP header + zero padding)."""
    if packet.rtp_ssrc is not None:
        header = RTPHeader(
            payload_type=packet.rtp_payload_type or 96,
            sequence_number=(packet.rtp_sequence or 0) & 0xFFFF,
            timestamp=(packet.rtp_timestamp or 0) & 0xFFFFFFFF,
            ssrc=packet.rtp_ssrc & 0xFFFFFFFF,
        )
        body_len = max(0, packet.payload_size - len(header.encode()))
        return header.encode() + bytes(body_len)
    return bytes(packet.payload_size)


def write_pcap(
    path: Union[str, Path],
    packets: Iterable[Packet],
    snaplen: int = 65535,
) -> int:
    """Write packets to a classic PCAP file.

    Returns the number of records written.  Packets are emitted in timestamp
    order regardless of input order.
    """
    path = Path(path)
    ordered = sorted(packets, key=lambda p: p.timestamp)
    with path.open("wb") as handle:
        handle.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                PCAP_VERSION_MAJOR,
                PCAP_VERSION_MINOR,
                0,
                0,
                snaplen,
                LINKTYPE_ETHERNET,
            )
        )
        for packet in ordered:
            frame = _encapsulate(packet, _synthesise_payload(packet))
            seconds = int(packet.timestamp)
            microseconds = int(round((packet.timestamp - seconds) * 1_000_000))
            if microseconds >= 1_000_000:
                seconds += 1
                microseconds -= 1_000_000
            captured = frame[:snaplen]
            handle.write(
                _RECORD_HEADER.pack(seconds, microseconds, len(captured), len(frame))
            )
            handle.write(captured)
    return len(ordered)


def read_pcap(
    path: Union[str, Path],
    client_ip: Optional[str] = None,
) -> List[Packet]:
    """Read a classic PCAP file back into :class:`Packet` records.

    Parameters
    ----------
    client_ip:
        IP address of the game client; packets sourced from it are labeled
        upstream, everything else downstream.  When omitted, the most common
        destination address of large packets is assumed to be the client.

    Notes
    -----
    Only Ethernet/IPv4/UDP frames are decoded; other frames are skipped.
    """
    path = Path(path)
    raw_records: List[tuple[float, bytes]] = []
    with path.open("rb") as handle:
        header = handle.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError(f"{path} is not a valid pcap file (truncated header)")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC:
            record_struct = _RECORD_HEADER
        elif magic == PCAP_MAGIC_SWAPPED:
            record_struct = struct.Struct(">IIII")
        else:
            raise ValueError(f"{path} is not a classic pcap file (magic {magic:#x})")
        while True:
            record_header = handle.read(record_struct.size)
            if len(record_header) < record_struct.size:
                break
            seconds, microseconds, captured_len, _original_len = record_struct.unpack(
                record_header
            )
            data = handle.read(captured_len)
            if len(data) < captured_len:
                break
            raw_records.append((seconds + microseconds / 1_000_000, data))

    decoded: List[tuple[float, str, str, int, int, int, Optional[RTPHeader]]] = []
    for timestamp, frame in raw_records:
        parsed = _decode_frame(frame)
        if parsed is not None:
            decoded.append((timestamp,) + parsed)

    if client_ip is None:
        client_ip = _infer_client_ip(decoded)

    packets: List[Packet] = []
    for timestamp, src_ip, dst_ip, src_port, dst_port, payload_len, rtp in decoded:
        direction = (
            Direction.UPSTREAM if src_ip == client_ip else Direction.DOWNSTREAM
        )
        packets.append(
            Packet(
                timestamp=timestamp,
                direction=direction,
                payload_size=payload_len,
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_port=src_port,
                dst_port=dst_port,
                protocol="udp",
                rtp_payload_type=rtp.payload_type if rtp else None,
                rtp_ssrc=rtp.ssrc if rtp else None,
                rtp_sequence=rtp.sequence_number if rtp else None,
                rtp_timestamp=rtp.timestamp if rtp else None,
            )
        )
    return packets


def _decode_frame(frame: bytes):
    """Decode one Ethernet/IPv4/UDP frame; return None when not decodable."""
    if len(frame) < _ETH_HEADER_LEN + _IPV4_MIN_HEADER_LEN + _UDP_HEADER_LEN:
        return None
    ethertype = struct.unpack("!H", frame[12:14])[0]
    if ethertype != _ETHERTYPE_IPV4:
        return None
    ip_start = _ETH_HEADER_LEN
    version_ihl = frame[ip_start]
    ihl = (version_ihl & 0x0F) * 4
    protocol = frame[ip_start + 9]
    if protocol != _IPPROTO_UDP:
        return None
    src_ip = _bytes_to_ip(frame[ip_start + 12 : ip_start + 16])
    dst_ip = _bytes_to_ip(frame[ip_start + 16 : ip_start + 20])
    udp_start = ip_start + ihl
    if len(frame) < udp_start + _UDP_HEADER_LEN:
        return None
    src_port, dst_port, udp_length, _checksum_field = struct.unpack(
        "!HHHH", frame[udp_start : udp_start + _UDP_HEADER_LEN]
    )
    payload = frame[udp_start + _UDP_HEADER_LEN :]
    payload_len = max(0, udp_length - _UDP_HEADER_LEN)
    rtp = None
    if looks_like_rtp(payload):
        try:
            rtp, _body = parse_rtp_payload(payload)
        except ValueError:
            rtp = None
    return src_ip, dst_ip, src_port, dst_port, payload_len, rtp


def _infer_client_ip(decoded) -> str:
    """Guess the client address: the endpoint receiving the most bytes."""
    received: dict[str, int] = {}
    for _ts, _src, dst_ip, _sp, _dp, payload_len, _rtp in decoded:
        received[dst_ip] = received.get(dst_ip, 0) + payload_len
    if not received:
        return "0.0.0.0"
    return max(received, key=received.get)
