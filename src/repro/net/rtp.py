"""Minimal RTP (RFC 3550) header encoding/decoding.

Cloud gaming platforms stream rendered frames over RTP/UDP; the flow
detection signatures and the objective-QoE estimator only need header fields
(version, payload type, sequence number, timestamp, SSRC, marker bit), which
this module encodes and parses without external dependencies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

RTP_VERSION = 2
RTP_HEADER_LEN = 12

#: Payload types used by the synthetic GeForce-NOW-like streams.
PAYLOAD_TYPE_VIDEO = 96
PAYLOAD_TYPE_AUDIO = 97
PAYLOAD_TYPE_INPUT = 98


@dataclass(frozen=True, slots=True)
class RTPHeader:
    """Decoded fixed RTP header."""

    version: int = RTP_VERSION
    padding: bool = False
    extension: bool = False
    csrc_count: int = 0
    marker: bool = False
    payload_type: int = PAYLOAD_TYPE_VIDEO
    sequence_number: int = 0
    timestamp: int = 0
    ssrc: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.payload_type <= 127:
            raise ValueError(f"payload_type out of range: {self.payload_type}")
        if not 0 <= self.sequence_number <= 0xFFFF:
            raise ValueError(f"sequence_number out of range: {self.sequence_number}")
        if not 0 <= self.timestamp <= 0xFFFFFFFF:
            raise ValueError(f"timestamp out of range: {self.timestamp}")
        if not 0 <= self.ssrc <= 0xFFFFFFFF:
            raise ValueError(f"ssrc out of range: {self.ssrc}")
        if not 0 <= self.csrc_count <= 15:
            raise ValueError(f"csrc_count out of range: {self.csrc_count}")

    def encode(self) -> bytes:
        """Serialise the header to its 12-byte wire format."""
        first = (
            (self.version << 6)
            | (int(self.padding) << 5)
            | (int(self.extension) << 4)
            | self.csrc_count
        )
        second = (int(self.marker) << 7) | self.payload_type
        return struct.pack(
            "!BBHII", first, second, self.sequence_number, self.timestamp, self.ssrc
        )

    @classmethod
    def decode(cls, data: bytes) -> "RTPHeader":
        """Parse the fixed header from the start of ``data``.

        Raises
        ------
        ValueError
            If the buffer is too short or the version field is not 2.
        """
        if len(data) < RTP_HEADER_LEN:
            raise ValueError(
                f"RTP header needs {RTP_HEADER_LEN} bytes, got {len(data)}"
            )
        first, second, sequence, timestamp, ssrc = struct.unpack(
            "!BBHII", data[:RTP_HEADER_LEN]
        )
        version = first >> 6
        if version != RTP_VERSION:
            raise ValueError(f"unsupported RTP version {version}")
        return cls(
            version=version,
            padding=bool((first >> 5) & 0x1),
            extension=bool((first >> 4) & 0x1),
            csrc_count=first & 0x0F,
            marker=bool(second >> 7),
            payload_type=second & 0x7F,
            sequence_number=sequence,
            timestamp=timestamp,
            ssrc=ssrc,
        )

    def next(self, timestamp_increment: int = 0, marker: bool = False) -> "RTPHeader":
        """Return the header of the following packet in the same stream."""
        return RTPHeader(
            version=self.version,
            padding=self.padding,
            extension=self.extension,
            csrc_count=self.csrc_count,
            marker=marker,
            payload_type=self.payload_type,
            sequence_number=(self.sequence_number + 1) & 0xFFFF,
            timestamp=(self.timestamp + timestamp_increment) & 0xFFFFFFFF,
            ssrc=self.ssrc,
        )


def build_rtp_packet(header: RTPHeader, payload: bytes) -> bytes:
    """Concatenate an encoded RTP header with its payload bytes."""
    return header.encode() + payload


def parse_rtp_payload(data: bytes) -> tuple[RTPHeader, bytes]:
    """Split a datagram into its RTP header and payload."""
    header = RTPHeader.decode(data)
    return header, data[RTP_HEADER_LEN + 4 * header.csrc_count :]


def looks_like_rtp(data: bytes) -> bool:
    """Heuristic check whether a UDP payload starts with an RTP header."""
    if len(data) < RTP_HEADER_LEN:
        return False
    try:
        header = RTPHeader.decode(data)
    except ValueError:
        return False
    return header.version == RTP_VERSION and 0 <= header.payload_type <= 127


def sequence_gap(previous: Optional[int], current: int) -> int:
    """Number of packets lost between two sequence numbers (wrap-aware)."""
    if previous is None:
        return 0
    expected = (previous + 1) & 0xFFFF
    return (current - expected) & 0xFFFF
