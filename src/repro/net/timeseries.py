"""Slotted time-series helpers.

Both novel processes of the paper aggregate packets into fixed-length time
slots: the game-title classifier uses ``T``-second slots over the first ``N``
seconds of launch traffic, and the player-activity-stage classifier uses
``I``-second slots over the whole session.  This module centralises the
slotting logic so both share one well-tested implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.net.packet import Direction, PacketStream


@dataclass
class SlotSeries:
    """A per-slot aggregate over a packet stream.

    Attributes
    ----------
    slot_duration:
        Width of each slot in seconds.
    start_time:
        Timestamp of the left edge of slot 0.
    values:
        One aggregate value per slot.
    """

    slot_duration: float
    start_time: float
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> float:
        return float(self.values[index])

    def slot_edges(self) -> np.ndarray:
        """Return the left edge timestamps of every slot."""
        return self.start_time + np.arange(len(self.values)) * self.slot_duration

    def peak(self) -> float:
        """Maximum value over all slots (0.0 for an empty series)."""
        return float(self.values.max()) if self.values.size else 0.0

    def mean(self) -> float:
        """Mean value over all slots (0.0 for an empty series)."""
        return float(self.values.mean()) if self.values.size else 0.0


def _slot_index(timestamps: np.ndarray, origin: float, slot: float) -> np.ndarray:
    return np.floor((timestamps - origin) / slot).astype(int)


def _slot_grid(
    stream: PacketStream,
    slot_duration: float,
    duration: Optional[float],
    origin: Optional[float],
) -> tuple:
    """Shared slot-grid convention: resolved origin and slot count."""
    if slot_duration <= 0:
        raise ValueError(f"slot_duration must be positive, got {slot_duration}")
    origin = stream.start_time if origin is None else origin
    if duration is None:
        all_times = stream.timestamps()
        duration = float(all_times.max() - origin) if all_times.size else 0.0
    n_slots = max(1, int(np.ceil(duration / slot_duration))) if duration > 0 else 1
    return origin, n_slots


def _direction_views(
    stream: PacketStream, direction: Optional[Direction]
) -> Tuple[np.ndarray, np.ndarray]:
    """One consistent ``(timestamps, payload_sizes)`` read for a direction.

    Invariant (pinned by ``tests/test_net_packet_flow.py``): the two arrays
    are index-aligned — element ``i`` of both belongs to the same packet.
    All slot aggregation below must read both columns through this single
    call *before* masking, never re-read one of them after the other has
    been filtered, so that a concurrent append (which re-materialises the
    columns) cannot desynchronise them.
    """
    return stream.timestamps(direction), stream.payload_sizes(direction)


#: Named fast-path aggregators: per-slot packet count / payload-byte sum /
#: mean payload size, computed with one ``np.bincount`` pass instead of the
#: per-slot callback loop.
NAMED_AGGREGATORS = ("count", "sum", "mean")


def slot_aggregate(
    stream: PacketStream,
    slot_duration: float,
    aggregator: Union[str, Callable[[np.ndarray, np.ndarray], float]],
    direction: Optional[Direction] = None,
    duration: Optional[float] = None,
    origin: Optional[float] = None,
) -> SlotSeries:
    """Aggregate a packet stream into fixed-width slots.

    Parameters
    ----------
    stream:
        Source packet stream (columnar; the per-direction timestamp and
        payload-size views are read once, index-aligned).
    slot_duration:
        Slot width in seconds (must be positive).
    aggregator:
        Either one of the :data:`NAMED_AGGREGATORS` strings — ``"count"``
        (packets per slot), ``"sum"`` (payload bytes per slot) or ``"mean"``
        (mean payload size per slot, 0.0 for empty slots) — which run fully
        vectorised on the ``np.bincount`` fast path, or a callable receiving
        ``(timestamps, payload_sizes)`` of one slot's packets and returning
        a scalar (evaluated in a per-slot loop; empty slots keep 0.0).
    direction:
        Restrict to one :class:`Direction`; ``None`` aggregates both.
    duration:
        Total duration to cover.  Defaults to the stream duration.  Empty
        trailing slots are included so that series of equal nominal duration
        have equal length regardless of packet activity.
    origin:
        Timestamp of slot 0's left edge.  Defaults to the first packet.

    Returns
    -------
    SlotSeries
        One float64 value per slot (``ceil(duration / slot_duration)``
        slots, at least one).
    """
    if isinstance(aggregator, str):
        if aggregator not in NAMED_AGGREGATORS:
            raise ValueError(
                f"aggregator must be one of {NAMED_AGGREGATORS} or a callable, "
                f"got {aggregator!r}"
            )
        if aggregator == "count":
            return _slot_bincount(
                stream, slot_duration, direction, duration, origin, weighted=False
            )
        if aggregator == "sum":
            return _slot_bincount(
                stream, slot_duration, direction, duration, origin, weighted=True
            )
        return _slot_mean(stream, slot_duration, direction, duration, origin)

    origin, n_slots = _slot_grid(stream, slot_duration, duration, origin)
    timestamps, sizes = _direction_views(stream, direction)

    values = np.zeros(n_slots)
    if timestamps.size:
        indices = _slot_index(timestamps, origin, slot_duration)
        valid = (indices >= 0) & (indices < n_slots)
        indices = indices[valid]
        timestamps = timestamps[valid]
        sizes = sizes[valid]
        for slot in np.unique(indices):
            mask = indices == slot
            values[slot] = aggregator(timestamps[mask], sizes[mask])
    return SlotSeries(slot_duration=slot_duration, start_time=origin, values=values)


def _slot_bincount(
    stream: PacketStream,
    slot_duration: float,
    direction: Optional[Direction],
    duration: Optional[float],
    origin: Optional[float],
    weighted: bool,
) -> SlotSeries:
    """Per-slot packet counts (or payload-byte sums) via one ``bincount``.

    Timestamps and payload sizes are fetched with one
    :func:`_direction_views` call so the ``valid`` mask computed from the
    timestamps always subsets the *matching* size column (previously the
    sizes were re-read from the stream after masking, which relied on the
    stream not being appended to in between).
    """
    origin, n_slots = _slot_grid(stream, slot_duration, duration, origin)
    timestamps, sizes = _direction_views(stream, direction)

    values = np.zeros(n_slots)
    if timestamps.size:
        indices = _slot_index(timestamps, origin, slot_duration)
        valid = (indices >= 0) & (indices < n_slots)
        indices = indices[valid]
        weights = sizes[valid] if weighted else None
        values = np.bincount(indices, weights=weights, minlength=n_slots).astype(float)
    return SlotSeries(slot_duration=slot_duration, start_time=origin, values=values)


def _slot_mean(
    stream: PacketStream,
    slot_duration: float,
    direction: Optional[Direction],
    duration: Optional[float],
    origin: Optional[float],
) -> SlotSeries:
    """Per-slot mean payload size: one slotting pass, two ``bincount`` calls."""
    origin, n_slots = _slot_grid(stream, slot_duration, duration, origin)
    timestamps, sizes = _direction_views(stream, direction)

    values = np.zeros(n_slots)
    if timestamps.size:
        indices = _slot_index(timestamps, origin, slot_duration)
        valid = (indices >= 0) & (indices < n_slots)
        indices = indices[valid]
        sums = np.bincount(indices, weights=sizes[valid], minlength=n_slots)
        counts = np.bincount(indices, minlength=n_slots)
        with np.errstate(invalid="ignore", divide="ignore"):
            values = np.where(counts > 0, sums / counts, 0.0)
    return SlotSeries(slot_duration=slot_duration, start_time=origin, values=values)


def throughput_series(
    stream: PacketStream,
    slot_duration: float,
    direction: Direction,
    duration: Optional[float] = None,
    origin: Optional[float] = None,
) -> SlotSeries:
    """Per-slot payload throughput in Mbps."""
    series = _slot_bincount(
        stream, slot_duration, direction, duration, origin, weighted=True
    )
    series.values *= 8 / slot_duration / 1e6
    return series


def packet_rate_series(
    stream: PacketStream,
    slot_duration: float,
    direction: Direction,
    duration: Optional[float] = None,
    origin: Optional[float] = None,
) -> SlotSeries:
    """Per-slot packet rate in packets per second."""
    series = _slot_bincount(
        stream, slot_duration, direction, duration, origin, weighted=False
    )
    series.values /= slot_duration
    return series


def exponential_moving_average(values: Sequence[float], alpha: float) -> np.ndarray:
    """EMA smoothing: ``attr_t = alpha * attr_t + (1 - alpha) * attr_{t-1}``.

    Equation (1) of the paper.  ``alpha`` is the weight of the *current*
    slot; smaller values smooth more aggressively.  ``values`` may be a 1-D
    sequence (one series) or a 2-D ``(n_series, n_slots)`` array, in which
    case every row is smoothed independently in one vectorised recurrence
    (bit-identical to smoothing each row on its own).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return values.copy()
    smoothed = np.empty_like(values)
    smoothed[..., 0] = values[..., 0]
    for index in range(1, values.shape[-1]):
        smoothed[..., index] = (
            alpha * values[..., index] + (1.0 - alpha) * smoothed[..., index - 1]
        )
    return smoothed
