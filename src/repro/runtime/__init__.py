"""repro.runtime — the streaming deployment runtime (DESIGN.md §6).

Everything between a live packet feed and the paper's Fig. 6 cascade:

* :class:`~repro.runtime.engine.StreamingEngine` — flow demux, per-session
  state machines, the online cascade (title / stage / pattern gates) and
  offline-identical close-time reports;
* :class:`~repro.runtime.shard.ShardedEngine` — multi-core sharding of both
  corpora (``process_many``) and live feeds;
* :class:`~repro.runtime.feed.SessionFeed` / :func:`~repro.runtime.feed.
  pcap_feed` — feed sources over simulated corpora and real captures;
* :func:`~repro.runtime.persistence.save_pipeline` /
  :func:`~repro.runtime.persistence.load_pipeline` — fitted-model
  persistence so deployments load instead of refitting;
* the typed :mod:`~repro.runtime.events` the engine emits.
"""

from repro.runtime.demux import FlowDemux, canonical_flow_key, flow_addresses
from repro.runtime.engine import OverloadPolicy, StreamingEngine
from repro.runtime.events import (
    ContextEvent,
    FlowShed,
    ModelSwapped,
    PatternInferred,
    QoEInterval,
    SessionRecovered,
    SessionReport,
    SessionStarted,
    StageUpdate,
    TitleClassified,
    TitleReclassified,
    WorkerRestarted,
)
from repro.runtime.faults import (
    CorruptRTP,
    DelayTick,
    DuplicateTick,
    FaultPlan,
    KillWorker,
    StallWorker,
    TruncateBatch,
    apply_feed_faults,
)
from repro.runtime.feed import SessionFeed, pcap_feed
from repro.runtime.persistence import (
    PIPELINE_FORMAT,
    load_pipeline,
    pipeline_digest,
    save_pipeline,
)
from repro.runtime.shard import ShardedEngine, default_worker_count
from repro.runtime.shm import ShmColumnRing, resolve_data_plane
from repro.runtime.state import FlowContext, SessionState
from repro.runtime.supervisor import ShardSupervisor

__all__ = [
    "ContextEvent",
    "CorruptRTP",
    "DelayTick",
    "DuplicateTick",
    "FaultPlan",
    "FlowContext",
    "FlowDemux",
    "FlowShed",
    "KillWorker",
    "ModelSwapped",
    "OverloadPolicy",
    "PatternInferred",
    "PIPELINE_FORMAT",
    "QoEInterval",
    "SessionFeed",
    "SessionRecovered",
    "SessionReport",
    "SessionStarted",
    "SessionState",
    "ShardSupervisor",
    "ShardedEngine",
    "ShmColumnRing",
    "StageUpdate",
    "StallWorker",
    "StreamingEngine",
    "TitleClassified",
    "TitleReclassified",
    "TruncateBatch",
    "WorkerRestarted",
    "apply_feed_faults",
    "canonical_flow_key",
    "default_worker_count",
    "flow_addresses",
    "load_pipeline",
    "pcap_feed",
    "pipeline_digest",
    "resolve_data_plane",
    "save_pipeline",
]
