"""Live flow demultiplexing: split packet batches by canonical 5-tuple.

The first thing the deployed probe does with a packet batch is route every
row to its bidirectional flow.  :class:`FlowDemux` does that on the columnar
substrate: distinct transport addresses are factorised with one vectorised
``id()`` gather (generator- and PCAP-produced batches intern one tuple
object per flow and direction, so identity grouping touches Python once per
*distinct* address, not per packet), each group splits by direction code,
and both directions of a conversation canonicalise to the same
:class:`~repro.net.flow.FlowKey` — exactly like
:meth:`FlowKey.from_packet`, without building packets.

Row order within a flow is preserved (sub-batches keep the original batch
positions), which is what lets the per-session accumulators reproduce the
offline stream exactly after one stable time sort.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.net.flow import FlowKey
from repro.net.packet import (
    DEFAULT_ADDRESS,
    DOWNSTREAM_CODE,
    PacketColumns,
    UPSTREAM_CODE,
)

__all__ = ["FlowDemux", "canonical_flow_key", "flow_addresses"]

_ID_OF = np.frompyfunc(id, 1, 1)


def flow_addresses(key: FlowKey) -> Tuple[tuple, tuple]:
    """The ``(upstream, downstream)`` address tuples of a canonical key.

    Exact inverse of :func:`canonical_flow_key`: an upstream packet's
    columnar address is ``(client_ip, server_ip, client_port, server_port,
    protocol)`` and a downstream packet's is the endpoint-swapped tuple, so
    a flow's per-row addresses are fully recoverable from its key plus the
    direction column.  The shared-memory data plane (DESIGN.md §12) uses
    this to rebuild the object-dtype address column worker-side instead of
    shipping Python tuples through the ring.
    """
    upstream = (
        key.client_ip, key.server_ip, key.client_port, key.server_port, key.protocol,
    )
    downstream = (
        key.server_ip, key.client_ip, key.server_port, key.client_port, key.protocol,
    )
    return upstream, downstream


def canonical_flow_key(address: tuple, direction_code: int) -> FlowKey:
    """Canonical (client-first) flow key of an address tuple + direction.

    ``address`` is the columnar ``(src_ip, dst_ip, src_port, dst_port,
    protocol)`` tuple; upstream packets have the client as source.
    """
    if direction_code == UPSTREAM_CODE:
        return FlowKey(
            client_ip=address[0],
            client_port=address[2],
            server_ip=address[1],
            server_port=address[3],
            protocol=address[4],
        )
    return FlowKey(
        client_ip=address[1],
        client_port=address[3],
        server_ip=address[0],
        server_port=address[2],
        protocol=address[4],
    )


class FlowDemux:
    """Stateful batch demultiplexer (the canonical-key cache persists)."""

    def __init__(self) -> None:
        self._canonical: Dict[Tuple[tuple, int], FlowKey] = {}

    def _key_for(self, address: tuple, direction_code: int) -> FlowKey:
        cached = self._canonical.get((address, direction_code))
        if cached is None:
            cached = canonical_flow_key(address, direction_code)
            self._canonical[(address, direction_code)] = cached
        return cached

    def split(self, columns: PacketColumns) -> List[Tuple[FlowKey, PacketColumns]]:
        """Partition one batch into per-flow sub-batches.

        Returns ``(key, sub_batch)`` pairs; every row of ``columns`` lands in
        exactly one sub-batch, and rows of the same flow keep their relative
        batch order.  Flows first seen in this batch appear in first-packet
        order.
        """
        return [
            (key, columns.take(rows)) for key, rows in self.split_indices(columns)
        ]

    def split_indices(
        self, columns: PacketColumns
    ) -> List[Tuple[FlowKey, np.ndarray]]:
        """Per-flow sorted row indices, without materialising sub-batches.

        Same contract as :meth:`split` — every row lands in exactly one
        group, row order within a flow is the batch order, flows first seen
        in this batch appear in first-packet order — but each flow is
        returned as ``(key, row_indices)`` instead of a copied sub-batch.
        ``columns.take(rows)`` of each pair reproduces :meth:`split`
        exactly; the sharded data plane instead gathers the rows of every
        flow straight into a shared-memory ring slot (DESIGN.md §12).
        """
        n = len(columns)
        if n == 0:
            return []
        directions = columns.directions
        groups: Dict[FlowKey, List[np.ndarray]] = {}
        addresses = columns.addresses
        if addresses is None:
            for code in (DOWNSTREAM_CODE, UPSTREAM_CODE):
                rows = np.flatnonzero(directions == code)
                if rows.size:
                    groups.setdefault(self._key_for(DEFAULT_ADDRESS, code), []).append(rows)
        else:
            ids = _ID_OF(addresses).astype(np.int64)
            unique_ids, first_rows = np.unique(ids, return_index=True)
            order = np.argsort(ids, kind="stable")
            sorted_ids = ids[order]
            starts = np.searchsorted(sorted_ids, unique_ids, side="left")
            ends = np.searchsorted(sorted_ids, unique_ids, side="right")
            # visit address groups in first-appearance order so new flows
            # register deterministically
            for group in np.argsort(first_rows, kind="stable"):
                rows = order[starts[group] : ends[group]]
                rows = np.sort(rows)
                address = addresses[int(first_rows[group])]
                codes = directions[rows]
                for code in (DOWNSTREAM_CODE, UPSTREAM_CODE):
                    selected = rows[codes == code]
                    if selected.size:
                        groups.setdefault(self._key_for(address, code), []).append(
                            selected
                        )
        out: List[Tuple[FlowKey, np.ndarray]] = []
        for key, parts in groups.items():
            rows = parts[0] if len(parts) == 1 else np.sort(np.concatenate(parts))
            out.append((key, rows))
        return out
