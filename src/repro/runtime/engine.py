"""The streaming deployment engine: live flow demux + online Fig. 6 cascade.

:class:`StreamingEngine` turns a fitted
:class:`~repro.core.pipeline.ContextClassificationPipeline` into a
long-running service.  Packet batches (``PacketColumns``) arrive through
:meth:`StreamingEngine.ingest`; the engine demultiplexes them by canonical
5-tuple, maintains one :class:`~repro.runtime.state.SessionState` per live
flow (the bounded reducer cascade of DESIGN.md §7), and advances every
session through the paper's gates as the feed clock moves:

* **title gate** — once ``N`` seconds of a flow have been observed, its
  launch-window buffer is classified (batched across all flows whose gate
  opens in the same tick) and a :class:`TitleClassified` event fires.  A
  flow whose window never fills is classified at close instead, and window
  packets arriving *after* the gate (cross-batch reordering) trigger a
  re-classification (:class:`TitleReclassified` when the verdict changes);
* **stage slots** — every completed ``I``-second slot is classified from
  causal volumetric attributes with the EMA recurrence carried across
  batches; the newly completed slots of *all* sessions share one forest
  pass per tick (:class:`StageUpdate` events);
* **pattern gate** — each new gameplay slot past ``min_slots`` evaluates
  the session's transition-attribute prefix (carried by
  :class:`~repro.core.transition.PrefixTransitionTracker`); all eligible
  rows of all unresolved sessions share one forest pass, and the first
  confident row fires :class:`PatternInferred` — the same first-confident-
  slot semantics as offline ``predict_incremental``;
* **QoE windows** — every completed ``W``-second interval (10 s by
  default) emits a provisional :class:`QoEInterval` verdict from the QoE
  reducer's per-interval downstream columns, so degraded sessions surface
  before they end;
* **close** — when a flow goes idle (or the feed ends) the engine
  finalises the session's reducers through the *same*
  :meth:`ContextClassificationPipeline.finalize_cascades` driver the
  offline ``process()`` path uses, producing a :class:`SessionReport`
  **bit-identical** to offline ``process()`` on the same packets (pinned
  by ``tests/test_runtime.py`` and ``tests/test_reducers.py``) — no packet
  history is replayed, in either session mode.

Single-process by design; :class:`~repro.runtime.shard.ShardedEngine`
partitions flows across workers for multi-core deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclasses_replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.pattern_classifier import PatternPrediction
from repro.core.pipeline import ContextClassificationPipeline
from repro.core.reducers import SealedApproxQoEInterval, SealedQoEInterval
from repro.net.flow import FlowKey
from repro.simulation.catalog import ActivityPattern
from repro.net.packet import PacketColumns
from repro.runtime.demux import FlowDemux
from repro.runtime.events import (
    ContextEvent,
    FlowShed,
    ModelSwapped,
    PatternInferred,
    QoEInterval,
    SessionReport,
    SessionStarted,
    StageUpdate,
    TitleClassified,
    TitleReclassified,
)
from repro.runtime.state import SESSION_MODES, FlowContext, SessionState

__all__ = ["OverloadPolicy", "StreamingEngine", "build_qoe_interval_event"]


def build_qoe_interval_event(
    pipeline: ContextClassificationPipeline,
    key: FlowKey,
    context: FlowContext,
    interval: Union[SealedApproxQoEInterval, SealedQoEInterval],
    latency_ms: Optional[float] = None,
) -> QoEInterval:
    """One sealed measurement window as a provisional :class:`QoEInterval`.

    Exact windows carry their downstream columns (:class:`SealedQoEInterval`
    → ``estimate_arrays``); approx windows carry fixed-size aggregates
    (:class:`SealedApproxQoEInterval` → ``estimate_approx``), and the event
    is flagged ``approximate`` with the reducer's freeze verdict and
    candidate-gap ledger attached.  Shared by the streaming engine and the
    fleet tier's offline corpus fold (:func:`repro.analytics.fleet.
    fold_corpus`), so both paths compute bit-identical events from equal
    sealed windows.
    """
    approximate = isinstance(interval, SealedApproxQoEInterval)
    if approximate:
        metrics = pipeline.qoe_estimator.estimate_approx(
            duration_s=interval.duration_s,
            down_payload_bytes=interval.payload_bytes,
            n_down_packets=interval.n_packets,
            n_frames=interval.n_new_frames,
            n_rtp=interval.n_rtp,
            burst_gap_count=interval.burst_gap_count,
            gap_count=interval.gap_count,
            gap_max_s=interval.gap_max_s,
            gap_samples=interval.gap_samples,
            seq_received=interval.seq_received,
            seq_lost=interval.seq_lost,
            latency_ms=latency_ms,
        )
    else:
        metrics = pipeline.qoe_estimator.estimate_arrays(
            duration_s=interval.duration_s,
            down_times=interval.down_times,
            down_payload_bytes=interval.payload_bytes,
            rtp_timestamps=interval.rtp_timestamps,
            rtp_sequences=interval.rtp_sequences,
            latency_ms=latency_ms,
        )
    if context.rate_scale != 1.0:
        metrics = dataclasses_replace(
            metrics,
            throughput_mbps=metrics.throughput_mbps / context.rate_scale,
        )
    return QoEInterval(
        flow=key,
        time=interval.end_s,
        interval_index=interval.index,
        start_s=interval.start_s,
        end_s=interval.end_s,
        metrics=metrics,
        objective=pipeline.qoe_calibrator.objective_level(metrics),
        n_packets=interval.n_packets,
        partial=interval.partial,
        approximate=approximate,
        frozen=approximate and interval.frozen,
        candidate_gap_packets=(
            interval.candidate_gap_packets if approximate else 0
        ),
    )


def _check_swap_geometry(
    old: ContextClassificationPipeline, new: ContextClassificationPipeline
) -> None:
    """Reject a hot swap that would reinterpret live per-session fold state.

    Title window seconds, activity slot duration and the EMA weight are
    baked into every live session's accumulated reducers; a replacement
    pipeline must agree on them.  Pure gate parameters (confidence
    thresholds, minimum slots) carry no state and may differ.  Shared by
    :meth:`StreamingEngine.swap_pipeline`,
    :meth:`~repro.runtime.shard.ShardedEngine.request_swap` and
    :meth:`~repro.runtime.supervisor.ShardSupervisor.swap_all` so every
    swap path fails fast in the caller instead of crashing a worker.
    """
    mismatches = [
        f"{name}: {old_value!r} != {new_value!r}"
        for name, old_value, new_value in (
            (
                "title_window_seconds",
                old.title_classifier.window_seconds,
                new.title_classifier.window_seconds,
            ),
            (
                "slot_duration",
                old.activity_classifier.slot_duration,
                new.activity_classifier.slot_duration,
            ),
            (
                "alpha",
                old.activity_classifier.alpha,
                new.activity_classifier.alpha,
            ),
        )
        if old_value != new_value
    ]
    if mismatches:
        raise ValueError(
            "swap_pipeline: fold geometry mismatch, live session state "
            "would be reinterpreted (" + "; ".join(mismatches) + ")"
        )


@dataclass(frozen=True)
class OverloadPolicy:
    """Graceful-degradation thresholds for :class:`StreamingEngine.ingest`.

    Throughput degrades by policy instead of by OOM (DESIGN.md §8):

    * past ``soft_state_bytes`` of total live session state, **new** flows
      auto-open in ``"approx"`` mode (O(intervals) QoE aggregates instead of
      packet columns) — existing flows are untouched and every close report
      stays exact for the mode it opened in;
    * past ``hard_state_bytes`` (or above ``max_live_flows`` live sessions),
      flows are shed largest-state-first until back under the ceiling, each
      with a :class:`~repro.runtime.events.FlowShed` event; later packets of
      a shed flow are counted (``shed_packets``) and dropped, never reopened;
    * thresholds are evaluated every ``check_every_ticks`` ingested batches
      (state accounting walks every live session, so sparse checks trade
      ceiling precision for per-tick cost).

    In the sharded runtime the policy is applied per shard engine, so the
    byte/flow ceilings bound each worker, not the fleet total.
    """

    soft_state_bytes: Optional[int] = None
    hard_state_bytes: Optional[int] = None
    max_live_flows: Optional[int] = None
    check_every_ticks: int = 1

    def __post_init__(self) -> None:
        if self.check_every_ticks < 1:
            raise ValueError(
                f"check_every_ticks must be >= 1, got {self.check_every_ticks}"
            )
        for name in ("soft_state_bytes", "hard_state_bytes", "max_live_flows"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")


class StreamingEngine:
    """Single-process streaming runtime over a fitted pipeline.

    Parameters
    ----------
    pipeline:
        A fitted :class:`ContextClassificationPipeline`; gate parameters
        (title window, slot duration, EMA weight, pattern confidence
        threshold and minimum slots) are read from its classifiers so the
        online cascade matches the offline configuration exactly.
    idle_timeout_s:
        Close a flow when the feed clock moves this far past its last
        packet (``None`` disables idle closing; flows then close at feed
        end / explicit :meth:`close`).
    latency_ms:
        Optional out-of-band access latency forwarded to the QoE stage of
        every final report (and every provisional interval verdict).
    session_mode:
        ``"bounded"`` (default) keeps O(slots) counters plus the QoE
        columns per session — no packet history; ``"full"`` additionally
        retains the raw batches (exact under pre-origin reordering, and
        :meth:`SessionState.assembled_stream` stays available); close
        reports are offline-identical in both.  ``"approx"`` drops the QoE
        columns too (O(intervals) aggregates, state flat in the packet
        rate): close reports carry ``qoe_approximate=True`` and equal
        offline ``process(..., qoe_mode="approx")``.
    qoe_interval_s:
        Width of the provisional QoE measurement windows.
    analytics:
        Attach a fleet analytics aggregator
        (:class:`~repro.analytics.fleet.FleetAggregator`): ``True`` creates
        a default one, or pass a pre-configured instance.  The aggregator
        observes every emitted event (with the flow's registered context)
        and its state rides :meth:`snapshot` / :meth:`restore`, so sharded
        checkpoint/replay recovery keeps rollups exactly-once.
    """

    def __init__(
        self,
        pipeline: ContextClassificationPipeline,
        idle_timeout_s: Optional[float] = None,
        latency_ms: Optional[float] = None,
        session_mode: str = "bounded",
        qoe_interval_s: float = 10.0,
        overload: Optional[OverloadPolicy] = None,
        analytics=None,
    ) -> None:
        pipeline._require_fitted()
        if session_mode not in SESSION_MODES:
            # fail fast: deferring to the first packet would kill a forked
            # shard worker and surface only as an opaque EOFError upstream
            raise ValueError(
                f"session_mode must be one of {SESSION_MODES}, got {session_mode!r}"
            )
        self.pipeline = pipeline
        self.idle_timeout_s = idle_timeout_s
        self.latency_ms = latency_ms
        self.session_mode = session_mode
        self.qoe_interval_s = qoe_interval_s
        self.overload = overload
        self.n_shed = 0
        self.shed_packets = 0
        self.n_degraded_opens = 0
        self._shed: Set[FlowKey] = set()
        self._tick_count = 0
        self._soft_active = False
        self.title_window_seconds = pipeline.title_classifier.window_seconds
        self.slot_duration = pipeline.activity_classifier.slot_duration
        self.alpha = pipeline.activity_classifier.alpha
        self.min_pattern_slots = pipeline.pattern_classifier.min_slots
        self.pattern_threshold = pipeline.pattern_classifier.confidence_threshold
        self._demux = FlowDemux()
        self._states: Dict[FlowKey, SessionState] = {}
        self._contexts: Dict[FlowKey, FlowContext] = {}
        self._clock = float("-inf")
        if analytics:
            # imported lazily: repro.analytics imports the runtime's event
            # types, so a module-level import here would be circular
            from repro.analytics.fleet import FleetAggregator

            self.analytics = (
                analytics
                if isinstance(analytics, FleetAggregator)
                else FleetAggregator()
            )
        else:
            self.analytics = None

    # ------------------------------------------------------------ contexts
    @property
    def clock(self) -> float:
        """The feed clock: the largest packet timestamp ingested so far."""
        return self._clock

    @property
    def live_flows(self) -> List[FlowKey]:
        """Keys of the currently open sessions."""
        return list(self._states)

    def set_flow_context(self, key: FlowKey, context: FlowContext) -> None:
        """Register out-of-band platform / rate-scale knowledge for a flow."""
        self._contexts[key] = context
        state = self._states.get(key)
        if state is not None:
            state.context = context

    def state_nbytes(self) -> Dict[FlowKey, int]:
        """Approximate live per-session state bytes (for capacity planning)."""
        return {key: state.state_nbytes() for key, state in self._states.items()}

    # ------------------------------------------------------------ snapshots
    def snapshot(self) -> dict:
        """The engine's complete mutable state as a picklable dict.

        Captures the feed clock, every live session's fold state, the
        registered flow contexts and the overload bookkeeping — everything
        that is not configuration.  An engine constructed with the same
        parameters (same fitted pipeline, timeouts, modes, policy), restored
        from the snapshot and fed the same subsequent batches emits
        bit-identical events and close reports; the sharded supervisor's
        checkpoint/replay recovery is built on exactly this property
        (DESIGN.md §8).
        """
        return {
            "clock": self._clock,
            "states": [state.snapshot() for state in self._states.values()],
            "contexts": dict(self._contexts),
            "shed": set(self._shed),
            "n_shed": self.n_shed,
            "shed_packets": self.shed_packets,
            "n_degraded_opens": self.n_degraded_opens,
            "tick_count": self._tick_count,
            "soft_active": self._soft_active,
            "analytics": (
                None if self.analytics is None else self.analytics.snapshot()
            ),
        }

    def restore(self, snapshot: dict) -> None:
        """Adopt a :meth:`snapshot` (configuration is not part of it).

        Session insertion order is preserved, so per-tick iteration over the
        restored sessions — and therefore event ordering — matches the
        engine the snapshot was taken from.  The demux canonical-key cache
        is a pure cache and restarts empty.
        """
        states = [SessionState.from_snapshot(item) for item in snapshot["states"]]
        self._states = {state.key: state for state in states}
        self._contexts = dict(snapshot["contexts"])
        self._clock = snapshot["clock"]
        self._shed = set(snapshot["shed"])
        self.n_shed = snapshot["n_shed"]
        self.shed_packets = snapshot["shed_packets"]
        self.n_degraded_opens = snapshot["n_degraded_opens"]
        self._tick_count = snapshot["tick_count"]
        self._soft_active = snapshot["soft_active"]
        self._demux = FlowDemux()
        if self.analytics is not None:
            from repro.analytics.fleet import FleetAggregator

            payload = snapshot.get("analytics")
            # an engine configured with analytics adopts the snapshot's
            # aggregator (or restarts it empty for pre-analytics snapshots)
            self.analytics = (
                FleetAggregator() if payload is None
                else FleetAggregator.from_snapshot(payload)
            )

    # ------------------------------------------------------------- hot swap
    def swap_pipeline(
        self,
        pipeline: Union[str, Path, ContextClassificationPipeline],
    ) -> ModelSwapped:
        """Atomically replace the classification pipeline between ticks.

        ``pipeline`` is a fitted :class:`ContextClassificationPipeline` or a
        directory saved by :func:`~repro.runtime.persistence.save_pipeline`
        (loaded here, kernels pre-compiled).  The swap is a single reference
        assignment: the tick that returned before this call ran entirely on
        the old model, the next tick runs entirely on the new one, and no
        flow, session or reducer state is touched — sessions spanning the
        swap keep their accumulated fold state and are classified by the new
        model from the next gate they hit.

        The new pipeline must agree with the old one on the *fold geometry*
        baked into live session state — title window seconds, activity slot
        duration and EMA weight — otherwise the accumulated per-session
        reducers would be reinterpreted under the wrong layout; a mismatch
        raises :class:`ValueError` and leaves the engine untouched.  Pure
        gate parameters (pattern confidence threshold / minimum slots) carry
        no state and are adopted from the new pipeline.

        Returns the :class:`~repro.runtime.events.ModelSwapped` event (it is
        *not* folded into the attached analytics aggregator — rollup digests
        are invariant under swaps).  An identity swap (equal digests) leaves
        every subsequent event and close report bit-identical.
        """
        from repro.runtime.persistence import load_pipeline, pipeline_digest

        if not isinstance(pipeline, ContextClassificationPipeline):
            pipeline = load_pipeline(pipeline)
        pipeline._require_fitted()
        _check_swap_geometry(self.pipeline, pipeline)
        old_digest = pipeline_digest(self.pipeline)
        new_digest = pipeline_digest(pipeline)
        pipeline.compile_kernels()
        self.pipeline = pipeline
        self.min_pattern_slots = pipeline.pattern_classifier.min_slots
        self.pattern_threshold = pipeline.pattern_classifier.confidence_threshold
        return ModelSwapped(
            time=self._clock,
            old_digest=old_digest,
            new_digest=new_digest,
            shard=None,
        )

    # ------------------------------------------------------------ ingestion
    def ingest(self, columns: PacketColumns) -> List[ContextEvent]:
        """Consume one packet batch; return the events it triggered.

        ``columns`` may interleave any number of flows in any order —
        batches demultiplex by canonical 5-tuple first, and close reports
        are invariant under how the same packets are batched (the
        offline-identity contract pinned by ``tests/test_runtime.py``).
        Returns the tick's events in deterministic order; advances the
        engine clock to the batch's newest timestamp.
        """
        clock = self._clock
        if len(columns):
            clock = max(clock, float(columns.timestamps.max()))
        return self.ingest_demuxed(self._demux.split(columns), clock)

    def ingest_demuxed(
        self,
        pairs: Sequence[Tuple[FlowKey, PacketColumns]],
        clock: float,
    ) -> List[ContextEvent]:
        """Consume already-demultiplexed per-flow sub-batches.

        ``clock`` carries the feed time even when this shard's ``pairs`` are
        empty, so idle flows keep completing slots; the sharded runner uses
        this entry point after partitioning one demux pass across workers.
        """
        events: List[ContextEvent] = []
        self._clock = max(self._clock, clock)
        for key, sub in pairs:
            if key in self._shed:
                # accounted, never silently dropped — and never reopened,
                # which would churn the very state the ceiling bounds
                self.shed_packets += len(sub)
                continue
            state = self._states.get(key)
            if state is None:
                mode = self.session_mode
                if self._soft_active and mode != "approx":
                    # soft overload: new sessions open in the O(intervals)
                    # approx tier; existing flows keep their mode
                    mode = "approx"
                    self.n_degraded_opens += 1
                state = SessionState(
                    key,
                    slot_duration=self.slot_duration,
                    alpha=self.alpha,
                    context=self._contexts.get(key),
                    window_seconds=self.title_window_seconds,
                    qoe_interval_s=self.qoe_interval_s,
                    mode=mode,
                )
                self._states[key] = state
                events.append(
                    # min, not [0]: sub-batch rows may arrive out of order
                    SessionStarted(flow=key, time=float(sub.timestamps.min()))
                )
            state.absorb(sub)
        self._advance(events)
        # fold the tick's own events before the idle closes: close() events
        # are observed inside _close_states, so folding them here too would
        # double-count
        self._observe(events)
        if self.idle_timeout_s is not None:
            for key in [
                key
                for key, state in self._states.items()
                if state.last_ts + self.idle_timeout_s <= self._clock
            ]:
                events.extend(self.close(key, reason="idle"))
        shed_from = len(events)
        self._enforce_overload(events)
        self._observe(events[shed_from:])
        return events

    def _observe(self, events: Sequence[ContextEvent]) -> None:
        """Fold events into the attached fleet aggregator (if any)."""
        if self.analytics is not None and events:
            self.analytics.observe_all(events, self._contexts)

    # ------------------------------------------------------------ overload
    def _enforce_overload(self, events: List[ContextEvent]) -> None:
        """Apply the overload policy after a tick (DESIGN.md §8).

        Updates the soft flag (new sessions open approx while total state
        sits above ``soft_state_bytes``) and sheds flows largest-state-first
        while the hard byte ceiling or the live-flow cap is breached.  The
        tie-break on equal state sizes is the canonical endpoint string, so
        shedding is deterministic for a deterministic feed.
        """
        policy = self.overload
        if policy is None:
            return
        self._tick_count += 1
        if self._tick_count % policy.check_every_ticks:
            return
        sizes = {key: state.state_nbytes() for key, state in self._states.items()}
        total = sum(sizes.values())
        if policy.soft_state_bytes is not None:
            self._soft_active = total >= policy.soft_state_bytes
        def over() -> bool:
            return (
                policy.hard_state_bytes is not None
                and total > policy.hard_state_bytes
            ) or (
                policy.max_live_flows is not None
                and len(self._states) > policy.max_live_flows
            )
        if not over():
            return
        order = sorted(
            self._states,
            key=lambda key: (
                -sizes[key],
                key.client_ip,
                key.client_port,
                key.server_ip,
                key.server_port,
            ),
        )
        for key in order:
            if not over():
                break
            state = self._states.pop(key)
            self._shed.add(key)
            self.n_shed += 1
            events.append(
                FlowShed(
                    flow=key,
                    time=self._clock if np.isfinite(self._clock) else state.last_ts,
                    state_bytes=sizes[key],
                    n_packets=state.n_packets,
                    total_state_bytes=total,
                )
            )
            total -= sizes[key]

    # ------------------------------------------------------------ cascade
    def _advance(self, events: List[ContextEvent]) -> None:
        """Move every session through the gates the clock has passed."""
        self._advance_stages(events, self._states.values())
        self._advance_titles(events)
        for state in self._states.values():
            self._emit_qoe_intervals(events, state, state.advance_qoe(self._clock))

    def _advance_titles(self, events: List[ContextEvent]) -> None:
        gated = [
            state
            for state in self._states.values()
            if state.title_ready(self._clock, self.title_window_seconds)
        ]
        # fired flows that received new window rows re-run the classifier:
        # late window packets (cross-batch reordering) can change the verdict
        reclassify = [
            state
            for state in self._states.values()
            if state.title_fired and state.take_new_window_rows()
        ]
        if not gated and not reclassify:
            return
        predictions = self.pipeline.title_classifier.predict_streams(
            [state.launch_stream() for state in gated + reclassify]
        )
        for state, prediction in zip(gated, predictions[: len(gated)]):
            state.title_fired = True
            state.title_prediction = prediction
            state.take_new_window_rows()  # the gate consumed the window
            events.append(
                TitleClassified(
                    flow=state.key,
                    time=state.origin + self.title_window_seconds,
                    prediction=prediction,
                )
            )
        for state, prediction in zip(reclassify, predictions[len(gated) :]):
            previous = state.title_prediction
            state.title_prediction = prediction
            if prediction != previous:
                events.append(
                    TitleReclassified(
                        flow=state.key,
                        time=self._clock,
                        prediction=prediction,
                        previous=previous,
                    )
                )

    def _advance_stages(
        self,
        events: List[ContextEvent],
        states: Iterable[SessionState],
        clock: Optional[float] = None,
    ) -> None:
        clock = self._clock if clock is None else clock
        pending: List[Tuple[SessionState, np.ndarray, np.ndarray]] = []
        for state in states:
            features, slots = state.advance(clock)
            if slots.size:
                pending.append((state, features, slots))
        if not pending:
            return
        stages = self.pipeline.activity_classifier.predict_features(
            np.vstack([features for _, features, _ in pending])
        )
        cursor = 0
        gate_rows: List[Tuple[SessionState, np.ndarray, np.ndarray]] = []
        for state, features, slots in pending:
            new_stages = stages[cursor : cursor + slots.size]
            cursor += slots.size
            state.timeline.extend(new_stages)
            for slot, stage in zip(slots, new_stages):
                events.append(
                    StageUpdate(
                        flow=state.key,
                        time=state.origin + (int(slot) + 1) * self.slot_duration,
                        slot_index=int(slot),
                        stage=stage,
                    )
                )
            prefix_features, gameplay_seen = state.transitions.extend(new_stages)
            if not state.pattern_resolved:
                eligible = np.flatnonzero(gameplay_seen >= self.min_pattern_slots)
                if eligible.size:
                    gate_rows.append(
                        (
                            state,
                            prefix_features[eligible],
                            gameplay_seen[eligible],
                            slots[eligible],
                        )
                    )
        self._advance_patterns(events, gate_rows)

    def _advance_patterns(self, events: List[ContextEvent], gate_rows: List) -> None:
        """Evaluate the pattern confidence gate on all eligible new slots.

        One forest pass covers every unresolved session's eligible rows; per
        session the *first* confident row wins, matching the slot-by-slot
        semantics of offline ``predict_incremental`` on the provisional
        timeline.
        """
        if not gate_rows:
            return
        model = self.pipeline.pattern_classifier.model
        proba = model.predict_proba(
            np.vstack([rows for _, rows, _, _ in gate_rows])
        )
        classes = model.classes_
        cursor = 0
        for state, rows, gameplay_counts, slot_indices in gate_rows:
            block = proba[cursor : cursor + rows.shape[0]]
            cursor += rows.shape[0]
            best = np.argmax(block, axis=1)
            confidences = block[np.arange(block.shape[0]), best]
            state.last_pattern_confidence = float(confidences[-1])
            confident = confidences >= self.pattern_threshold
            if not confident.any():
                continue
            winner = int(np.argmax(confident))
            prediction = PatternPrediction(
                pattern=ActivityPattern(str(classes[int(best[winner])])),
                confidence=float(confidences[winner]),
                confident=True,
                slots_observed=int(gameplay_counts[winner]),
            )
            state.pattern_resolved = True
            events.append(
                PatternInferred(
                    flow=state.key,
                    time=state.origin
                    + (int(slot_indices[winner]) + 1) * self.slot_duration,
                    prediction=prediction,
                )
            )

    # ------------------------------------------------------------ QoE windows
    def _emit_qoe_intervals(
        self,
        events: List[ContextEvent],
        state: SessionState,
        sealed: Sequence[Union[SealedApproxQoEInterval, SealedQoEInterval]],
    ) -> None:
        """Turn sealed measurement windows into provisional QoE events.

        Exact windows carry their downstream columns
        (:class:`SealedQoEInterval` → ``estimate_arrays``); approx windows
        carry fixed-size aggregates (:class:`SealedApproxQoEInterval` →
        ``estimate_approx``), and the emitted event is flagged
        ``approximate`` with the reducer's freeze verdict attached.
        """
        for interval in sealed:
            events.append(
                build_qoe_interval_event(
                    self.pipeline,
                    state.key,
                    state.context,
                    interval,
                    latency_ms=self.latency_ms,
                )
            )

    # ------------------------------------------------------------ closing
    def close(self, key: FlowKey, reason: str = "eof") -> List[ContextEvent]:
        """Close one flow: flush its final slot, emit the offline-identical report.

        Returns the flow's closing events (ending in one
        :class:`SessionReport` bit-identical to offline ``process()`` on
        the same packets), or ``[]`` when ``key`` is not a live flow.
        ``reason`` is stamped on the report (``"eof"``, ``"idle"``, ...).
        """
        state = self._states.pop(key, None)
        if state is None:
            return []
        return self._close_states([state], reason)

    def close_all(self, reason: str = "eof") -> List[ContextEvent]:
        """Close every live flow (feed end); finalisation is batched.

        One classifier pass covers all closing sessions, yet each flow's
        report equals what a lone :meth:`close` would have produced.
        """
        states = list(self._states.values())
        self._states.clear()
        return self._close_states(states, reason)

    def _close_states(
        self, states: List[SessionState], reason: str
    ) -> List[ContextEvent]:
        """Flush the provisional gates, then finalise every state at once.

        All closing sessions share the batched finalisation driver
        (:meth:`ContextClassificationPipeline.finalize_cascades`) — the same
        reducer implementations offline ``process()`` drives, so every
        report is bit-identical to the offline call on the same packets.
        """
        if not states:
            return []
        events: List[ContextEvent] = []
        # flush the trailing partial slot through the online cascade first
        self._advance_stages(events, states, clock=float("inf"))
        platforms = []
        for state in states:
            platform = state.context.platform
            if platform is None:
                platform = self.pipeline.detector.classify_summary(
                    state.cascade.flow_summary(state.key.server_port)
                )
            platforms.append(platform)
        reports = self.pipeline.finalize_cascades(
            [state.cascade for state in states],
            platforms=platforms,
            rate_scales=[state.context.rate_scale for state in states],
            latency_ms=self.latency_ms,
        )
        close_time = self._clock
        for state, report in zip(states, reports):
            # trailing partial QoE window
            self._emit_qoe_intervals(events, state, state.flush_qoe())
            time = close_time if np.isfinite(close_time) else state.last_ts
            # short sessions classify at close; late window packets that were
            # never re-evaluated surface here too, keeping the event stream
            # consistent with the final report
            if not state.title_fired:
                events.append(
                    TitleClassified(flow=state.key, time=time, prediction=report.title)
                )
            elif report.title != state.title_prediction:
                events.append(
                    TitleReclassified(
                        flow=state.key,
                        time=time,
                        prediction=report.title,
                        previous=state.title_prediction,
                    )
                )
            events.append(
                SessionReport(
                    flow=state.key,
                    time=time,
                    report=report,
                    reason=reason,
                    n_packets=state.n_packets,
                    duration_s=state.duration,
                )
            )
        self._observe(events)
        return events

    # ------------------------------------------------------------ driving
    def run(
        self, feed: Iterable[PacketColumns], close_at_end: bool = True
    ) -> Iterator[ContextEvent]:
        """Drive a live feed through the engine, yielding events as they fire.

        ``feed`` is any iterable of :class:`PacketColumns` batches (a
        :class:`~repro.runtime.feed.SessionFeed`, the PCAP batch iterator,
        a socket reader, ...).  When the feed exposes ``flow_contexts``
        (mapping :class:`FlowKey` to :class:`FlowContext`) they are
        registered before ingestion.
        """
        contexts = getattr(feed, "flow_contexts", None)
        if contexts:
            for key, context in contexts.items():
                self.set_flow_context(key, context)
        for batch in feed:
            yield from self.ingest(batch)
        if close_at_end:
            yield from self.close_all()
