"""Typed context events emitted by the streaming runtime.

The deployed system (Fig. 6) does not produce one report per finished
session — it emits context *as it becomes known*: the game title after the
first ``N`` seconds of a flow, the player activity stage every slot, the
gameplay pattern once the confidence gate opens, and the calibrated QoE
verdict when the session ends.  The event types below are the runtime's
public contract; consumers (dashboards, per-subscriber aggregators, the
examples) pattern-match on the concrete class.

All events carry the canonical :class:`~repro.net.flow.FlowKey` of the flow
they describe and the feed-clock ``time`` (seconds) at which the underlying
condition became true.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pattern_classifier import PatternPrediction
from repro.core.pipeline import SessionContextReport
from repro.core.qoe import QoELevel, QoEMetrics
from repro.core.title_classifier import TitlePrediction
from repro.net.flow import FlowKey
from repro.simulation.catalog import PlayerStage

__all__ = [
    "ContextEvent",
    "FlowShed",
    "SessionRecovered",
    "SessionStarted",
    "TitleClassified",
    "TitleReclassified",
    "StageUpdate",
    "PatternInferred",
    "QoEInterval",
    "SessionReport",
    "WorkerRestarted",
    "ModelSwapped",
]


@dataclass(frozen=True)
class ContextEvent:
    """Base class: which flow, and when (feed-clock seconds)."""

    flow: FlowKey
    time: float


@dataclass(frozen=True)
class SessionStarted(ContextEvent):
    """A new 5-tuple flow appeared in the feed."""


@dataclass(frozen=True)
class TitleClassified(ContextEvent):
    """The title gate opened: ``N`` seconds of the flow have been observed.

    ``prediction`` equals what offline :meth:`GameTitleClassifier.
    predict_stream` reports for the same session (the classifier only reads
    the launch window) as long as no window packet arrives after the gate.
    Short sessions whose window never fills are classified at flow close
    instead (``time`` is then the close clock, not ``origin + N``).
    """

    prediction: TitlePrediction


@dataclass(frozen=True)
class TitleReclassified(ContextEvent):
    """Window packets arrived after the title gate and changed the verdict.

    Emitted when launch-window rows land in a later batch (cross-batch
    reordering) and re-running the classifier over the completed window
    yields a different prediction — or when the close-time report's title
    differs from the last emitted prediction.  The event stream therefore
    always ends consistent with the final report: the last
    ``TitleClassified`` / ``TitleReclassified`` prediction of a flow equals
    ``SessionReport.report.title``.
    """

    prediction: TitlePrediction
    previous: TitlePrediction


@dataclass(frozen=True)
class StageUpdate(ContextEvent):
    """One activity slot completed and was classified online.

    The stage is the runtime's *provisional* verdict: it is computed from
    causal (running-peak) relative volumetric attributes, whereas the
    offline timeline normalises early slots against a whole-session peak
    floor.  The authoritative timeline arrives with :class:`SessionReport`.
    """

    slot_index: int
    stage: PlayerStage


@dataclass(frozen=True)
class PatternInferred(ContextEvent):
    """The gameplay-pattern confidence gate opened for this flow."""

    prediction: PatternPrediction


@dataclass(frozen=True)
class QoEInterval(ContextEvent):
    """Provisional QoE verdict for one completed measurement window.

    Emitted every ``W`` seconds (10 s by default) per live flow so degraded
    sessions surface before they close.  ``metrics`` are estimated from the
    interval's downstream columns alone, with throughput rescaled to
    physical scale for reduced-fidelity synthetic flows exactly like the
    close-time report; ``objective`` maps them through the uncalibrated
    expectations.  When a session closes inside an unsealed window, that
    trailing window is flushed with ``partial=True`` and ``end_s`` at the
    session's last packet; a flow whose last packet's window already sealed
    while the feed ran on (e.g. an idle-timeout close) ends on that full
    window instead — consumers should treat :class:`SessionReport`, not a
    partial window, as the close marker.  Windows with no downstream
    traffic report all-zero metrics (objective *bad*) — a stalled stream is
    exactly what the provisional feed exists to expose.

    In ``session_mode="approx"`` the engine sets ``approximate=True`` and
    the metrics come from the window's fixed-size aggregates
    (:meth:`ObjectiveQoEEstimator.estimate_approx`) instead of its packet
    columns; ``frozen`` then flags a window whose RTP clock never advanced
    past the previous window's last-seen timestamp while packets kept
    flowing — a frozen image the exact tier can only infer from a zero
    frame rate.  ``candidate_gap_packets`` is the approx tier's per-window
    candidate-gap ledger (see
    :class:`~repro.core.reducers.SealedApproxQoEInterval`): the total size
    of the sequence gaps revealed inside the window, localising loss bursts
    to their sealing window; always 0 for exact-tier windows.
    """

    interval_index: int
    start_s: float
    end_s: float
    metrics: QoEMetrics
    objective: QoELevel
    n_packets: int
    partial: bool = False
    approximate: bool = False
    frozen: bool = False
    candidate_gap_packets: int = 0


@dataclass(frozen=True)
class SessionReport(ContextEvent):
    """The flow closed; ``report`` is bit-identical to offline ``process()``.

    ``reason`` is ``"eof"`` (feed ended / explicit close) or ``"idle"``
    (no packets for the engine's idle timeout).
    """

    report: SessionContextReport
    reason: str
    n_packets: int
    duration_s: float


@dataclass(frozen=True)
class FlowShed(ContextEvent):
    """The overload policy dropped this flow past the hard state ceiling.

    Shedding is the runtime's last-resort degradation
    (:class:`~repro.runtime.engine.OverloadPolicy`): the flow's state is
    discarded without a close report, but never silently — this event
    accounts for it, later packets of the flow are counted (and dropped)
    instead of reopening a session, and unaffected flows' reports are
    unchanged.  ``state_bytes``/``n_packets`` describe the shed session at
    the moment it was dropped; ``total_state_bytes`` is the engine-wide
    state footprint that breached the ceiling.
    """

    state_bytes: int
    n_packets: int
    total_state_bytes: int


@dataclass(frozen=True)
class SessionRecovered(ContextEvent):
    """This flow's state was re-homed onto a respawned shard worker.

    Emitted exactly once per worker-restart incident for every flow that
    was live in the restored snapshot; ``time`` is the feed clock at
    recovery.  The flow's subsequent events and close report are
    bit-identical to an uninterrupted run (snapshot + replay reconstruction
    is exact — DESIGN.md §8).
    """

    shard: int


@dataclass(frozen=True)
class WorkerRestarted:
    """A shard worker died (or hung past the recv deadline) and was respawned.

    Not a :class:`ContextEvent`: a worker restart concerns every flow on the
    shard, so there is no single ``flow`` — consumers filtering on
    ``event.flow`` should special-case this type.  One event per incident,
    followed immediately by one :class:`SessionRecovered` per re-homed flow.

    ``reason`` is ``"dead"`` (process exited / pipe broke) or ``"hung"``
    (no reply within the supervisor's recv deadline).  ``replayed_ticks``
    is the length of the replay ring that reconstructed the un-checkpointed
    suffix; ``recovery_latency_s`` is wall-clock respawn + restore + replay.
    """

    shard: int
    time: float
    reason: str
    n_flows: int
    replayed_ticks: int
    recovery_latency_s: float


@dataclass(frozen=True)
class ModelSwapped:
    """The engine hot-swapped its classification pipeline between ticks.

    Not a :class:`ContextEvent`: a swap concerns the whole engine, not one
    flow — consumers filtering on ``event.flow`` should special-case this
    type (analytics rollups ignore it entirely, so swap events never
    perturb fleet digests).  Emitted exactly once per swap: tick ``N`` ran
    the old model, tick ``N + 1`` runs the new one, and no flow, session
    or reducer state is touched in between.  ``old_digest`` / ``new_digest``
    are :func:`~repro.runtime.persistence.pipeline_digest` values — equal
    digests identify an identity swap (a no-op deployment rehearsal whose
    reports stay bit-identical).  On a sharded engine one event is emitted
    per shard (``shard`` is its index, or ``None`` on a single engine) and
    the supervisor sequences the swap so every shard cuts over on the same
    tick boundary.
    """

    time: float
    old_digest: str
    new_digest: str
    shard: "int | None" = None
