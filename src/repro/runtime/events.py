"""Typed context events emitted by the streaming runtime.

The deployed system (Fig. 6) does not produce one report per finished
session — it emits context *as it becomes known*: the game title after the
first ``N`` seconds of a flow, the player activity stage every slot, the
gameplay pattern once the confidence gate opens, and the calibrated QoE
verdict when the session ends.  The event types below are the runtime's
public contract; consumers (dashboards, per-subscriber aggregators, the
examples) pattern-match on the concrete class.

All events carry the canonical :class:`~repro.net.flow.FlowKey` of the flow
they describe and the feed-clock ``time`` (seconds) at which the underlying
condition became true.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pattern_classifier import PatternPrediction
from repro.core.pipeline import SessionContextReport
from repro.core.title_classifier import TitlePrediction
from repro.net.flow import FlowKey
from repro.simulation.catalog import PlayerStage

__all__ = [
    "ContextEvent",
    "SessionStarted",
    "TitleClassified",
    "StageUpdate",
    "PatternInferred",
    "SessionReport",
]


@dataclass(frozen=True)
class ContextEvent:
    """Base class: which flow, and when (feed-clock seconds)."""

    flow: FlowKey
    time: float


@dataclass(frozen=True)
class SessionStarted(ContextEvent):
    """A new 5-tuple flow appeared in the feed."""


@dataclass(frozen=True)
class TitleClassified(ContextEvent):
    """The title gate opened: ``N`` seconds of the flow have been observed.

    ``prediction`` equals what offline :meth:`GameTitleClassifier.
    predict_stream` reports for the same session (the classifier only reads
    the launch window) as long as no window packet arrives after the gate.
    """

    prediction: TitlePrediction


@dataclass(frozen=True)
class StageUpdate(ContextEvent):
    """One activity slot completed and was classified online.

    The stage is the runtime's *provisional* verdict: it is computed from
    causal (running-peak) relative volumetric attributes, whereas the
    offline timeline normalises early slots against a whole-session peak
    floor.  The authoritative timeline arrives with :class:`SessionReport`.
    """

    slot_index: int
    stage: PlayerStage


@dataclass(frozen=True)
class PatternInferred(ContextEvent):
    """The gameplay-pattern confidence gate opened for this flow."""

    prediction: PatternPrediction


@dataclass(frozen=True)
class SessionReport(ContextEvent):
    """The flow closed; ``report`` is bit-identical to offline ``process()``.

    ``reason`` is ``"eof"`` (feed ended / explicit close) or ``"idle"``
    (no packets for the engine's idle timeout).
    """

    report: SessionContextReport
    reason: str
    n_packets: int
    duration_s: float
