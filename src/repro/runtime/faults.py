"""Deterministic fault injection for the sharded runtime.

``tests/test_fault_tolerance.py`` (and the recovery benchmark) drive the
supervised fork runtime through *seeded, replayable* failure scenarios: a
:class:`FaultPlan` is a frozen set of fault actions pinned to (shard, tick)
coordinates, so a failing matrix entry reproduces from its seed alone.

Two fault surfaces:

* **process/transport faults** — consumed by
  :class:`~repro.runtime.supervisor.ShardSupervisor` while it drives the
  workers: :class:`KillWorker` (SIGKILL after the tick send — the worker
  dies with arbitrary in-flight state), :class:`StallWorker` (SIGSTOP — the
  worker hangs and only the recv deadline can notice), :class:`DuplicateTick`
  (the tick message is transmitted twice — the worker-side sequence dedupe
  must drop the second copy) and :class:`DelayTick` (the tick message is
  transmitted *after* the next tick's — the worker-side reorder stash must
  hold the early tick until the gap fills);
* **feed faults** — applied to the batch stream itself by
  :func:`apply_feed_faults` before any engine sees it:
  :class:`TruncateBatch` (drop the tail of a batch, as a capture probe does
  mid-overrun) and :class:`CorruptRTP` (overwrite RTP header columns with
  seeded garbage).  These are *data* changes, not recoverable failures — the
  contract is that the runtime never crashes and still equals the serial
  reference on the same (faulted) feed.

Ticks are counted from 0 in feed-batch order, matching the supervisor's
message sequence numbers (every shard receives every tick).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclasses_replace
from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.net.packet import PacketColumns, RTP_NONE

__all__ = [
    "CorruptRTP",
    "DelayTick",
    "DuplicateTick",
    "FaultPlan",
    "KillWorker",
    "StallWorker",
    "TruncateBatch",
    "apply_feed_faults",
]


@dataclass(frozen=True)
class KillWorker:
    """SIGKILL shard ``shard``'s worker right after tick ``tick`` is sent."""

    shard: int
    tick: int


@dataclass(frozen=True)
class StallWorker:
    """SIGSTOP shard ``shard``'s worker right after tick ``tick`` is sent.

    The process stays alive, so only the supervisor's per-tick recv deadline
    can detect it; recovery kills and respawns the stopped worker.
    """

    shard: int
    tick: int


@dataclass(frozen=True)
class DuplicateTick:
    """Transmit tick ``tick`` to shard ``shard`` twice, back to back."""

    shard: int
    tick: int


@dataclass(frozen=True)
class DelayTick:
    """Transmit tick ``tick`` to shard ``shard`` after tick ``tick + 1``.

    When ``tick`` is the feed's last tick there is no later send to swap
    with; the supervisor then flushes the held message before closing, which
    degrades the fault to a plain late delivery.
    """

    shard: int
    tick: int


@dataclass(frozen=True)
class TruncateBatch:
    """Keep only the first ``keep_fraction`` of feed batch ``tick``'s rows."""

    tick: int
    keep_fraction: float = 0.5


@dataclass(frozen=True)
class CorruptRTP:
    """Overwrite feed batch ``tick``'s RTP header columns with seeded noise.

    Every RTP-bearing row of the batch gets a random payload type, sequence
    number, timestamp and SSRC (drawn from ``FaultPlan.seed``), emulating a
    middlebox mangling the payload the probe parses.
    """

    tick: int


#: Faults the supervisor consumes on its transport (vs. feed-level faults).
_TRANSPORT_FAULTS = (KillWorker, StallWorker, DuplicateTick, DelayTick)
_FEED_FAULTS = (TruncateBatch, CorruptRTP)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of fault actions.

    ``actions`` mixes process/transport faults (consumed by the supervisor)
    and feed faults (consumed by :func:`apply_feed_faults`); ``seed`` feeds
    the deterministic noise of :class:`CorruptRTP`.
    """

    actions: Tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for action in self.actions:
            if not isinstance(action, _TRANSPORT_FAULTS + _FEED_FAULTS):
                raise TypeError(f"unknown fault action {action!r}")

    @classmethod
    def random(
        cls,
        seed: int,
        n_ticks: int,
        n_shards: int,
        n_kills: int = 1,
        n_duplicates: int = 0,
        n_delays: int = 0,
    ) -> "FaultPlan":
        """A random kill/duplicate/delay schedule drawn from ``seed``.

        Kill ticks are drawn from the middle 80% of the feed so the victim
        shard holds real state when it dies; duplicates and delays land
        anywhere before the final tick.
        """
        rng = np.random.default_rng(seed)
        actions = []
        lo, hi = max(1, n_ticks // 10), max(2, n_ticks - n_ticks // 10)
        for _ in range(n_kills):
            actions.append(
                KillWorker(
                    shard=int(rng.integers(n_shards)),
                    tick=int(rng.integers(lo, hi)),
                )
            )
        for _ in range(n_duplicates):
            actions.append(
                DuplicateTick(
                    shard=int(rng.integers(n_shards)),
                    tick=int(rng.integers(0, max(1, n_ticks - 1))),
                )
            )
        for _ in range(n_delays):
            actions.append(
                DelayTick(
                    shard=int(rng.integers(n_shards)),
                    tick=int(rng.integers(0, max(1, n_ticks - 1))),
                )
            )
        return cls(actions=tuple(actions), seed=seed)

    # ---------------------------------------------------------- lookups
    def transport_actions(self, shard: int, tick: int) -> Tuple:
        """The transport/process faults pinned to one (shard, tick) send."""
        return tuple(
            action
            for action in self.actions
            if isinstance(action, _TRANSPORT_FAULTS)
            and action.shard == shard
            and action.tick == tick
        )

    def feed_actions(self, tick: int) -> Tuple:
        """The feed faults pinned to one batch index."""
        return tuple(
            action
            for action in self.actions
            if isinstance(action, _FEED_FAULTS) and action.tick == tick
        )

    @property
    def has_feed_faults(self) -> bool:
        """Whether any action corrupts the feed itself (both backends).

        Feed faults (``TruncateBatch``/``CorruptRTP``) apply before
        partitioning, so a serial run under the same plan is the exact
        reference for the degraded output; process/transport faults are
        fork-only and leave this ``False`` on their own.
        """
        return any(isinstance(action, _FEED_FAULTS) for action in self.actions)


def _corrupt_rtp(columns: PacketColumns, rng: np.random.Generator) -> PacketColumns:
    """A copy of ``columns`` with every RTP row's header fields randomised."""
    if columns.rtp_ssrc is None:
        return columns
    rtp_rows = columns.rtp_ssrc != RTP_NONE
    n_rtp = int(np.count_nonzero(rtp_rows))
    if not n_rtp:
        return columns

    def noisy(column, high):
        corrupted = column.copy()
        corrupted[rtp_rows] = rng.integers(0, high, n_rtp, dtype=np.int64)
        return corrupted

    return dataclasses_replace(
        columns,
        rtp_payload_type=noisy(columns.rtp_payload_type, 0x80),
        rtp_sequence=noisy(columns.rtp_sequence, 0x10000),
        rtp_timestamp=noisy(columns.rtp_timestamp, 0x100000000),
        rtp_ssrc=noisy(columns.rtp_ssrc, 0x100000000),
    )


def apply_feed_faults(
    feed: Iterable[PacketColumns], plan: FaultPlan
) -> Iterator[PacketColumns]:
    """Yield ``feed``'s batches with the plan's feed faults applied.

    Deterministic for a fixed plan: corruption noise comes from one
    generator seeded with ``plan.seed`` and advances only on corrupted
    batches.  Forward the source feed's ``flow_contexts`` yourself when
    wrapping a :class:`~repro.runtime.feed.SessionFeed` — generators cannot
    carry attributes.
    """
    rng = np.random.default_rng(plan.seed)
    for tick, batch in enumerate(feed):
        for action in plan.feed_actions(tick):
            if isinstance(action, TruncateBatch):
                keep = int(len(batch) * action.keep_fraction)
                batch = batch.take(slice(0, keep))
            elif isinstance(action, CorruptRTP):
                batch = _corrupt_rtp(batch, rng)
        yield batch
