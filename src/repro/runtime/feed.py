"""Live feed sources for the streaming runtime.

A *live feed* is any iterable of :class:`~repro.net.packet.PacketColumns`
batches; a feed may additionally expose ``flow_contexts`` (a mapping of
:class:`~repro.net.flow.FlowKey` to
:class:`~repro.runtime.state.FlowContext`) to hand the engine out-of-band
knowledge about its flows.  Two sources ship here:

* :class:`SessionFeed` — replays generated :class:`GameSession` corpora as
  an interleaved packet feed, the runtime counterpart of the simulators'
  array-emitting generators.  Each session gets a unique client endpoint so
  the demux separates concurrent sessions, and its ``flow_contexts`` carry
  the platform / ``rate_scale`` a :class:`GameSession` input to offline
  ``process()`` would imply — which is what the streaming-vs-offline
  equivalence tests pin.
* :func:`pcap_feed` — chunked real-capture replay on top of
  :func:`repro.net.pcap.iter_pcap_column_batches`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.net.flow import FlowKey
from repro.net.packet import (
    DOWNSTREAM_CODE,
    PacketColumns,
    UPSTREAM_CODE,
)
from repro.net.pcap import iter_pcap_column_batches
from repro.runtime.demux import canonical_flow_key
from repro.runtime.state import FlowContext
from repro.simulation.session import GameSession

__all__ = ["SessionFeed", "pcap_feed"]

#: Platform reported by offline ``process(GameSession)`` for synthetic sessions.
_SESSION_PLATFORM = "GeForce NOW"


class SessionFeed:
    """Replay a corpus of generated sessions as one interleaved live feed.

    Parameters
    ----------
    sessions:
        The sessions to replay concurrently (all start at feed time 0 unless
        ``start_offsets`` staggers them).
    batch_seconds:
        Feed granularity: one batch spans this many seconds of feed time.
    client_port_base:
        Each session is re-addressed to a unique client port
        (``base + index``) so concurrent sessions demultiplex into distinct
        flows; all other packet fields are untouched, so a session's
        reassembled stream is value-identical to ``session.packets``.
    start_offsets:
        Optional per-session start times (seconds).  Offsets shift the
        packet timestamps, so an offset session's runtime report is no
        longer bit-comparable to offline ``process(session)`` — use 0 (the
        default) for equivalence testing, offsets for load realism.
    shuffle_within_batch:
        Randomly permute the rows of every batch (packets of all sessions
        interleave out of order, as after a multi-queue NIC); the engine's
        stable time sort restores per-flow order at close.
    random_state:
        Seed for ``shuffle_within_batch``.
    regions:
        Optional per-session serving-region tags, carried on each flow's
        :class:`FlowContext` for the fleet analytics tier; untagged
        sessions fold under the aggregator's default region.
    """

    def __init__(
        self,
        sessions: Sequence[GameSession],
        batch_seconds: float = 1.0,
        client_port_base: int = 52000,
        start_offsets: Optional[Sequence[float]] = None,
        shuffle_within_batch: bool = False,
        random_state: Optional[int] = None,
        regions: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        if not sessions:
            raise ValueError("sessions must not be empty")
        if batch_seconds <= 0:
            raise ValueError(f"batch_seconds must be positive, got {batch_seconds}")
        if start_offsets is not None and len(start_offsets) != len(sessions):
            raise ValueError(
                f"{len(sessions)} sessions but {len(start_offsets)} start offsets"
            )
        if regions is not None and len(regions) != len(sessions):
            raise ValueError(
                f"{len(sessions)} sessions but {len(regions)} regions"
            )
        self.batch_seconds = batch_seconds
        self._shuffle = shuffle_within_batch
        self._rng = np.random.default_rng(random_state)
        self.flow_contexts: Dict[FlowKey, FlowContext] = {}
        self._columns: List[PacketColumns] = []

        for index, session in enumerate(sessions):
            offset = float(start_offsets[index]) if start_offsets is not None else 0.0
            columns = session.packets.columns()
            n = len(columns)
            client_port = client_port_base + index
            down_address = (
                session.server_ip,
                session.client_ip,
                _server_port(columns, session),
                client_port,
                "udp",
            )
            up_address = (
                session.client_ip,
                session.server_ip,
                client_port,
                _server_port(columns, session),
                "udp",
            )
            addresses = np.empty(n, dtype=object)
            addresses.fill(down_address)
            up_rows = np.flatnonzero(columns.directions == UPSTREAM_CODE)
            if up_rows.size:
                filler = np.empty(up_rows.size, dtype=object)
                filler.fill(up_address)
                addresses[up_rows] = filler
            timestamps = (
                columns.timestamps if offset == 0.0 else columns.timestamps + offset
            )
            self._columns.append(
                PacketColumns(
                    timestamps=timestamps,
                    payload_sizes=columns.payload_sizes,
                    directions=columns.directions,
                    rtp_payload_type=columns.rtp_payload_type,
                    rtp_ssrc=columns.rtp_ssrc,
                    rtp_sequence=columns.rtp_sequence,
                    rtp_timestamp=columns.rtp_timestamp,
                    addresses=addresses,
                )
            )
            key = canonical_flow_key(down_address, DOWNSTREAM_CODE)
            self.flow_contexts[key] = FlowContext(
                platform=_SESSION_PLATFORM,
                rate_scale=session.rate_scale,
                region=regions[index] if regions is not None else None,
            )

    def __iter__(self) -> Iterator[PacketColumns]:
        starts = [float(c.timestamps[0]) for c in self._columns if len(c)]
        ends = [float(c.timestamps[-1]) for c in self._columns if len(c)]
        if not starts:
            return
        feed_time = min(starts)
        feed_end = max(ends)
        while feed_time <= feed_end:
            window_end = feed_time + self.batch_seconds
            parts = []
            for columns in self._columns:
                lo = int(np.searchsorted(columns.timestamps, feed_time, side="left"))
                hi = int(np.searchsorted(columns.timestamps, window_end, side="left"))
                if hi > lo:
                    parts.append(columns.take(slice(lo, hi)))
            if parts:
                batch = PacketColumns.concat(parts)
                if self._shuffle and len(batch) > 1:
                    batch = batch.take(self._rng.permutation(len(batch)))
                yield batch
            feed_time = window_end


def _server_port(columns: PacketColumns, session: GameSession) -> int:
    """The session's server port, read from its first packet's address."""
    if columns.addresses is not None and len(columns):
        address = columns.addresses[0]
        # downstream rows carry (server, client); upstream the reverse
        if columns.directions[0] == DOWNSTREAM_CODE:
            return int(address[2])
        return int(address[3])
    return 49004  # GeForce NOW default used by the session generator


def pcap_feed(
    path,
    batch_seconds: Optional[float] = None,
    batch_packets: int = 50_000,
    client_ip: Optional[str] = None,
) -> Iterator[PacketColumns]:
    """Chunked PCAP replay: a live feed over a real capture file.

    Thin wrapper over :func:`repro.net.pcap.iter_pcap_column_batches` (see
    its docstring for client inference caveats).
    """
    return iter_pcap_column_batches(
        path,
        batch_packets=batch_packets,
        batch_seconds=batch_seconds,
        client_ip=client_ip,
    )
