"""Fitted-pipeline persistence: deployments load models, they don't refit.

A fitted :class:`~repro.core.pipeline.ContextClassificationPipeline` is
three random forests plus a handful of scalar gate parameters.  After
training, each forest is fully described by flat node arrays
(:meth:`RandomForestClassifier.export_state` — the same layout the batched
traversal flattens to), so the whole pipeline serialises to

* ``pipeline.json`` — format version, per-classifier configuration (gate
  thresholds, windows, EMA weight, forest hyperparameters, class labels)
  and the QoE calibrator's expectations; human-diffable;
* ``pipeline.npz`` — the concatenated node arrays of every fitted forest
  (float64 thresholds and leaf probabilities round-trip exactly).

``load_pipeline(save_pipeline(p))`` predicts **bit-identically** to ``p``
on every path (single-row real-time walks, whole-matrix traversals, and
therefore whole ``SessionContextReport``s); training-only state (bootstrap
RNG, OOB diagnostics, per-node sample counts) is not preserved.  Workers
(:mod:`repro.runtime.shard`) and deployments share one trained artifact
instead of refitting per process.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.activity_classifier import PlayerActivityClassifier
from repro.core.pattern_classifier import GameplayPatternClassifier
from repro.core.pipeline import ContextClassificationPipeline
from repro.core.qoe import EffectiveQoECalibrator, ObjectiveQoEEstimator, QoEThresholds
from repro.core.title_classifier import GameTitleClassifier
from repro.ml.forest import RandomForestClassifier
from repro.simulation.catalog import ActivityPattern

__all__ = ["save_pipeline", "load_pipeline", "pipeline_digest", "PIPELINE_FORMAT"]

PIPELINE_FORMAT = "repro-context-pipeline/1"

_ARRAY_KEYS = (
    "feature",
    "threshold",
    "left",
    "right",
    "proba",
    "offsets",
    "tree_importances",
    "forest_importances",
)


def _forest_meta(model: RandomForestClassifier) -> dict:
    """JSON-serialisable hyperparameters + class labels of one forest."""
    fitted = hasattr(model, "classes_")
    meta = {
        "fitted": fitted,
        "n_estimators": model.n_estimators,
        "max_depth": model.max_depth,
        "min_samples_split": model.min_samples_split,
        "min_samples_leaf": model.min_samples_leaf,
        "max_features": model.max_features,
        "bootstrap": model.bootstrap,
        "random_state": model.random_state,
    }
    if fitted:
        classes = model.classes_
        meta["classes_kind"] = "int" if np.issubdtype(classes.dtype, np.integer) else "str"
        meta["classes"] = [
            int(c) if meta["classes_kind"] == "int" else str(c)
            for c in classes.tolist()
        ]
        meta["n_features"] = int(model.n_features_)
    return meta


def _forest_params(meta: dict) -> dict:
    return {
        "n_estimators": meta["n_estimators"],
        "max_depth": meta["max_depth"],
        "min_samples_split": meta["min_samples_split"],
        "min_samples_leaf": meta["min_samples_leaf"],
        "max_features": meta["max_features"],
        "bootstrap": meta["bootstrap"],
        "random_state": meta["random_state"],
    }


def _restore_forest(meta: dict, arrays: dict, prefix: str) -> RandomForestClassifier:
    if not meta["fitted"]:
        return RandomForestClassifier(**_forest_params(meta))
    classes = np.asarray(
        meta["classes"], dtype=np.int64 if meta["classes_kind"] == "int" else None
    )
    state = {key: arrays[f"{prefix}__{key}"] for key in _ARRAY_KEYS}
    return RandomForestClassifier.from_state(
        state, classes, meta["n_features"], params=_forest_params(meta)
    )


def _pipeline_config(pipeline: ContextClassificationPipeline) -> dict:
    """The JSON-serialisable configuration dict of a pipeline."""
    title = pipeline.title_classifier
    activity = pipeline.activity_classifier
    pattern = pipeline.pattern_classifier
    calibrator = pipeline.qoe_calibrator

    config = {
        "format": PIPELINE_FORMAT,
        "fitted": pipeline._fitted,
        "title": {
            "window_seconds": title.window_seconds,
            "slot_duration": title.slot_duration,
            "size_variation": title.size_variation,
            "confidence_threshold": title.confidence_threshold,
            "feature_mode": title.feature_mode,
            "feature_aggregate": title.feature_aggregate,
            "model": _forest_meta(title.model),
        },
        "activity": {
            "slot_duration": activity.slot_duration,
            "alpha": activity.alpha,
            "balance_classes": activity.balance_classes,
            "model": _forest_meta(activity.model),
        },
        "pattern": {
            "confidence_threshold": pattern.confidence_threshold,
            "min_slots": pattern.min_slots,
            "balance_classes": pattern.balance_classes,
            "model": _forest_meta(pattern.model),
        },
        "qoe": {
            "estimator_slot_duration": pipeline.qoe_estimator.slot_duration,
            "base_thresholds": {
                field: getattr(calibrator.base_thresholds, field)
                for field in (
                    "frame_rate_good",
                    "frame_rate_bad",
                    "throughput_good_mbps",
                    "throughput_bad_mbps",
                    "latency_good_ms",
                    "latency_bad_ms",
                    "loss_good",
                    "loss_bad",
                )
            },
            "pattern_demand": {
                pattern_key.value: scale
                for pattern_key, scale in calibrator.pattern_demand.items()
            },
            "min_scale": calibrator.min_scale,
            "reference_demand_mbps": calibrator.reference_demand_mbps,
        },
    }
    return config


def _pipeline_arrays(pipeline: ContextClassificationPipeline) -> dict:
    """Flat node arrays of every fitted forest, keyed ``<prefix>__<key>``."""
    arrays = {}
    for prefix, classifier in (
        ("title", pipeline.title_classifier),
        ("activity", pipeline.activity_classifier),
        ("pattern", pipeline.pattern_classifier),
    ):
        model = classifier.model
        if hasattr(model, "classes_"):
            for key, value in model.export_state().items():
                arrays[f"{prefix}__{key}"] = value
    return arrays


def pipeline_digest(pipeline: ContextClassificationPipeline) -> str:
    """Deterministic content digest of a pipeline's configuration + models.

    SHA-256 over the sorted-key configuration JSON followed by the raw
    bytes of every forest node array (the exact float64 thresholds and
    leaf probabilities).  Two pipelines predict bit-identically whenever
    their digests match, so the digest is what
    :class:`~repro.runtime.events.ModelSwapped` reports to distinguish an
    identity swap from a real model change.  Cached on the pipeline
    (``fit`` invalidates the cache).
    """
    cached = getattr(pipeline, "_digest", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    config = _pipeline_config(pipeline)
    hasher.update(json.dumps(config, sort_keys=True).encode())
    arrays = _pipeline_arrays(pipeline)
    for key in sorted(arrays):
        value = np.ascontiguousarray(arrays[key])
        hasher.update(key.encode())
        hasher.update(str(value.dtype).encode())
        hasher.update(str(value.shape).encode())
        hasher.update(value.tobytes())
    digest = hasher.hexdigest()
    pipeline._digest = digest
    return digest


def save_pipeline(
    pipeline: ContextClassificationPipeline, path: Union[str, Path]
) -> Path:
    """Persist a fitted pipeline to ``<path>/pipeline.json`` + ``pipeline.npz``.

    ``path`` is a directory (created if missing).  Returns the directory.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    (path / "pipeline.json").write_text(
        json.dumps(_pipeline_config(pipeline), indent=2) + "\n"
    )
    with (path / "pipeline.npz").open("wb") as handle:
        np.savez(handle, **_pipeline_arrays(pipeline))
    return path


def load_pipeline(path: Union[str, Path]) -> ContextClassificationPipeline:
    """Load a pipeline saved by :func:`save_pipeline` (inference-ready)."""
    path = Path(path)
    config = json.loads((path / "pipeline.json").read_text())
    if config.get("format") != PIPELINE_FORMAT:
        raise ValueError(
            f"unsupported pipeline format {config.get('format')!r} "
            f"(expected {PIPELINE_FORMAT!r})"
        )
    with np.load(path / "pipeline.npz", allow_pickle=False) as archive:
        arrays = {key: archive[key] for key in archive.files}

    title_cfg = config["title"]
    activity_cfg = config["activity"]
    pattern_cfg = config["pattern"]
    qoe_cfg = config["qoe"]

    pipeline = ContextClassificationPipeline(
        title_window_seconds=title_cfg["window_seconds"],
        title_slot_duration=title_cfg["slot_duration"],
        activity_slot_duration=activity_cfg["slot_duration"],
        activity_alpha=activity_cfg["alpha"],
        pattern_confidence_threshold=pattern_cfg["confidence_threshold"],
        title_confidence_threshold=title_cfg["confidence_threshold"],
    )
    pipeline.title_classifier = GameTitleClassifier(
        window_seconds=title_cfg["window_seconds"],
        slot_duration=title_cfg["slot_duration"],
        size_variation=title_cfg["size_variation"],
        confidence_threshold=title_cfg["confidence_threshold"],
        feature_mode=title_cfg["feature_mode"],
        feature_aggregate=title_cfg["feature_aggregate"],
        model=_restore_forest(title_cfg["model"], arrays, "title"),
    )
    pipeline.activity_classifier = PlayerActivityClassifier(
        slot_duration=activity_cfg["slot_duration"],
        alpha=activity_cfg["alpha"],
        balance_classes=activity_cfg["balance_classes"],
        model=_restore_forest(activity_cfg["model"], arrays, "activity"),
    )
    pipeline.pattern_classifier = GameplayPatternClassifier(
        confidence_threshold=pattern_cfg["confidence_threshold"],
        min_slots=pattern_cfg["min_slots"],
        balance_classes=pattern_cfg["balance_classes"],
        model=_restore_forest(pattern_cfg["model"], arrays, "pattern"),
    )
    pipeline.qoe_estimator = ObjectiveQoEEstimator(
        slot_duration=qoe_cfg["estimator_slot_duration"]
    )
    pipeline.qoe_calibrator = EffectiveQoECalibrator(
        base_thresholds=QoEThresholds(**qoe_cfg["base_thresholds"]),
        pattern_demand={
            ActivityPattern(key): value
            for key, value in qoe_cfg["pattern_demand"].items()
        },
        min_scale=qoe_cfg["min_scale"],
        reference_demand_mbps=qoe_cfg["reference_demand_mbps"],
    )
    pipeline._fitted = bool(config["fitted"])
    if pipeline._fitted:
        # warm the fused kernels directly from the flat npz arrays -- no
        # recursive _Node tree is ever materialised on the load path
        pipeline.compile_kernels()
    return pipeline
