"""Sharded execution: partition sessions across worker processes.

Sessions are embarrassingly parallel — every pipeline stage is per-session
once flows are demultiplexed — so the runtime scales across cores by
partitioning *sessions*, not stages:

* **corpus sharding** (:meth:`ShardedEngine.process_many`) — the source
  list splits into contiguous chunks, one worker per chunk runs the batch
  engine (``pipeline.process_many``) and the parent reassembles reports in
  input order.  Workers are forked, so the fitted pipeline and the corpus
  transfer by copy-on-write page sharing instead of pickling; only the
  (small) reports cross process boundaries.
* **feed sharding** (:meth:`ShardedEngine.run_feed`) — the parent demuxes
  each batch once and routes every flow to a shard by a deterministic key
  hash; each shard runs its own
  :class:`~repro.runtime.engine.StreamingEngine` over its subset of flows.
  With the ``"fork"`` backend the shards are worker processes fed over
  pipes with a **double-buffered** protocol: tick ``N+1`` is partitioned
  while the workers still process tick ``N`` (each worker's ``N`` results
  drain immediately before its ``N+1`` send), hiding the parent's demux
  latency behind the workers' compute; the ``"serial"`` backend runs the
  same partitioning in-process, which is the deterministic reference the
  tests pin against.

Per-session results are independent of the partitioning, so sharded output
equals single-process output exactly (reports bit-identical, events
identical per flow; only inter-flow event interleaving differs).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import zlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.pipeline import ContextClassificationPipeline, SessionContextReport
from repro.net.flow import FlowKey
from repro.net.packet import PacketColumns
from repro.runtime.demux import FlowDemux
from repro.runtime.engine import StreamingEngine
from repro.runtime.events import ContextEvent
from repro.runtime.state import SESSION_MODES, FlowContext

__all__ = ["ShardedEngine", "default_worker_count"]


def default_worker_count() -> int:
    """Worker count matched to the cores this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without affinity masks
        return max(1, os.cpu_count() or 1)


def shard_of(key: FlowKey, n_shards: int) -> int:
    """Deterministic shard index of a flow key (stable across processes).

    Python's built-in ``hash`` of strings is salted per process, so the
    assignment uses CRC32 over the canonical endpoint string instead.
    """
    endpoint = (
        f"{key.client_ip}:{key.client_port}>"
        f"{key.server_ip}:{key.server_port}/{key.protocol}"
    )
    return zlib.crc32(endpoint.encode()) % n_shards


# --------------------------------------------------------------------------
# fork-inherited worker state (set in the parent immediately before forking;
# workers read it via copy-on-write memory, nothing is pickled)
# --------------------------------------------------------------------------
_FORK_STATE: dict = {}


def _process_chunk(span: Tuple[int, int]) -> List[SessionContextReport]:
    pipeline = _FORK_STATE["pipeline"]
    sources = _FORK_STATE["sources"]
    return pipeline.process_many(
        sources[span[0] : span[1]], latency_ms=_FORK_STATE["latency_ms"]
    )


def _feed_worker(connection) -> None:
    engine = StreamingEngine(
        _FORK_STATE["pipeline"],
        idle_timeout_s=_FORK_STATE["idle_timeout_s"],
        latency_ms=_FORK_STATE["latency_ms"],
        session_mode=_FORK_STATE["session_mode"],
        qoe_interval_s=_FORK_STATE["qoe_interval_s"],
    )
    for key, context in _FORK_STATE["contexts"].items():
        engine.set_flow_context(key, context)
    while True:
        try:
            message = connection.recv()
        except EOFError:  # parent went away without a close message
            return
        if message[0] == "tick":
            _tag, pairs, clock = message
            connection.send(engine.ingest_demuxed(pairs, clock))
        elif message[0] == "close":
            connection.send(engine.close_all())
            connection.close()
            return


class ShardedEngine:
    """Multi-core front end over a fitted pipeline.

    Parameters
    ----------
    pipeline:
        A fitted :class:`ContextClassificationPipeline`.
    n_workers:
        Shard count; defaults to the usable core count
        (:func:`default_worker_count`).
    backend:
        ``"fork"`` runs shards as forked worker processes; ``"serial"``
        runs the identical partitioning in-process (reference/fallback);
        ``"auto"`` picks ``"fork"`` where available and useful.
    idle_timeout_s / latency_ms / session_mode / qoe_interval_s:
        Forwarded to every shard's :class:`StreamingEngine`.
    """

    def __init__(
        self,
        pipeline: ContextClassificationPipeline,
        n_workers: Optional[int] = None,
        backend: str = "auto",
        idle_timeout_s: Optional[float] = None,
        latency_ms: Optional[float] = None,
        session_mode: str = "bounded",
        qoe_interval_s: float = 10.0,
    ) -> None:
        if backend not in ("auto", "fork", "serial"):
            raise ValueError(
                f"backend must be 'auto', 'fork' or 'serial', got {backend!r}"
            )
        if session_mode not in SESSION_MODES:
            # fail fast here: deferring the check to the shard engines would
            # kill a forked worker and surface only as an EOFError upstream
            raise ValueError(
                f"session_mode must be one of {SESSION_MODES}, got {session_mode!r}"
            )
        pipeline._require_fitted()
        self.pipeline = pipeline
        self.n_workers = n_workers or default_worker_count()
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        fork_available = "fork" in mp.get_all_start_methods()
        if backend == "fork" and not fork_available:
            raise ValueError("the 'fork' start method is unavailable on this platform")
        if backend == "auto":
            backend = "fork" if fork_available and self.n_workers > 1 else "serial"
        self.backend = backend
        self.idle_timeout_s = idle_timeout_s
        self.latency_ms = latency_ms
        self.session_mode = session_mode
        self.qoe_interval_s = qoe_interval_s

    # ------------------------------------------------------------ corpora
    def process_many(
        self, sources: Iterable, latency_ms: Optional[float] = None
    ) -> List[SessionContextReport]:
        """Sharded ``pipeline.process_many``: identical reports, many cores.

        The sources are classified in contiguous chunks, one worker per
        chunk; every report is identical to single-process
        ``pipeline.process_many`` (each session's classification is
        independent of its batch).
        """
        sources = list(sources)
        latency = latency_ms if latency_ms is not None else self.latency_ms
        n_chunks = min(self.n_workers, len(sources))
        if self.backend == "serial" or n_chunks <= 1:
            return self.pipeline.process_many(sources, latency_ms=latency)
        spans = _even_spans(len(sources), n_chunks)
        _FORK_STATE.update(
            pipeline=self.pipeline, sources=sources, latency_ms=latency
        )
        try:
            context = mp.get_context("fork")
            with context.Pool(processes=n_chunks) as pool:
                chunks = pool.map(_process_chunk, spans)
        finally:
            _FORK_STATE.clear()
        return [report for chunk in chunks for report in chunk]

    # ------------------------------------------------------------ live feeds
    def run_feed(
        self, feed: Iterable[PacketColumns], close_at_end: bool = True
    ) -> Iterator[ContextEvent]:
        """Drive a live feed through flow-hash-partitioned shard engines.

        Yields every shard's events tick by tick (shard order within a
        tick, so the stream is deterministic for a deterministic feed).
        Each flow lives on exactly one shard, so its event sequence and
        final report equal the single-process engine's.
        """
        contexts: Dict[FlowKey, FlowContext] = dict(
            getattr(feed, "flow_contexts", None) or {}
        )
        if self.backend == "serial" or self.n_workers <= 1:
            yield from self._run_feed_serial(feed, contexts, close_at_end)
            return
        yield from self._run_feed_fork(feed, contexts, close_at_end)

    def _partition(
        self, demux: FlowDemux, batch: PacketColumns
    ) -> Tuple[List[List[Tuple[FlowKey, PacketColumns]]], float]:
        pairs = demux.split(batch)
        shards: List[List[Tuple[FlowKey, PacketColumns]]] = [
            [] for _ in range(self.n_workers)
        ]
        for key, sub in pairs:
            shards[shard_of(key, self.n_workers)].append((key, sub))
        clock = float(batch.timestamps.max()) if len(batch) else float("-inf")
        return shards, clock

    def _run_feed_serial(self, feed, contexts, close_at_end):
        engines = [
            StreamingEngine(
                self.pipeline,
                idle_timeout_s=self.idle_timeout_s,
                latency_ms=self.latency_ms,
                session_mode=self.session_mode,
                qoe_interval_s=self.qoe_interval_s,
            )
            for _ in range(self.n_workers)
        ]
        for engine in engines:
            for key, context in contexts.items():
                engine.set_flow_context(key, context)
        demux = FlowDemux()
        clock = float("-inf")
        for batch in feed:
            shards, batch_clock = self._partition(demux, batch)
            clock = max(clock, batch_clock)
            for engine, pairs in zip(engines, shards):
                yield from engine.ingest_demuxed(pairs, clock)
        if close_at_end:
            for engine in engines:
                yield from engine.close_all()

    def _run_feed_fork(self, feed, contexts, close_at_end):
        _FORK_STATE.update(
            pipeline=self.pipeline,
            contexts=contexts,
            idle_timeout_s=self.idle_timeout_s,
            latency_ms=self.latency_ms,
            session_mode=self.session_mode,
            qoe_interval_s=self.qoe_interval_s,
        )
        context = mp.get_context("fork")
        connections = []
        workers = []
        try:
            for _ in range(self.n_workers):
                parent_end, child_end = context.Pipe()
                worker = context.Process(target=_feed_worker, args=(child_end,))
                worker.start()
                child_end.close()
                connections.append(parent_end)
                workers.append(worker)
        finally:
            _FORK_STATE.clear()
        try:
            demux = FlowDemux()
            clock = float("-inf")
            # double-buffered protocol: tick N+1 is partitioned while the
            # workers still chew tick N, hiding the parent's demux latency.
            # Per worker the parent drains tick N's results immediately
            # before sending tick N+1, so a worker never holds an unsent
            # result while the parent writes to it — the send/send deadlock
            # of a fire-and-forget pipeline cannot occur, whatever the
            # payload sizes, while at most one tick stays in flight.
            in_flight = False
            for batch in feed:
                shards, batch_clock = self._partition(demux, batch)
                clock = max(clock, batch_clock)
                for connection, pairs in zip(connections, shards):
                    if in_flight:
                        yield from connection.recv()
                    connection.send(("tick", pairs, clock))
                in_flight = True
            if in_flight:
                for connection in connections:
                    yield from connection.recv()
            if close_at_end:
                for connection in connections:
                    connection.send(("close",))
                for connection in connections:
                    yield from connection.recv()
        finally:
            for connection in connections:
                connection.close()
            for worker in workers:
                worker.join(timeout=30)
                if worker.is_alive():
                    worker.terminate()


def _even_spans(total: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``n_chunks`` near-equal contiguous spans."""
    base, extra = divmod(total, n_chunks)
    spans = []
    start = 0
    for index in range(n_chunks):
        end = start + base + (1 if index < extra else 0)
        spans.append((start, end))
        start = end
    return spans
