"""Sharded execution: partition sessions across worker processes.

Sessions are embarrassingly parallel — every pipeline stage is per-session
once flows are demultiplexed — so the runtime scales across cores by
partitioning *sessions*, not stages:

* **corpus sharding** (:meth:`ShardedEngine.process_many`) — the source
  list splits into contiguous chunks, one worker per chunk runs the batch
  engine (``pipeline.process_many``) and the parent reassembles reports in
  input order.  Workers are forked, so the fitted pipeline and the corpus
  transfer by copy-on-write page sharing instead of pickling; only the
  (small) reports cross process boundaries.
* **feed sharding** (:meth:`ShardedEngine.run_feed`) — the parent demuxes
  each batch once and routes every flow to a shard by a deterministic key
  hash; each shard runs its own
  :class:`~repro.runtime.engine.StreamingEngine` over its subset of flows.
  With the ``"fork"`` backend the shards are worker processes fed over
  pipes with a **double-buffered** protocol: tick ``N+1`` is partitioned
  while the workers still process tick ``N`` (each worker's ``N`` results
  drain immediately before its ``N+1`` send), hiding the parent's demux
  latency behind the workers' compute; the ``"serial"`` backend runs the
  same partitioning in-process, which is the deterministic reference the
  tests pin against.

Per-session results are independent of the partitioning, so sharded output
equals single-process output exactly (reports bit-identical, events
identical per flow; only inter-flow event interleaving differs).

The fork backend is supervised
(:class:`~repro.runtime.supervisor.ShardSupervisor`): dead or hung workers
are detected under a recv deadline, respawned, and re-homed exactly from
periodic engine checkpoints plus a bounded replay ring — close reports stay
bit-identical to an uninterrupted run, and recovery is accounted by typed
``WorkerRestarted`` / ``SessionRecovered`` events (DESIGN.md §8).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import zlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from dataclasses import replace as dataclasses_replace
from pathlib import Path
from typing import Union

from repro.core.pipeline import ContextClassificationPipeline, SessionContextReport
from repro.net.flow import FlowKey
from repro.net.packet import PacketColumns
from repro.runtime.demux import FlowDemux
from repro.runtime.engine import OverloadPolicy, StreamingEngine, _check_swap_geometry
from repro.runtime.events import ContextEvent
from repro.runtime.faults import FaultPlan, apply_feed_faults
from repro.runtime.shm import DATA_PLANES
from repro.runtime.state import SESSION_MODES, FlowContext
from repro.runtime.supervisor import ShardSupervisor

import numpy as np

__all__ = ["ShardedEngine", "default_worker_count"]


def default_worker_count() -> int:
    """Worker count matched to the cores this process may run on."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without affinity masks
        return max(1, os.cpu_count() or 1)


def shard_of(key: FlowKey, n_shards: int) -> int:
    """Deterministic shard index of a flow key (stable across processes).

    Python's built-in ``hash`` of strings is salted per process, so the
    assignment uses CRC32 over the canonical endpoint string instead.
    """
    endpoint = (
        f"{key.client_ip}:{key.client_port}>"
        f"{key.server_ip}:{key.server_port}/{key.protocol}"
    )
    return zlib.crc32(endpoint.encode()) % n_shards


# --------------------------------------------------------------------------
# fork-inherited worker state (set in the parent immediately before forking;
# workers read it via copy-on-write memory, nothing is pickled)
# --------------------------------------------------------------------------
_FORK_STATE: dict = {}


def _process_chunk(span: Tuple[int, int]) -> List[SessionContextReport]:
    pipeline = _FORK_STATE["pipeline"]
    sources = _FORK_STATE["sources"]
    return pipeline.process_many(
        sources[span[0] : span[1]],
        latency_ms=_FORK_STATE["latency_ms"],
        qoe_mode=_FORK_STATE["qoe_mode"],
    )


class ShardedEngine:
    """Multi-core front end over a fitted pipeline.

    Parameters
    ----------
    pipeline:
        A fitted :class:`ContextClassificationPipeline`.
    n_workers:
        Shard count; defaults to the usable core count
        (:func:`default_worker_count`).
    backend:
        ``"fork"`` runs shards as forked worker processes; ``"serial"``
        runs the identical partitioning in-process (reference/fallback);
        ``"auto"`` picks ``"fork"`` where available and useful.
    idle_timeout_s / latency_ms / session_mode / qoe_interval_s / overload:
        Forwarded to every shard's :class:`StreamingEngine`.
    snapshot_every_ticks:
        Fork backend: each worker checkpoints its engine every this many
        feed ticks; the parent's replay ring holds at most this many
        un-checkpointed ticks per shard (plus the in-flight one).  Smaller
        values shrink the ring and speed replay, at more snapshot work.
    recv_timeout_s:
        Fork backend: per-reply deadline after which an unresponsive worker
        is declared hung and recovered.
    data_plane:
        Fork backend: how tick batches reach the workers (DESIGN.md §12).
        ``"shm"`` gathers each shard's rows into a shared-memory column
        ring and sends only control messages down the pipe; ``"pipe"`` is
        the legacy inline-pickle payload; ``"auto"`` (default) picks
        ``"shm"`` unless the ``REPRO_DATA_PLANE`` environment variable
        says otherwise.  Output is bit-identical on either plane.
    ring_slots / ring_slot_rows:
        Fork backend, shm plane: slots per shard ring (default
        ``snapshot_every_ticks + 2``, covering every tick that can be
        un-checkpointed at once) and rows per slot (a larger tick falls
        back to inline pickling for that tick, counted in
        ``last_feed_stats["shm_fallback_ticks"]``).
    analytics:
        Attach a :class:`~repro.analytics.fleet.FleetAggregator` to every
        shard engine; after a feed (or ``process_many``) the merged fleet
        rollups land on :attr:`analytics`.  Shard-local aggregator state
        rides the checkpoint protocol, so the merged rollups are
        bit-identical to a single-process run even through worker crashes.
    """

    def __init__(
        self,
        pipeline: ContextClassificationPipeline,
        n_workers: Optional[int] = None,
        backend: str = "auto",
        idle_timeout_s: Optional[float] = None,
        latency_ms: Optional[float] = None,
        session_mode: str = "bounded",
        qoe_interval_s: float = 10.0,
        overload: Optional[OverloadPolicy] = None,
        snapshot_every_ticks: int = 16,
        recv_timeout_s: float = 30.0,
        analytics: bool = False,
        data_plane: str = "auto",
        ring_slots: Optional[int] = None,
        ring_slot_rows: int = 65536,
    ) -> None:
        if backend not in ("auto", "fork", "serial"):
            raise ValueError(
                f"backend must be 'auto', 'fork' or 'serial', got {backend!r}"
            )
        if data_plane not in DATA_PLANES:
            raise ValueError(
                f"data_plane must be one of {DATA_PLANES}, got {data_plane!r}"
            )
        if session_mode not in SESSION_MODES:
            # fail fast here: deferring the check to the shard engines would
            # kill a forked worker and surface only as an EOFError upstream
            raise ValueError(
                f"session_mode must be one of {SESSION_MODES}, got {session_mode!r}"
            )
        pipeline._require_fitted()
        self.pipeline = pipeline
        self.n_workers = n_workers or default_worker_count()
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        fork_available = "fork" in mp.get_all_start_methods()
        if backend == "fork" and not fork_available:
            raise ValueError("the 'fork' start method is unavailable on this platform")
        if backend == "auto":
            backend = "fork" if fork_available and self.n_workers > 1 else "serial"
        self.backend = backend
        self.idle_timeout_s = idle_timeout_s
        self.latency_ms = latency_ms
        self.session_mode = session_mode
        self.qoe_interval_s = qoe_interval_s
        self.overload = overload
        self.snapshot_every_ticks = snapshot_every_ticks
        self.recv_timeout_s = recv_timeout_s
        self.data_plane = data_plane
        self.ring_slots = ring_slots
        self.ring_slot_rows = ring_slot_rows
        self.analytics_enabled = bool(analytics)
        #: merged fleet rollups of the most recent feed / corpus run
        #: (``None`` until a run completes with ``analytics=True``)
        self.analytics = None
        self._supervisor: Optional[ShardSupervisor] = None
        self._pending_swap: Optional[ContextClassificationPipeline] = None
        #: supervision counters of the most recent fork-backend feed
        #: (restarts, replayed ticks, recovery latencies, ring peak bytes)
        self.last_feed_stats: Optional[dict] = None

    def _engine_kwargs(self) -> dict:
        return {
            "idle_timeout_s": self.idle_timeout_s,
            "latency_ms": self.latency_ms,
            "session_mode": self.session_mode,
            "qoe_interval_s": self.qoe_interval_s,
            "overload": self.overload,
            "analytics": self.analytics_enabled,
        }

    # ------------------------------------------------------------ corpora
    def process_many(
        self,
        sources: Iterable,
        latency_ms: Optional[float] = None,
        qoe_mode: str = "exact",
        regions: Optional[List[Optional[str]]] = None,
    ) -> List[SessionContextReport]:
        """Sharded ``pipeline.process_many``: identical reports, many cores.

        The sources are classified in contiguous chunks, one worker per
        chunk; every report is identical to single-process
        ``pipeline.process_many`` (each session's classification is
        independent of its batch).  With ``analytics`` enabled the offline
        fleet fold (:func:`~repro.analytics.fleet.fold_corpus`) runs over
        the corpus and its reports, landing rollups on :attr:`analytics`
        that are bit-identical to streaming the same sessions
        (``regions`` tags sessions positionally, like
        :class:`~repro.runtime.feed.SessionFeed`).
        """
        sources = list(sources)
        latency = latency_ms if latency_ms is not None else self.latency_ms
        n_chunks = min(self.n_workers, len(sources))
        if self.backend == "serial" or n_chunks <= 1:
            reports = self.pipeline.process_many(
                sources, latency_ms=latency, qoe_mode=qoe_mode
            )
        else:
            spans = _even_spans(len(sources), n_chunks)
            _FORK_STATE.update(
                pipeline=self.pipeline,
                sources=sources,
                latency_ms=latency,
                qoe_mode=qoe_mode,
            )
            try:
                context = mp.get_context("fork")
                with context.Pool(processes=n_chunks) as pool:
                    chunks = pool.map(_process_chunk, spans)
            finally:
                _FORK_STATE.clear()
            reports = [report for chunk in chunks for report in chunk]
        if self.analytics_enabled:
            from repro.analytics.fleet import fold_corpus

            self.analytics = fold_corpus(
                self.pipeline,
                sources,
                reports=reports,
                regions=regions,
                latency_ms=latency,
                qoe_mode=qoe_mode,
                qoe_interval_s=self.qoe_interval_s,
            )
        return reports

    # ------------------------------------------------------------ live feeds
    def run_feed(
        self,
        feed: Iterable[PacketColumns],
        close_at_end: bool = True,
        fault_plan: Optional[FaultPlan] = None,
    ) -> Iterator[ContextEvent]:
        """Drive a live feed through flow-hash-partitioned shard engines.

        Yields every shard's events tick by tick (shard order within a
        tick, so the stream is deterministic for a deterministic feed).
        Each flow lives on exactly one shard, so its event sequence and
        final report equal the single-process engine's.

        ``fault_plan`` injects seeded failures: its *feed* faults (batch
        truncation, RTP corruption) are applied on both backends — so a
        serial run is the exact reference for a faulted fork run — while
        its *transport/process* faults (kill, stall, duplicate, delay)
        only apply where they mean something, the fork backend.
        """
        contexts: Dict[FlowKey, FlowContext] = dict(
            getattr(feed, "flow_contexts", None) or {}
        )
        if fault_plan is not None and fault_plan.has_feed_faults:
            feed = apply_feed_faults(feed, fault_plan)
        if self.backend == "serial" or self.n_workers <= 1:
            yield from self._run_feed_serial(feed, contexts, close_at_end)
            return
        yield from self._run_feed_fork(feed, contexts, close_at_end, fault_plan)

    def request_swap(
        self, pipeline: Union[str, Path, ContextClassificationPipeline]
    ) -> ContextClassificationPipeline:
        """Request a zero-downtime model swap of a running feed.

        ``pipeline`` is a fitted pipeline or a
        :func:`~repro.runtime.persistence.save_pipeline` directory (loaded
        here, in the parent — workers receive the fitted object).  The swap
        is applied by :meth:`run_feed` at the next batch boundary,
        **sequenced so every shard cuts over on the same tick** (fork
        backend: one ``swap_all`` control message through the supervisor;
        serial backend: every in-process engine swaps between the same two
        batches).  Each shard emits one
        :class:`~repro.runtime.events.ModelSwapped` event into the feed's
        event stream; flow, session and reducer state is untouched and an
        identity swap leaves every report bit-identical.

        Fold-geometry mismatches (title window, slot duration, EMA weight)
        raise :class:`ValueError` here, before anything reaches a worker.
        A second request before the first is applied replaces it (last
        request wins).  Returns the resolved replacement pipeline.
        """
        if not isinstance(pipeline, ContextClassificationPipeline):
            from repro.runtime.persistence import load_pipeline

            pipeline = load_pipeline(pipeline)
        pipeline._require_fitted()
        _check_swap_geometry(self.pipeline, pipeline)
        self._pending_swap = pipeline
        return pipeline

    def close(self) -> None:
        """Reap any workers of an in-progress fork feed (idempotent).

        ``run_feed`` reaps its own workers when the generator finishes or
        is closed; this is the belt-and-braces path for callers unwinding
        after an exception without closing the generator.
        """
        supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            supervisor.stop()

    def _partition_indices(
        self, demux: FlowDemux, batch: PacketColumns
    ) -> Tuple[List[List[Tuple[FlowKey, np.ndarray]]], float]:
        """Route one batch's flows to shards as ``(key, row_indices)`` lists.

        Nothing is materialised here: the fork loop hands the index lists
        plus the source batch to the supervisor, which gathers the rows
        straight into a shared-memory slot (or pickles them inline on the
        pipe plane) — see :meth:`ShardSupervisor.send_tick_indexed`.
        """
        index_pairs = demux.split_indices(batch)
        shards: List[List[Tuple[FlowKey, np.ndarray]]] = [
            [] for _ in range(self.n_workers)
        ]
        for key, rows in index_pairs:
            shards[shard_of(key, self.n_workers)].append((key, rows))
        clock = float(batch.timestamps.max()) if len(batch) else float("-inf")
        return shards, clock

    def _partition(
        self, demux: FlowDemux, batch: PacketColumns
    ) -> Tuple[List[List[Tuple[FlowKey, PacketColumns]]], float]:
        """Route one batch to shards as materialised per-flow sub-batches."""
        index_shards, clock = self._partition_indices(demux, batch)
        shards = [
            [(key, batch.take(rows)) for key, rows in pairs]
            for pairs in index_shards
        ]
        return shards, clock

    def _run_feed_serial(self, feed, contexts, close_at_end):
        engines = [
            StreamingEngine(self.pipeline, **self._engine_kwargs())
            for _ in range(self.n_workers)
        ]
        for engine in engines:
            for key, context in contexts.items():
                engine.set_flow_context(key, context)
        demux = FlowDemux()
        clock = float("-inf")

        def apply_pending_swap():
            swap, self._pending_swap = self._pending_swap, None
            for shard, engine in enumerate(engines):
                yield dataclasses_replace(engine.swap_pipeline(swap), shard=shard)
            self.pipeline = swap

        for batch in feed:
            if self._pending_swap is not None:
                yield from apply_pending_swap()
            shards, batch_clock = self._partition(demux, batch)
            clock = max(clock, batch_clock)
            for engine, pairs in zip(engines, shards):
                yield from engine.ingest_demuxed(pairs, clock)
        if self._pending_swap is not None:
            # requested after the last batch: cut over before the close
            # reports so the new model classifies the final cascades
            yield from apply_pending_swap()
        if close_at_end:
            for engine in engines:
                yield from engine.close_all()
        if self.analytics_enabled:
            from repro.analytics.fleet import FleetAggregator

            merged = FleetAggregator()
            for engine in engines:
                if engine.analytics is not None:
                    merged.merge(engine.analytics)
            self.analytics = merged

    def _run_feed_fork(self, feed, contexts, close_at_end, fault_plan):
        supervisor = ShardSupervisor(
            self.pipeline,
            n_shards=self.n_workers,
            engine_kwargs=self._engine_kwargs(),
            contexts=contexts,
            snapshot_every_ticks=self.snapshot_every_ticks,
            recv_timeout_s=self.recv_timeout_s,
            fault_plan=fault_plan,
            data_plane=self.data_plane,
            ring_slots=self.ring_slots,
            ring_slot_rows=self.ring_slot_rows,
        )
        self._supervisor = supervisor
        supervisor.start()
        try:
            demux = FlowDemux()
            # double-buffered protocol: tick N+1 is partitioned while the
            # workers still chew tick N, hiding the parent's demux latency.
            # Per worker the parent drains tick N's results immediately
            # before sending tick N+1, so a worker never holds an unsent
            # result while the parent writes to it — the send/send deadlock
            # of a fire-and-forget pipeline cannot occur, whatever the
            # payload sizes, while at most one tick stays in flight.
            in_flight = False
            for batch in feed:
                if self._pending_swap is not None:
                    swap, self._pending_swap = self._pending_swap, None
                    # one sequenced control message per shard: every worker
                    # applies the swap at the same point of its fold order
                    yield from supervisor.swap_all(swap)
                    self.pipeline = swap
                shards, batch_clock = self._partition_indices(demux, batch)
                supervisor.begin_tick(batch_clock)
                for shard, index_pairs in enumerate(shards):
                    if in_flight:
                        yield from supervisor.drain(shard)
                    yield from supervisor.send_tick_indexed(
                        shard, batch, index_pairs
                    )
                in_flight = True
            if in_flight:
                for shard in range(self.n_workers):
                    yield from supervisor.drain(shard)
            if self._pending_swap is not None:
                swap, self._pending_swap = self._pending_swap, None
                yield from supervisor.swap_all(swap)
                self.pipeline = swap
                for shard in range(self.n_workers):
                    yield from supervisor.drain(shard)
            if close_at_end:
                yield from supervisor.close_all()
            if self.analytics_enabled:
                self.analytics = supervisor.merged_analytics()
        finally:
            self.last_feed_stats = supervisor.stats()
            supervisor.stop()
            if self._supervisor is supervisor:
                self._supervisor = None


def _even_spans(total: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``n_chunks`` near-equal contiguous spans."""
    base, extra = divmod(total, n_chunks)
    spans = []
    start = 0
    for index in range(n_chunks):
        end = start + base + (1 if index < extra else 0)
        spans.append((start, end))
        start = end
    return spans
