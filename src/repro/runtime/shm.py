"""Shared-memory column rings: the zero-pickle shard data plane (DESIGN.md §12).

The fork-backend feed used to pickle every partitioned tick batch down a
pipe.  :class:`ShmColumnRing` replaces that payload with one
``multiprocessing.shared_memory`` segment per shard, laid out as a ring of
fixed-capacity *slots* whose columns mirror
:class:`~repro.net.packet.PacketColumns` dtype-for-dtype (f8 timestamps,
f8 payload sizes, i1 directions, 4×i8 RTP fields) plus an i4 flow-id
column.  Per tick the parent gathers every routed row into the next free
slot with one vectorised ``np.take`` per column and sends only a tiny
control message — slot index, row count, per-flow spans, presence flags —
down the existing pipe; the worker copies the used rows of the slot into a
local tick batch once and folds zero-copy :meth:`PacketColumns.slice_view`
windows of it through its engine, unchanged.

Two columns cannot cross shared memory directly and are reconstructed
value-exactly worker-side:

* **addresses** (object dtype) — rebuilt from each span's
  :class:`~repro.net.flow.FlowKey` plus the direction column via
  :func:`~repro.runtime.demux.flow_addresses` (the exact inverse of the
  demux canonicalisation), one interned tuple per flow and direction;
* **absent optional columns** — presence flags ride the control message so
  an absent RTP/address column stays absent (``None``), keeping
  ``nbytes`` accounting and engine snapshots identical to the pipe plane.

Slot reuse is sequenced by the §8 checkpoint protocol, not by acks: a slot
is free only once the tick that wrote it has been pruned from the replay
ring (``seq <= snapshot_seq``), so crash recovery can always replay intact
slot data.  Lifecycle: segments are named ``repro_ring_<pid>_…``, closed
and unlinked by the owning parent (``ShardSupervisor.stop`` → an ``atexit``
backstop); forked workers inherit the mapping copy-on-write-free
(``MAP_SHARED``) and never unlink — :meth:`ShmColumnRing.destroy` is a
no-op outside the creating process.
"""

from __future__ import annotations

import atexit
import os
import secrets
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.flow import FlowKey
from repro.net.packet import UPSTREAM_CODE, PacketColumns
from repro.runtime.demux import flow_addresses

__all__ = [
    "DATA_PLANES",
    "SHM_NAME_PREFIX",
    "ShmColumnRing",
    "resolve_data_plane",
]

#: Recognised ``data_plane`` arguments of the sharded runtime.
DATA_PLANES = ("auto", "shm", "pipe")

#: Prefix of every ring segment name (``/dev/shm/<prefix><pid>_…`` on Linux);
#: the lifecycle tests grep for it to prove no segment outlives its owner.
SHM_NAME_PREFIX = "repro_ring_"

#: Always-present PacketColumns columns carried in the ring, with the exact
#: dtypes :class:`PacketColumns.__post_init__` normalises to.
FIXED_COLUMNS = (
    ("timestamps", np.dtype(np.float64)),
    ("payload_sizes", np.dtype(np.float64)),
    ("directions", np.dtype(np.int8)),
)

#: The four optional RTP header columns (int64, ``RTP_NONE`` sentinel).
RTP_COLUMNS = (
    ("rtp_payload_type", np.dtype(np.int64)),
    ("rtp_ssrc", np.dtype(np.int64)),
    ("rtp_sequence", np.dtype(np.int64)),
    ("rtp_timestamp", np.dtype(np.int64)),
)

_FLOW_ID_DTYPE = np.dtype(np.int32)

# rings created by this process and not yet destroyed; the atexit hook is a
# backstop for parents that drop a supervisor without calling stop()
_LIVE_RINGS: List["ShmColumnRing"] = []


def _cleanup_live_rings() -> None:
    for ring in list(_LIVE_RINGS):
        ring.destroy()


atexit.register(_cleanup_live_rings)


def resolve_data_plane(requested: str) -> str:
    """Resolve a ``data_plane`` argument to ``"shm"`` or ``"pipe"``.

    ``"auto"`` (the default everywhere) prefers the shared-memory plane and
    honours the ``REPRO_DATA_PLANE`` environment variable (``shm`` /
    ``pipe``) — the hook CI uses to run the fault matrix on both planes.
    An explicit ``"shm"`` / ``"pipe"`` request wins over the environment.

    Raises :class:`ValueError` for an unknown argument or environment
    value.
    """
    if requested not in DATA_PLANES:
        raise ValueError(
            f"data_plane must be one of {DATA_PLANES}, got {requested!r}"
        )
    if requested != "auto":
        return requested
    env = os.environ.get("REPRO_DATA_PLANE", "").strip().lower()
    if env and env not in ("shm", "pipe"):
        raise ValueError(
            f"REPRO_DATA_PLANE must be 'shm' or 'pipe', got {env!r}"
        )
    return env or "shm"


class ShmColumnRing:
    """One shard's ring of PacketColumns slots in a shared-memory segment.

    Parameters
    ----------
    n_slots:
        Slot count.  The supervisor sizes it to cover every tick that can
        be simultaneously un-checkpointed (``snapshot_every_ticks`` plus
        in-flight margin); an undersized ring degrades to the inline-pickle
        fallback, never to corruption.
    slot_rows:
        Row capacity of one slot; a tick larger than this falls back to
        inline pickling for that tick only.
    shard:
        Shard index, embedded in the segment name for diagnosability.

    The creating process owns the segment: only it may :meth:`write_slot`
    and only it unlinks (:meth:`destroy`).  Forked workers inherit the
    mapping and use :meth:`read_slot`.
    """

    def __init__(self, n_slots: int, slot_rows: int, shard: int = 0) -> None:
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        if slot_rows < 1:
            raise ValueError(f"slot_rows must be >= 1, got {slot_rows}")
        self.n_slots = int(n_slots)
        self.slot_rows = int(slot_rows)
        self.shard = int(shard)
        self._owner_pid = os.getpid()
        self._destroyed = False
        spec = (*FIXED_COLUMNS, *RTP_COLUMNS, ("flow_id", _FLOW_ID_DTYPE))
        self.bytes_per_row = int(sum(dtype.itemsize for _name, dtype in spec))
        layout = []
        offset = 0
        for name, dtype in spec:
            # 64-byte-align every column block so each (n_slots, slot_rows)
            # array starts on a cache line whatever the preceding dtypes
            offset = (offset + 63) & ~63
            layout.append((name, dtype, offset))
            offset += self.n_slots * self.slot_rows * dtype.itemsize
        self._shm = shared_memory.SharedMemory(
            create=True,
            name=f"{SHM_NAME_PREFIX}{os.getpid()}_{self.shard}_{secrets.token_hex(3)}",
            size=offset,
        )
        self.name = self._shm.name
        self._columns: Dict[str, np.ndarray] = {
            name: np.ndarray(
                (self.n_slots, self.slot_rows),
                dtype=dtype,
                buffer=self._shm.buf,
                offset=off,
            )
            for name, dtype, off in layout
        }
        _LIVE_RINGS.append(self)

    # ------------------------------------------------------------ accounting
    @property
    def total_bytes(self) -> int:
        """Size of the backing shared-memory segment in bytes."""
        return self._shm.size

    def slot_nbytes(self, n_rows: int) -> int:
        """Ring bytes pinned by a slot holding ``n_rows`` used rows."""
        return int(n_rows) * self.bytes_per_row

    # ------------------------------------------------------------ parent side
    def write_slot(
        self,
        slot: int,
        batch: PacketColumns,
        index_pairs: Sequence[Tuple[FlowKey, np.ndarray]],
    ) -> Tuple[int, List[Tuple[FlowKey, int, int]], Tuple[bool, ...]]:
        """Gather one tick's routed rows into a slot (owner process only).

        ``index_pairs`` is this shard's partition — ``(key, row_indices)``
        in flow order, indices into ``batch`` — as produced by
        :meth:`~repro.runtime.demux.FlowDemux.split_indices`.  Each present
        column is written with a single vectorised ``np.take`` into the
        slot's row window; absent optional columns write nothing and are
        flagged absent instead.

        Returns ``(n_rows, spans, flags)`` — the control-message fields:
        ``spans`` is ``(key, start, stop)`` per flow over the slot's rows
        (flow order preserved), ``flags`` are the
        :meth:`PacketColumns.column_presence` bits of ``batch``.

        Raises :class:`ValueError` when the tick exceeds ``slot_rows`` (the
        supervisor checks first and falls back to inline pickling).
        """
        rows_per_flow = [rows for _key, rows in index_pairs]
        gather = (
            rows_per_flow[0]
            if len(rows_per_flow) == 1
            else np.concatenate(rows_per_flow)
        )
        n = int(gather.size)
        if n > self.slot_rows:
            raise ValueError(
                f"tick of {n} rows exceeds slot capacity {self.slot_rows}"
            )
        spans: List[Tuple[FlowKey, int, int]] = []
        start = 0
        for key, rows in index_pairs:
            stop = start + int(rows.size)
            spans.append((key, start, stop))
            start = stop
        for name, dtype in FIXED_COLUMNS:
            source = getattr(batch, name).astype(dtype, copy=False)
            np.take(source, gather, out=self._columns[name][slot, :n])
        flags = batch.column_presence()
        for (name, dtype), present in zip(RTP_COLUMNS, flags):
            if present:
                source = getattr(batch, name).astype(dtype, copy=False)
                np.take(source, gather, out=self._columns[name][slot, :n])
        if spans:
            counts = [rows.size for rows in rows_per_flow]
            self._columns["flow_id"][slot, :n] = np.repeat(
                np.arange(len(spans), dtype=_FLOW_ID_DTYPE), counts
            )
        return n, spans, flags

    # ------------------------------------------------------------ worker side
    def read_slot(
        self,
        slot: int,
        n_rows: int,
        spans: Sequence[Tuple[FlowKey, int, int]],
        flags: Tuple[bool, ...],
    ) -> List[Tuple[FlowKey, PacketColumns]]:
        """Decode a slot into per-flow sub-batches (one copy, then views).

        Copies the used rows of each present column out of the slot exactly
        once — session reducers retain batch arrays across ticks, so the
        decoded tick must not alias the reusable slot — then hands each
        span a zero-copy :meth:`PacketColumns.slice_view` of the local
        copy.  Addresses are rebuilt from span keys + directions
        (:func:`~repro.runtime.demux.flow_addresses`), one interned tuple
        per flow and direction, exactly like generator/PCAP batches.

        The result is value-identical to the ``(key, batch.take(rows))``
        pairs the pipe plane would have pickled.
        """
        n = int(n_rows)
        local: Dict[str, Optional[np.ndarray]] = {}
        for name, _dtype in FIXED_COLUMNS:
            local[name] = np.array(self._columns[name][slot, :n])
        for (name, _dtype), present in zip(RTP_COLUMNS, flags):
            local[name] = (
                np.array(self._columns[name][slot, :n]) if present else None
            )
        addresses: Optional[np.ndarray] = None
        if flags[4]:
            addresses = np.empty(n, dtype=object)
            directions = local["directions"]
            for key, start, stop in spans:
                upstream, downstream = flow_addresses(key)
                window = addresses[start:stop]
                is_upstream = directions[start:stop] == UPSTREAM_CODE
                if is_upstream.all():
                    window.fill(upstream)
                elif not is_upstream.any():
                    window.fill(downstream)
                else:
                    boxed = np.empty((), dtype=object)
                    boxed[()] = upstream
                    window[is_upstream] = boxed
                    boxed = np.empty((), dtype=object)
                    boxed[()] = downstream
                    window[~is_upstream] = boxed
        tick = PacketColumns(
            timestamps=local["timestamps"],
            payload_sizes=local["payload_sizes"],
            directions=local["directions"],
            rtp_payload_type=local["rtp_payload_type"],
            rtp_ssrc=local["rtp_ssrc"],
            rtp_sequence=local["rtp_sequence"],
            rtp_timestamp=local["rtp_timestamp"],
            addresses=addresses,
        )
        return [(key, tick.slice_view(start, stop)) for key, start, stop in spans]

    def slot_flow_ids(self, slot: int, n_rows: int) -> np.ndarray:
        """Copy of a slot's flow-id column (the in-band row→span map).

        Written by :meth:`write_slot` as the span index of every row;
        redundant with the control message's spans by construction, which
        makes it a cheap cross-check for tests and post-mortem inspection
        of a ring segment.
        """
        return np.array(self._columns["flow_id"][slot, : int(n_rows)])

    # ------------------------------------------------------------ lifecycle
    def destroy(self) -> None:
        """Close and unlink the segment (idempotent; owner process only).

        Forked workers inherit ring objects copy-on-write; their copies
        must never unlink a segment the parent still serves, so outside
        the creating process this only forgets the local reference.
        """
        if self._destroyed:
            return
        self._destroyed = True
        try:
            _LIVE_RINGS.remove(self)
        except ValueError:
            pass
        if os.getpid() != self._owner_pid:
            return
        # drop the numpy views so the mmap has no exported buffers left
        self._columns = {}
        try:
            self._shm.close()
        except BufferError:  # a caller still holds a slot view; unlink anyway
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
