"""Per-session state machines for the streaming runtime.

A :class:`SessionState` is everything the runtime holds for one live flow:
the per-stage reducer cascade
(:class:`~repro.core.reducers.SessionReducerCascade` — launch-window buffer,
integer-exact slot counters with the carried EMA, per-interval QoE columns)
plus the online gate bookkeeping (provisional stage timeline, transition
prefix counts for the pattern gate, title-gate flags).

Three memory modes (DESIGN.md §7):

* ``"bounded"`` (default) — no packet history.  State is O(slots) counters,
  the O(window) launch buffer and the three downstream QoE columns
  (~24 bytes per downstream packet), yet close-time reports finalise
  bit-identical to offline ``process()`` because every reducer's fold is
  exact.  The one approximation: a packet *older than the session origin*
  arriving in a later batch clips into slot/interval 0, so such feeds
  should use full mode.
* ``"full"`` — additionally retains the raw batches, enabling
  :meth:`assembled_stream` and an exact refold when the origin shifts.
* ``"approx"`` — no QoE columns either: the QoE stage folds into the
  O(intervals) :class:`~repro.core.reducers.ApproxQoEIntervalReducer`
  (fixed-size aggregates per 10 s window), so per-session state is flat in
  the packet rate.  Close reports carry ``qoe_approximate=True`` and equal
  offline ``process(..., qoe_mode="approx")`` on the same packets; context
  fields stay exact — only the QoE metrics are approximate, with the error
  bounds documented on the reducer.

The state machine itself never calls a classifier — the engine harvests
feature rows from many sessions and runs each forest once per tick
(DESIGN.md §6), and reports come from the shared
:meth:`ContextClassificationPipeline.finalize_cascades` driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.reducers import SealedQoEInterval, SessionReducerCascade
from repro.core.title_classifier import TitlePrediction
from repro.core.transition import PrefixTransitionTracker
from repro.net.flow import FlowKey
from repro.net.packet import PacketColumns, PacketStream
from repro.simulation.catalog import PlayerStage

__all__ = ["FlowContext", "SessionState"]

#: Valid values of ``SessionState(mode=...)``.
SESSION_MODES = ("bounded", "full", "approx")


@dataclass(frozen=True)
class FlowContext:
    """Out-of-band knowledge about a flow.

    ``platform`` overrides signature-based detection (simulated feeds know
    they replay GeForce NOW sessions); ``rate_scale`` records the fidelity a
    synthetic flow was generated at so final QoE metrics are reported at
    physical scale — both mirror what offline ``process(GameSession)``
    receives from :meth:`ContextClassificationPipeline._as_stream`.
    ``region`` tags the flow's serving region for the fleet analytics tier
    (:mod:`repro.analytics`); untagged flows fold under the aggregator's
    default region.
    """

    platform: Optional[str] = None
    rate_scale: float = 1.0
    region: Optional[str] = None


class SessionState:
    """Online cascade state of one live flow."""

    __slots__ = (
        "key",
        "context",
        "cascade",
        "mode",
        "timeline",
        "transitions",
        "title_fired",
        "title_prediction",
        "pattern_resolved",
        "last_pattern_confidence",
        "_window_rows_pending",
    )

    def __init__(
        self,
        key: FlowKey,
        slot_duration: float,
        alpha: float,
        context: Optional[FlowContext] = None,
        window_seconds: float = 5.0,
        qoe_interval_s: float = 10.0,
        mode: str = "bounded",
    ) -> None:
        if mode not in SESSION_MODES:
            raise ValueError(f"mode must be one of {SESSION_MODES}, got {mode!r}")
        self.key = key
        self.context = context or FlowContext()
        self.mode = mode
        self.cascade = SessionReducerCascade(
            slot_duration=slot_duration,
            alpha=alpha,
            window_seconds=window_seconds,
            qoe_interval_seconds=qoe_interval_s,
            keep_history=(mode == "full"),
            qoe_mode="approx" if mode == "approx" else "exact",
        )
        self.timeline: List[PlayerStage] = []
        self.transitions = PrefixTransitionTracker()
        self.title_fired = False
        self.title_prediction: Optional[TitlePrediction] = None
        self.pattern_resolved = False
        self.last_pattern_confidence = 0.0
        self._window_rows_pending = 0

    # ------------------------------------------------------------ ingestion
    def absorb(self, columns: PacketColumns) -> None:
        """Consume one demultiplexed sub-batch of this flow's packets."""
        self._window_rows_pending += self.cascade.absorb(columns)

    def take_new_window_rows(self) -> int:
        """Launch-window rows absorbed since the last call (then reset).

        The engine clears the counter when the title gate fires and treats a
        non-zero count on a fired state as the re-classification trigger.
        """
        pending = self._window_rows_pending
        self._window_rows_pending = 0
        return pending

    # ------------------------------------------------------------ aggregates
    @property
    def slot_duration(self) -> float:
        return self.cascade.slots.slot_duration

    @property
    def origin(self) -> Optional[float]:
        return self.cascade.origin

    @property
    def last_ts(self) -> float:
        return self.cascade.last_ts

    @property
    def n_packets(self) -> int:
        return self.cascade.n_packets

    @property
    def duration(self) -> float:
        """Seconds between the first and last packet observed."""
        return self.cascade.duration

    @property
    def has_downstream(self) -> bool:
        return self.cascade.has_downstream

    def total_slots(self) -> int:
        """Slot count of the session so far (the offline ``n_slots``)."""
        return self.cascade.total_slots()

    # ------------------------------------------------------------ gating
    def title_ready(self, clock: float, window_seconds: float) -> bool:
        """True once the title window has fully elapsed for this flow."""
        return (
            not self.title_fired
            and self.cascade.origin is not None
            and self.cascade.has_downstream
            and clock >= self.cascade.origin + window_seconds
        )

    def advance(self, clock: float) -> Tuple[np.ndarray, np.ndarray]:
        """Complete every slot the feed clock has passed (provisional gate).

        Returns the provisional (causal running-peak, EMA-carried) feature
        rows and slot indices of the newly completed slots; the engine
        classifies the rows of all sessions in one forest pass.  Pass
        ``clock=inf`` at close time to flush the final partial slot.
        """
        return self.cascade.advance_slots(clock)

    def advance_qoe(self, clock: float) -> List[SealedQoEInterval]:
        """Seal the QoE measurement windows the feed clock has passed."""
        return self.cascade.advance_qoe(clock)

    def flush_qoe(self) -> List[SealedQoEInterval]:
        """Seal the trailing partial QoE window at close time."""
        return self.cascade.flush_qoe()

    # ------------------------------------------------------------ assembly
    def launch_stream(self) -> PacketStream:
        """The title window's packets as a time-sorted stream (both modes)."""
        return self.cascade.launch_stream()

    def assembled_stream(self) -> PacketStream:
        """The full packet history as one time-sorted stream (full mode only).

        Values (and, for distinct timestamps, order) are exactly the stream
        offline ``process()`` would see.  Bounded mode holds no history and
        raises; the close-time report does not need it — it finalises from
        the reducers in both modes.
        """
        return self.cascade.assembled_stream()

    # ------------------------------------------------------------ accounting
    def state_nbytes(self) -> int:
        """Approximate bytes of this session's live state (arrays only)."""
        return self.cascade.state_nbytes()

    # ------------------------------------------------------------ snapshots
    def snapshot(self) -> dict:
        """Complete session state as a plain python/numpy dict.

        A state rebuilt with :meth:`from_snapshot` and fed the same
        subsequent batches/clock ticks produces bit-identical events and the
        same close report — the unit of the sharded runtime's
        checkpoint/replay recovery.  Everything inside is picklable (frozen
        dataclasses, enums, numpy arrays, nested dicts).
        """
        return {
            "key": self.key,
            "context": self.context,
            "mode": self.mode,
            "cascade": self.cascade.snapshot(),
            "timeline": list(self.timeline),
            "transitions": self.transitions.snapshot(),
            "title_fired": self.title_fired,
            "title_prediction": self.title_prediction,
            "pattern_resolved": self.pattern_resolved,
            "last_pattern_confidence": self.last_pattern_confidence,
            "window_rows_pending": self._window_rows_pending,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "SessionState":
        """Rebuild a session state from a :meth:`snapshot` dict."""
        state = cls.__new__(cls)
        state.key = snapshot["key"]
        state.context = snapshot["context"]
        state.mode = snapshot["mode"]
        state.cascade = SessionReducerCascade.from_snapshot(snapshot["cascade"])
        state.timeline = list(snapshot["timeline"])
        state.transitions = PrefixTransitionTracker()
        state.transitions.restore(snapshot["transitions"])
        state.title_fired = snapshot["title_fired"]
        state.title_prediction = snapshot["title_prediction"]
        state.pattern_resolved = snapshot["pattern_resolved"]
        state.last_pattern_confidence = snapshot["last_pattern_confidence"]
        state._window_rows_pending = snapshot["window_rows_pending"]
        return state
