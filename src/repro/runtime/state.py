"""Per-session state machines for the streaming runtime.

A :class:`SessionState` is everything the runtime holds for one live flow:

* the **accumulated packet batches** (the session's columnar history, used
  for the title gate and for the offline-identical final report);
* the **slot accumulator** — per ``I``-second slot, payload-byte and packet
  counts per direction, grown incrementally with one pair of ``bincount``
  adds per batch.  The counts are integer-exact, so the raw slot matrix at
  any point equals :meth:`VolumetricAttributeGenerator.raw_slot_matrix` of
  the packets seen so far;
* the **online cascade state** — the causal volumetric tracker carrying the
  EMA recurrence across batches, the provisional stage timeline, the
  transition-count tracker feeding the pattern gate, and the fired/resolved
  flags of the title and pattern gates.

The state machine itself never calls a classifier — the engine harvests
feature rows from many sessions and runs each forest once per tick
(DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.title_classifier import TitlePrediction
from repro.core.transition import PrefixTransitionTracker
from repro.core.volumetric import OnlineVolumetricTracker
from repro.net.flow import FlowKey
from repro.net.packet import DOWNSTREAM_CODE, PacketColumns, PacketStream
from repro.simulation.catalog import PlayerStage

__all__ = ["FlowContext", "SessionState"]

_EMPTY_FEATURES = np.zeros((0, 4))
_EMPTY_SLOTS = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class FlowContext:
    """Out-of-band knowledge about a flow.

    ``platform`` overrides signature-based detection (simulated feeds know
    they replay GeForce NOW sessions); ``rate_scale`` records the fidelity a
    synthetic flow was generated at so final QoE metrics are reported at
    physical scale — both mirror what offline ``process(GameSession)``
    receives from :meth:`ContextClassificationPipeline._as_stream`.
    """

    platform: Optional[str] = None
    rate_scale: float = 1.0


class SessionState:
    """Online cascade state of one live flow."""

    __slots__ = (
        "key",
        "context",
        "slot_duration",
        "batches",
        "origin",
        "last_ts",
        "n_packets",
        "timeline",
        "transitions",
        "title_fired",
        "title_prediction",
        "pattern_resolved",
        "last_pattern_confidence",
        "_raw",
        "_max_slot",
        "_cursor",
        "_tracker",
        "_has_downstream",
    )

    def __init__(
        self,
        key: FlowKey,
        slot_duration: float,
        alpha: float,
        context: Optional[FlowContext] = None,
    ) -> None:
        self.key = key
        self.context = context or FlowContext()
        self.slot_duration = slot_duration
        self.batches: List[PacketColumns] = []
        self.origin: Optional[float] = None
        self.last_ts = float("-inf")
        self.n_packets = 0
        self.timeline: List[PlayerStage] = []
        self.transitions = PrefixTransitionTracker()
        self.title_fired = False
        self.title_prediction: Optional[TitlePrediction] = None
        self.pattern_resolved = False
        self.last_pattern_confidence = 0.0
        # columns: down payload bytes, down packets, up payload bytes, up packets
        self._raw = np.zeros((64, 4))
        self._max_slot = -1
        self._cursor = 0
        self._tracker = OnlineVolumetricTracker(alpha=alpha)
        self._has_downstream = False

    # ------------------------------------------------------------ ingestion
    def _ensure_capacity(self, slot: int) -> None:
        if slot < self._raw.shape[0]:
            return
        grown = np.zeros((max(slot + 1, self._raw.shape[0] * 2), 4))
        grown[: self._raw.shape[0]] = self._raw
        self._raw = grown

    def absorb(self, columns: PacketColumns) -> None:
        """Consume one demultiplexed sub-batch of this flow's packets."""
        if not len(columns):
            return
        timestamps = columns.timestamps
        if self.origin is None:
            self.origin = float(timestamps.min())
        self.last_ts = max(self.last_ts, float(timestamps.max()))
        self.n_packets += len(columns)
        self.batches.append(columns)

        indices = np.floor(
            (timestamps - self.origin) / self.slot_duration
        ).astype(np.int64)
        # a packet older than the session origin (cross-batch reordering)
        # folds into slot 0 for the provisional counters; the final report
        # recomputes from the full packet history anyway
        np.clip(indices, 0, None, out=indices)
        top = int(indices.max())
        self._ensure_capacity(top)
        self._max_slot = max(self._max_slot, top)
        length = top + 1
        down = columns.directions == DOWNSTREAM_CODE
        if down.any():
            self._has_downstream = True
            idx = indices[down]
            self._raw[:length, 0] += np.bincount(
                idx, weights=columns.payload_sizes[down], minlength=length
            )
            self._raw[:length, 1] += np.bincount(idx, minlength=length)
        up = ~down
        if up.any():
            idx = indices[up]
            self._raw[:length, 2] += np.bincount(
                idx, weights=columns.payload_sizes[up], minlength=length
            )
            self._raw[:length, 3] += np.bincount(idx, minlength=length)

    # ------------------------------------------------------------ gating
    @property
    def duration(self) -> float:
        """Seconds between the first and last packet observed."""
        if self.origin is None:
            return 0.0
        return max(0.0, self.last_ts - self.origin)

    @property
    def has_downstream(self) -> bool:
        return self._has_downstream

    def total_slots(self) -> int:
        """Slot count of the session so far (the offline ``n_slots``)."""
        if self.origin is None:
            return 0
        return max(
            1, int(np.ceil((self.last_ts - self.origin) / self.slot_duration))
        )

    def title_ready(self, clock: float, window_seconds: float) -> bool:
        """True once the title window has fully elapsed for this flow."""
        return (
            not self.title_fired
            and self.origin is not None
            and self._has_downstream
            and clock >= self.origin + window_seconds
        )

    def advance(self, clock: float) -> Tuple[np.ndarray, np.ndarray]:
        """Complete every slot the feed clock has passed.

        Returns the provisional (causal running-peak, EMA-carried) feature
        rows and slot indices of the newly completed slots; the engine
        classifies the rows of all sessions in one forest pass.  Pass
        ``clock=inf`` at close time to flush the final partial slot.
        """
        if self.origin is None:
            return _EMPTY_FEATURES, _EMPTY_SLOTS
        if np.isfinite(clock):
            complete = min(
                int(np.floor((clock - self.origin) / self.slot_duration)),
                self.total_slots(),
            )
        else:  # close-time flush: every observed slot completes
            complete = self.total_slots()
        if complete <= self._cursor:
            return _EMPTY_FEATURES, _EMPTY_SLOTS
        self._ensure_capacity(complete - 1)
        interval = self.slot_duration
        raw = self._raw[self._cursor : complete]
        converted = np.empty_like(raw)
        converted[:, 0] = raw[:, 0] * 8 / interval / 1e6  # down Mbps
        converted[:, 1] = raw[:, 1] / interval            # down pkt/s
        converted[:, 2] = raw[:, 2] * 8 / interval / 1e3  # up Kbps
        converted[:, 3] = raw[:, 3] / interval            # up pkt/s
        features = np.empty_like(converted)
        for row in range(converted.shape[0]):
            features[row] = self._tracker.update(converted[row])
        slots = np.arange(self._cursor, complete, dtype=np.int64)
        self._cursor = complete
        return features, slots

    # ------------------------------------------------------------ assembly
    def assembled_stream(self) -> PacketStream:
        """The session's full packet history as one time-sorted stream.

        Values (and, for distinct timestamps, order) are exactly the stream
        offline ``process()`` would see, which is what makes the close-time
        report bit-identical.
        """
        return PacketStream.from_columns(PacketColumns.concat(self.batches))
