"""Worker supervision and exact checkpoint/replay recovery for shard feeds.

:class:`ShardSupervisor` owns the forked workers behind
:meth:`~repro.runtime.shard.ShardedEngine.run_feed` and makes the fork
backend survive worker death without losing a flow (DESIGN.md §8):

* **liveness** — every reply is received under a deadline
  (``Connection.poll`` + ``Process.is_alive``), so a dead worker raises
  immediately (broken pipe / EOF) and a hung one (e.g. SIGSTOP'd) surfaces
  after ``recv_timeout_s`` instead of deadlocking the parent;
* **checkpoints** — workers piggyback a zlib-compressed pickle of their
  engine snapshot (:meth:`StreamingEngine.snapshot`) on every
  ``snapshot_every_ticks``-th tick reply; the parent keeps only the latest
  blob per shard and never unpickles it;
* **replay ring** — the parent retains each tick it sent since the last
  checkpoint (a bounded deque: at most ``snapshot_every_ticks`` + in-flight
  entries).  Recovery = respawn the worker, send it the checkpoint, resend
  the ring in sequence order.  Because engine folds are deterministic and
  snapshots are exact, the respawned worker reconstructs *bit-identical*
  state — close reports equal an uninterrupted run's;
* **exactly-once events** — messages carry sequence numbers; workers dedupe
  (``seq <= last_seq`` replies empty) and reorder (a stash holds early
  ticks until the gap fills), and the parent discards replayed replies at
  or below its emitted-sequence watermark.  Every event therefore reaches
  the consumer exactly once, crash or no crash;
* **fault injection** — a seeded
  :class:`~repro.runtime.faults.FaultPlan` can kill/stall workers and
  duplicate/delay tick transmissions at pinned (shard, tick) coordinates,
  which is how ``tests/test_fault_tolerance.py`` drives the matrix.

Wire protocol (parent → worker / worker → parent)::

    ("tick", seq, payload, clock, want_snapshot)
                            -> ("events", done_seq, events, snapshot | None)
    ("swap", seq, pipeline_blob, want_snapshot)
                            -> ("events", done_seq, events, snapshot | None)
    ("restore", snapshot | None, last_seq, pipeline_blob | None)
                            -> ("restored", [flow keys])
    ("close",)              -> ("closed", events, analytics | None)

A tick's ``payload`` names its data plane (DESIGN.md §12):

* ``("shm", slot, n_rows, spans, flags)`` — the batch rows live in the
  shard's shared-memory column ring
  (:class:`~repro.runtime.shm.ShmColumnRing`); only this control tuple
  crosses the pipe.  The slot is reusable exactly when the tick leaves the
  replay ring (``seq <= snapshot_seq``), so a replayed control message
  always finds its slot data intact.
* ``("inline", pairs)`` — the demuxed ``(FlowKey, PacketColumns)`` pairs
  pickled inline, as before: the ``data_plane="pipe"`` configuration and
  the per-tick fallback of the shm plane (tick larger than a slot, or no
  checkpoint-pruned slot free — ``shm_fallback_ticks`` counts these).

``("swap", ...)`` is a hot model swap (:meth:`ShardSupervisor.swap_all`):
it shares the tick sequence space, so every shard applies it at the same
point of its fold order — tick ``seq - 1`` ran on the old model, tick
``seq + 1`` runs on the new one, on every shard.  Swap messages live in
the replay ring like ticks (a recovered worker re-applies them in
sequence), the latest swap at or below a checkpoint rides the restore
message (engine snapshots capture session state, never the model), and
the per-shard :class:`~repro.runtime.events.ModelSwapped` events flow
through the same watermark dedupe — exactly-once, crash or no crash.

The close reply's third element is the worker engine's fleet-analytics
snapshot (zlib-pickled, ``None`` when the engine has no aggregator
attached); the parent holds the blobs and
:meth:`ShardSupervisor.merged_analytics` merges them in shard order.
Because the aggregator state rides the engine checkpoint, a recovered
worker's close-time analytics are bit-identical to an uninterrupted
run's — the fleet rollups inherit the exactly-once guarantee.

``done_seq`` is the highest *contiguous* sequence the worker has folded —
a reply may carry several ticks' events when a reorder stash drains, and a
duplicate or stashed-out-of-order message is answered with an empty reply
so the parent/worker stay in lockstep (one reply per transmission).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import signal
import time
import zlib
from collections import deque
from dataclasses import replace as dataclasses_replace
from typing import Dict, List, Optional, Tuple

from repro.net.flow import FlowKey
from repro.net.packet import PacketColumns
from repro.runtime.engine import StreamingEngine, _check_swap_geometry
from repro.runtime.events import ContextEvent, SessionRecovered, WorkerRestarted
from repro.runtime.faults import (
    DelayTick,
    DuplicateTick,
    FaultPlan,
    KillWorker,
    StallWorker,
)
from repro.runtime.shm import ShmColumnRing, resolve_data_plane
from repro.runtime.state import FlowContext

__all__ = ["ShardSupervisor"]

# fork-inherited worker configuration (populated in the parent immediately
# before each fork — initial spawn and respawns alike — and cleared after;
# workers read their copy-on-write view once at startup)
_FORK_STATE: dict = {}


def _encode_snapshot(snapshot: dict) -> bytes:
    return zlib.compress(pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL), 1)


def _decode_snapshot(payload: bytes) -> dict:
    return pickle.loads(zlib.decompress(payload))


def _supervised_worker(connection) -> None:
    """Shard worker loop: sequence-numbered folds over one shard engine."""
    config = {
        "pipeline": _FORK_STATE["pipeline"],
        "engine_kwargs": dict(_FORK_STATE["engine_kwargs"]),
        "contexts": dict(_FORK_STATE["contexts"]),
        "shard_index": _FORK_STATE.get("shard_index"),
        # this shard's shared-memory column ring (None on the pipe plane);
        # the fork inherited the parent's MAP_SHARED mapping, so slot reads
        # observe parent writes directly — nothing to attach or pickle
        "ring": _FORK_STATE.get("ring"),
    }

    def fresh_engine() -> StreamingEngine:
        engine = StreamingEngine(config["pipeline"], **config["engine_kwargs"])
        for key, context in config["contexts"].items():
            engine.set_flow_context(key, context)
        return engine

    engine = fresh_engine()
    last_seq = -1
    stash: Dict[int, tuple] = {}

    def fold(message: tuple) -> Tuple[List[ContextEvent], bool]:
        """Apply one sequenced message; (events, wants_snapshot)."""
        if message[0] == "tick":
            _tag, _seq, payload, clock, want_snapshot = message
            if payload[0] == "shm":
                _kind, slot, n_rows, spans, flags = payload
                pairs = config["ring"].read_slot(slot, n_rows, spans, flags)
            else:  # ("inline", pairs)
                pairs = payload[1]
            return list(engine.ingest_demuxed(pairs, clock)), want_snapshot
        # ("swap", seq, pipeline_blob, want_snapshot)
        _tag, _seq, blob, want_snapshot = message
        swapped = engine.swap_pipeline(_decode_snapshot(blob))
        return [dataclasses_replace(swapped, shard=config["shard_index"])], want_snapshot

    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            # the parent vanished without closing us; exit rather than spin
            # (workers are daemonic as a second line of defence)
            return
        kind = message[0]
        if kind in ("tick", "swap"):
            seq = message[1]
            if seq <= last_seq:
                # duplicate transmission: already folded — empty lockstep reply
                connection.send(("events", last_seq, [], None))
                continue
            if seq > last_seq + 1:
                # early (reordered) transmission: hold until the gap fills
                stash[seq] = message
                connection.send(("events", last_seq, [], None))
                continue
            events, want_snapshot = fold(message)
            last_seq = seq
            while last_seq + 1 in stash:
                late_events, late_want = fold(stash.pop(last_seq + 1))
                events.extend(late_events)
                last_seq += 1
                want_snapshot = want_snapshot or late_want
            payload = _encode_snapshot(engine.snapshot()) if want_snapshot else None
            connection.send(("events", last_seq, events, payload))
        elif kind == "restore":
            _tag, payload, snapshot_seq, swap_blob = message
            engine = fresh_engine()
            if swap_blob is not None:
                # the model current at the checkpoint: snapshots capture
                # session state, never the pipeline, so the swap replays
                # first (its event was already delivered — discard it)
                engine.swap_pipeline(_decode_snapshot(swap_blob))
            if payload is not None:
                engine.restore(_decode_snapshot(payload))
            last_seq = snapshot_seq
            stash.clear()
            connection.send(("restored", list(engine.live_flows)))
        elif kind == "close":
            events = engine.close_all()
            analytics = (
                _encode_snapshot(engine.analytics.snapshot())
                if engine.analytics is not None
                else None
            )
            connection.send(("closed", events, analytics))
            connection.close()
            return


class _WorkerFailure(Exception):
    """A shard worker stopped responding; ``reason`` is 'dead' or 'hung'."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _ShardRecord:
    """Parent-side supervision state of one shard."""

    __slots__ = (
        "index",
        "worker",
        "connection",
        "ring",
        "ring_nbytes",
        "shm_nbytes",
        "free_slots",
        "snapshot",
        "snapshot_seq",
        "emitted_seq",
        "pending_replies",
        "held",
        "closed",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.worker = None
        self.connection = None
        # every un-checkpointed sequenced message (tick / swap), verbatim
        self.ring: deque = deque()
        self.ring_nbytes = 0
        # shared-memory bytes pinned by un-pruned shm ticks, and the slots
        # currently reusable (checkpoint-pruned); empty on the pipe plane
        self.shm_nbytes = 0
        self.free_slots: deque = deque()
        self.snapshot: Optional[bytes] = None
        self.snapshot_seq = -1
        self.emitted_seq = -1
        self.pending_replies = 0
        self.held: Optional[tuple] = None
        self.closed = False


class ShardSupervisor:
    """Fault-tolerant parent-side driver of the forked shard workers.

    Created (and owned) by :meth:`ShardedEngine.run_feed`; usable directly
    for custom feed loops.  The caller partitions each feed batch, then per
    tick: :meth:`begin_tick`, :meth:`drain` + :meth:`send_tick` per shard
    (double-buffered), and finally :meth:`close_all` / :meth:`stop`.
    All methods returning events may include recovery events
    (:class:`WorkerRestarted` / :class:`SessionRecovered`) when a worker had
    to be respawned.
    """

    def __init__(
        self,
        pipeline,
        n_shards: int,
        engine_kwargs: Optional[dict] = None,
        contexts: Optional[Dict[FlowKey, FlowContext]] = None,
        snapshot_every_ticks: int = 16,
        recv_timeout_s: float = 30.0,
        fault_plan: Optional[FaultPlan] = None,
        data_plane: str = "auto",
        ring_slots: Optional[int] = None,
        ring_slot_rows: int = 65536,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if snapshot_every_ticks < 1:
            raise ValueError(
                f"snapshot_every_ticks must be >= 1, got {snapshot_every_ticks}"
            )
        if recv_timeout_s <= 0:
            raise ValueError(f"recv_timeout_s must be positive, got {recv_timeout_s}")
        if ring_slots is not None and ring_slots < 1:
            raise ValueError(f"ring_slots must be >= 1, got {ring_slots}")
        if ring_slot_rows < 1:
            raise ValueError(f"ring_slot_rows must be >= 1, got {ring_slot_rows}")
        self.pipeline = pipeline
        self.n_shards = n_shards
        self.engine_kwargs = dict(engine_kwargs or {})
        self.contexts = dict(contexts or {})
        self.snapshot_every_ticks = snapshot_every_ticks
        self.recv_timeout_s = recv_timeout_s
        self.fault_plan = fault_plan
        self.data_plane = resolve_data_plane(data_plane)
        # a ring must cover every simultaneously un-checkpointed tick: up to
        # snapshot_every_ticks before a prune, plus the in-flight margin
        # (double buffering keeps one outstanding; delay/duplicate faults
        # can add another) — undersizing degrades to inline fallback
        self.ring_slots = ring_slots or (snapshot_every_ticks + 2)
        self.ring_slot_rows = ring_slot_rows
        self._rings: Optional[List[ShmColumnRing]] = None
        self._context = mp.get_context("fork")
        self._records = [_ShardRecord(index) for index in range(n_shards)]
        self._seq = -1
        self._clock = float("-inf")
        self._started = False
        self._stopped = False
        # (seq, zlib-pickled pipeline) of every swap_all, in sequence order;
        # recovery reads the latest entry at or below a shard's checkpoint
        self._swap_history: List[Tuple[int, bytes]] = []
        # shard -> zlib-pickled FleetAggregator snapshot from the close reply
        self._analytics_payloads: Dict[int, bytes] = {}
        # ---- stats (read by ShardedEngine.last_feed_stats and the bench)
        self.n_restarts = 0
        self.replayed_ticks_total = 0
        self.recovery_latencies_s: List[float] = []
        self.ring_peak_bytes = 0
        self.shm_ring_peak_bytes = 0
        self.shm_fallback_ticks = 0
        self.pipe_payload_bytes_total = 0
        self.last_snapshot_nbytes = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Allocate the data plane and fork one worker per shard (idempotent)."""
        if self._started:
            return
        self._started = True
        if self.data_plane == "shm":
            # segments are allocated before the first fork so every worker
            # (initial spawn and respawns alike) inherits the live mapping
            self._rings = [
                ShmColumnRing(
                    n_slots=self.ring_slots,
                    slot_rows=self.ring_slot_rows,
                    shard=index,
                )
                for index in range(self.n_shards)
            ]
            for record, ring in zip(self._records, self._rings):
                record.free_slots = deque(range(ring.n_slots))
        for record in self._records:
            self._spawn(record)

    def _spawn(self, record: _ShardRecord) -> None:
        """Fork one worker (initial start and respawns share this path)."""
        _FORK_STATE.update(
            pipeline=self.pipeline,
            engine_kwargs=self.engine_kwargs,
            contexts=self.contexts,
            shard_index=record.index,
            ring=self._rings[record.index] if self._rings else None,
        )
        try:
            parent_end, child_end = self._context.Pipe()
            worker = self._context.Process(
                target=_supervised_worker, args=(child_end,), daemon=True
            )
            worker.start()
            child_end.close()
        finally:
            _FORK_STATE.clear()
        record.worker = worker
        record.connection = parent_end

    def stop(self) -> None:
        """Reap every worker unconditionally (idempotent, exception-safe)."""
        if self._stopped:
            return
        self._stopped = True
        for record in self._records:
            connection, worker = record.connection, record.worker
            if connection is not None:
                try:
                    connection.close()
                except OSError:
                    pass
            if worker is not None:
                worker.join(timeout=5)
                if worker.is_alive():
                    worker.terminate()
                    worker.join(timeout=5)
                if worker.is_alive():
                    worker.kill()
                    worker.join(timeout=5)
                worker.close()
            record.connection = None
            record.worker = None
        if self._rings is not None:
            # after every worker is reaped: no mapping outlives the unlink,
            # so /dev/shm is clean the moment stop() returns (the lifecycle
            # tests assert exactly this)
            for ring in self._rings:
                ring.destroy()

    # ------------------------------------------------------------ ticking
    def begin_tick(self, clock: float) -> int:
        """Advance the feed clock and allocate the next tick sequence."""
        self._seq += 1
        self._clock = max(self._clock, clock)
        return self._seq

    def send_tick(
        self, shard: int, pairs: List[Tuple[FlowKey, PacketColumns]]
    ) -> List[ContextEvent]:
        """Send the current tick to one shard as materialised flow pairs.

        The pairs cross the pipe inline (pickled) whatever the configured
        data plane — callers holding already-materialised sub-batches keep
        working unchanged; :meth:`send_tick_indexed` is the shm fast path.
        Normally returns no events; when the transmission itself reveals a
        dead worker, recovery happens inline and its events are returned.
        """
        return self._send_tick_payload(shard, ("inline", list(pairs)))

    def send_tick_indexed(
        self,
        shard: int,
        batch: PacketColumns,
        index_pairs: List[Tuple[FlowKey, "np.ndarray"]],
    ) -> List[ContextEvent]:
        """Send the current tick as row indices into the source batch.

        On the shm plane the rows of every flow are gathered straight into
        a free ring slot (one vectorised copy per column) and only the
        control tuple crosses the pipe; the tick falls back to inline
        pickling — counted in ``shm_fallback_ticks``, never wrong — when it
        exceeds ``ring_slot_rows`` or no checkpoint-pruned slot is free.
        On the pipe plane this materialises ``batch.take(rows)`` per flow
        and behaves exactly like :meth:`send_tick`.

        Returns recovery events when the transmission reveals a dead
        worker, like :meth:`send_tick`.
        """
        record = self._records[shard]
        ring = self._rings[shard] if self._rings is not None else None
        payload = None
        if ring is not None and index_pairs:
            n_rows = sum(int(rows.size) for _key, rows in index_pairs)
            if record.free_slots and n_rows <= ring.slot_rows:
                slot = record.free_slots.popleft()
                n_rows, spans, flags = ring.write_slot(slot, batch, index_pairs)
                payload = ("shm", slot, n_rows, spans, flags)
            else:
                self.shm_fallback_ticks += 1
        if payload is None:
            payload = (
                "inline",
                [(key, batch.take(rows)) for key, rows in index_pairs],
            )
        return self._send_tick_payload(shard, payload)

    def _send_tick_payload(self, shard: int, payload: tuple) -> List[ContextEvent]:
        """Sequence, ring-append and transmit one tick payload (faults here)."""
        record = self._records[shard]
        seq = self._seq
        want_snapshot = (seq + 1) % self.snapshot_every_ticks == 0
        message = ("tick", seq, payload, self._clock, want_snapshot)
        self._ring_append(record, message)
        actions = (
            self.fault_plan.transport_actions(shard, seq) if self.fault_plan else ()
        )
        events: List[ContextEvent] = []
        try:
            if any(isinstance(action, DelayTick) for action in actions):
                # hold this transmission until the next send (or close flush)
                record.held = message
            else:
                if record.held is not None:
                    # deliver the new tick first, then the held one: the
                    # worker sees them out of order and must stash/reorder
                    self._transmit(record, message, events)
                    self._transmit(record, record.held, events)
                    record.held = None
                else:
                    self._transmit(record, message, events)
                if any(isinstance(action, DuplicateTick) for action in actions):
                    self._transmit(record, message, events)
        except _WorkerFailure as failure:
            events.extend(self._recover(record, failure.reason))
        for action in actions:
            if isinstance(action, KillWorker):
                os.kill(record.worker.pid, signal.SIGKILL)
            elif isinstance(action, StallWorker):
                os.kill(record.worker.pid, signal.SIGSTOP)
        return events

    def _transmit(
        self, record: _ShardRecord, message: tuple, events: List[ContextEvent]
    ) -> None:
        # Keep at most one reply outstanding before writing.  A burst of
        # transmissions (delayed + duplicated ticks land together) would
        # otherwise fill both pipe directions at once: the worker blocks
        # sending a large reply (events + snapshot) while the parent blocks
        # sending the next multi-megabyte tick — a send/send deadlock.
        while record.pending_replies > 0:
            events.extend(self._absorb_reply(record, self._recv(record)))
        try:
            record.connection.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerFailure("dead") from exc
        record.pending_replies += 1

    @staticmethod
    def _message_nbytes(message: tuple) -> int:
        """Pipe-payload bytes of one sequenced message (what pickling costs).

        Inline ticks count their array bytes, swaps their pipeline blob; an
        shm tick counts only its control tuple (small, estimated per span)
        — the slot bytes it pins are accounted separately in
        ``shm_ring_peak_bytes``.
        """
        if message[0] == "tick":
            payload = message[2]
            if payload[0] == "inline":
                return sum(sub.nbytes() for _key, sub in payload[1])
            # ("shm", slot, n_rows, spans, flags): scalars plus one
            # (FlowKey, start, stop) span per flow cross the pipe
            return 96 + 96 * len(payload[3])
        return len(message[2])  # swap: the zlib-pickled pipeline blob

    @staticmethod
    def _shm_slot_info(message: tuple) -> Optional[Tuple[int, int]]:
        """The ``(slot, n_rows)`` an shm tick pins, ``None`` otherwise."""
        if message[0] == "tick" and message[2][0] == "shm":
            return message[2][1], message[2][2]
        return None

    def _ring_append(self, record: _ShardRecord, message: tuple) -> None:
        record.ring.append(message)
        nbytes = self._message_nbytes(message)
        record.ring_nbytes += nbytes
        self.pipe_payload_bytes_total += nbytes
        total = sum(other.ring_nbytes for other in self._records)
        self.ring_peak_bytes = max(self.ring_peak_bytes, total)
        info = self._shm_slot_info(message)
        if info is not None:
            record.shm_nbytes += self._rings[record.index].slot_nbytes(info[1])
            shm_total = sum(other.shm_nbytes for other in self._records)
            self.shm_ring_peak_bytes = max(self.shm_ring_peak_bytes, shm_total)

    def _ring_prune(self, record: _ShardRecord) -> None:
        while record.ring and record.ring[0][1] <= record.snapshot_seq:
            message = record.ring.popleft()
            record.ring_nbytes -= self._message_nbytes(message)
            info = self._shm_slot_info(message)
            if info is not None:
                # the checkpoint covers this tick: its slot can never be
                # replayed again, so it re-enters the free list (§12's
                # seq→slot reuse rule — the only thing that frees a slot)
                record.shm_nbytes -= self._rings[record.index].slot_nbytes(info[1])
                record.free_slots.append(info[0])

    # ------------------------------------------------------------ hot swap
    def swap_all(self, pipeline) -> List[ContextEvent]:
        """Hot-swap every shard's model on the same tick boundary.

        Allocates one sequence number and sends ``("swap", seq, blob)`` to
        every shard, so each worker applies the swap at exactly the same
        point of its fold order: every tick sequenced before the swap runs
        on the old model on every shard, every tick after it on the new
        one.  The swap joins the replay ring (and, once checkpointed, the
        restore payload), so a worker killed at any point around the swap
        recovers into the correct model — the §8 kill/replay matrix holds
        across swaps, and the per-shard
        :class:`~repro.runtime.events.ModelSwapped` events are exactly-once
        through the same watermark dedupe as every other event.

        Returns the events surfaced by the transmissions (drained prior
        replies, recovery events if a send reveals a dead worker); the
        ``ModelSwapped`` events themselves arrive with each shard's next
        drained reply.  Call between ticks, i.e. not between
        :meth:`begin_tick` and its :meth:`send_tick`\\ s.
        """
        _check_swap_geometry(self.pipeline, pipeline)
        blob = _encode_snapshot(pipeline)
        seq = self.begin_tick(self._clock)
        self._swap_history.append((seq, blob))
        events: List[ContextEvent] = []
        for record in self._records:
            message = ("swap", seq, blob, False)
            self._ring_append(record, message)
            try:
                self._transmit(record, message, events)
            except _WorkerFailure as failure:
                events.extend(self._recover(record, failure.reason))
        return events

    # ------------------------------------------------------------ draining
    def drain(self, shard: int) -> List[ContextEvent]:
        """Receive every outstanding reply of one shard (recovering if needed)."""
        record = self._records[shard]
        events: List[ContextEvent] = []
        while record.pending_replies:
            try:
                reply = self._recv(record)
            except _WorkerFailure as failure:
                events.extend(self._recover(record, failure.reason))
                break
            events.extend(self._absorb_reply(record, reply))
        return events

    def _recv(self, record: _ShardRecord, timeout: Optional[float] = None):
        timeout = self.recv_timeout_s if timeout is None else timeout
        try:
            if not record.connection.poll(timeout):
                raise _WorkerFailure(
                    "hung" if record.worker.is_alive() else "dead"
                )
            return record.connection.recv()
        except (EOFError, OSError) as exc:
            raise _WorkerFailure("dead") from exc

    def _absorb_reply(self, record: _ShardRecord, reply: tuple) -> List[ContextEvent]:
        """Apply one ("events", ...) reply: checkpoint, watermark, emit."""
        _tag, done_seq, events, payload = reply
        record.pending_replies = max(0, record.pending_replies - 1)
        if payload is not None:
            record.snapshot = payload
            record.snapshot_seq = done_seq
            self.last_snapshot_nbytes = len(payload)
            self._ring_prune(record)
        if done_seq > record.emitted_seq:
            record.emitted_seq = done_seq
            return events
        # a replayed (or duplicate) reply at/below the watermark: every event
        # in it was already delivered before the crash — drop, exactly-once
        return []

    # ------------------------------------------------------------ recovery
    def _recover(self, record: _ShardRecord, reason: str) -> List[ContextEvent]:
        """Respawn one shard worker and re-home its flows exactly.

        Restore the latest checkpoint, then replay the ring in sequence
        order; replies below the emitted watermark are dropped, so the
        consumer sees each event exactly once.  The last replayed tick
        always requests a fresh checkpoint so the ring re-prunes.
        """
        started = time.monotonic()
        worker, connection = record.worker, record.connection
        if worker is not None and worker.is_alive():
            worker.kill()  # SIGKILL also ends SIGSTOPped workers
        if worker is not None:
            worker.join(timeout=10)
            worker.close()
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass
        record.pending_replies = 0
        record.held = None
        self._spawn(record)
        swap_blob = None
        for swap_seq, blob in self._swap_history:
            if swap_seq <= record.snapshot_seq:
                swap_blob = blob
        record.connection.send(
            ("restore", record.snapshot, record.snapshot_seq, swap_blob)
        )
        reply = self._recv_or_die(record, "restore handshake")
        if reply[0] != "restored":
            raise RuntimeError(
                f"shard {record.index}: unexpected restore reply {reply[0]!r}"
            )
        recovered_keys = reply[1]
        replayed: List[ContextEvent] = []
        ring = list(record.ring)
        for position, message in enumerate(ring):
            if position == len(ring) - 1 and not message[-1]:
                # the last replayed message always requests a checkpoint so
                # the ring re-prunes (want_snapshot is the final element of
                # both tick and swap messages)
                message = message[:-1] + (True,)
            record.connection.send(message)
            tick_reply = self._recv_or_die(record, f"replay of seq {message[1]}")
            record.pending_replies += 1  # _absorb_reply decrements
            replayed.extend(self._absorb_reply(record, tick_reply))
        latency = time.monotonic() - started
        self.n_restarts += 1
        self.replayed_ticks_total += len(ring)
        self.recovery_latencies_s.append(latency)
        events: List[ContextEvent] = [
            WorkerRestarted(
                shard=record.index,
                time=self._clock,
                reason=reason,
                n_flows=len(recovered_keys),
                replayed_ticks=len(ring),
                recovery_latency_s=latency,
            )
        ]
        events.extend(
            SessionRecovered(flow=key, time=self._clock, shard=record.index)
            for key in recovered_keys
        )
        events.extend(replayed)
        return events

    def _recv_or_die(self, record: _ShardRecord, stage: str):
        """Receive during recovery: a second failure here is unrecoverable."""
        try:
            return self._recv(record)
        except _WorkerFailure as failure:
            raise RuntimeError(
                f"shard {record.index}: replacement worker failed during "
                f"{stage} ({failure.reason})"
            ) from failure

    # ------------------------------------------------------------ closing
    def close_shard(self, shard: int) -> List[ContextEvent]:
        """Flush, drain and close one shard, recovering through failures."""
        record = self._records[shard]
        if record.closed:
            return []
        events: List[ContextEvent] = []
        if record.held is not None:
            # a delayed last tick: degrade to late delivery before closing
            held, record.held = record.held, None
            try:
                self._transmit(record, held, events)
            except _WorkerFailure as failure:
                events.extend(self._recover(record, failure.reason))
        events.extend(self.drain(shard))
        try:
            record.connection.send(("close",))
            reply = self._recv(record)
        except _WorkerFailure as failure:
            # the worker died holding un-reported close state: recover it
            # (restore + replay), then close the replacement
            events.extend(self._recover(record, failure.reason))
            record.connection.send(("close",))
            reply = self._recv_or_die(record, "close after recovery")
        if reply[0] != "closed":
            raise RuntimeError(
                f"shard {shard}: unexpected close reply {reply[0]!r}"
            )
        events.extend(reply[1])
        if len(reply) > 2 and reply[2] is not None:
            self._analytics_payloads[shard] = reply[2]
        record.closed = True
        return events

    def close_all(self) -> List[ContextEvent]:
        """Close every shard in index order (deterministic event order)."""
        events: List[ContextEvent] = []
        for shard in range(self.n_shards):
            events.extend(self.close_shard(shard))
        return events

    def merged_analytics(self):
        """The shard workers' fleet rollups merged in shard order.

        Available after :meth:`close_all`; ``None`` when the shard engines
        ran without an attached aggregator.  Sketch merges are associative
        and commutative, so the shard order is a convention, not a
        correctness requirement — any merge tree yields byte-identical
        state.
        """
        if not self._analytics_payloads:
            return None
        from repro.analytics.fleet import FleetAggregator

        merged = FleetAggregator()
        for shard in sorted(self._analytics_payloads):
            merged.merge(
                FleetAggregator.from_snapshot(
                    _decode_snapshot(self._analytics_payloads[shard])
                )
            )
        return merged

    # ------------------------------------------------------------ stats
    def stats(self) -> dict:
        """Supervision counters for monitoring and the recovery benchmark."""
        return {
            "n_restarts": self.n_restarts,
            "replayed_ticks_total": self.replayed_ticks_total,
            "recovery_latencies_s": list(self.recovery_latencies_s),
            "ring_peak_bytes": self.ring_peak_bytes,
            "last_snapshot_nbytes": self.last_snapshot_nbytes,
            "n_swaps": len(self._swap_history),
            "data_plane": self.data_plane,
            "shm_ring_peak_bytes": self.shm_ring_peak_bytes,
            "shm_fallback_ticks": self.shm_fallback_ticks,
            "pipe_payload_bytes_total": self.pipe_payload_bytes_total,
        }
