"""Synthetic cloud-gaming traffic generation.

The paper's evaluation rests on two datasets we cannot capture here: 531
labeled lab sessions of NVIDIA GeForce NOW gameplay (§3.1) and a three-month
ISP deployment (§5).  This subpackage substitutes both with generative
models whose observable structure matches what the paper reports:

* :mod:`repro.simulation.catalog` — the 13-title catalog (Table 1) with
  genre, gameplay activity pattern, popularity, per-title session-duration
  and bandwidth parameters.
* :mod:`repro.simulation.devices` — the lab device/OS/software/streaming
  configurations (Table 2).
* :mod:`repro.simulation.launch_profiles` — per-title launch fingerprints
  made of *full*, *steady* and *sparse* downstream packet groups (Fig. 3).
* :mod:`repro.simulation.activity_model` — per-pattern Markov models of
  player activity stages (Fig. 5).
* :mod:`repro.simulation.traffic` — per-stage bidirectional packet synthesis
  (Fig. 4).
* :mod:`repro.simulation.session` — end-to-end session generator combining
  the above into labeled packet streams.
* :mod:`repro.simulation.augmentation` — variation-based augmentation used
  to enlarge the training corpus (§4.4).
* :mod:`repro.simulation.lab_dataset` — the lab corpus builder (Table 2).
* :mod:`repro.simulation.isp` — the ISP-scale session-record sampler used by
  the §5 analyses.
* :mod:`repro.simulation.profiles` — distribution-driven scenario profiles
  (codec changes, WiFi jitter, cellular handovers, VPN/QUIC tunnels, title
  switches, clock skew) layered over the generated corpora (DESIGN.md §9).
"""

from repro.simulation.activity_model import ActivityPatternModel, StageInterval
from repro.simulation.augmentation import augment_session, augment_stream
from repro.simulation.catalog import (
    CATALOG,
    GAME_TITLES,
    ActivityPattern,
    GameTitle,
    Genre,
    PlayerStage,
    get_title,
    titles_by_pattern,
)
from repro.simulation.devices import (
    LAB_CONFIGURATIONS,
    DeviceConfiguration,
    Resolution,
    StreamingSettings,
)
from repro.simulation.isp import ISPDeploymentSimulator, SessionRecord
from repro.simulation.lab_dataset import LabDataset, generate_lab_dataset
from repro.simulation.launch_profiles import LaunchProfile, launch_profile_for
from repro.simulation.profiles import (
    SCENARIO_PROFILES,
    LayerContext,
    RVConfig,
    ScenarioProfile,
    scenario_sessions,
)
from repro.simulation.session import GameSession, SessionConfig, SessionGenerator
from repro.simulation.traffic import StageTrafficModel

__all__ = [
    "GameTitle",
    "Genre",
    "ActivityPattern",
    "PlayerStage",
    "CATALOG",
    "GAME_TITLES",
    "get_title",
    "titles_by_pattern",
    "DeviceConfiguration",
    "StreamingSettings",
    "Resolution",
    "LAB_CONFIGURATIONS",
    "LaunchProfile",
    "launch_profile_for",
    "ActivityPatternModel",
    "StageInterval",
    "StageTrafficModel",
    "GameSession",
    "SessionConfig",
    "SessionGenerator",
    "augment_stream",
    "augment_session",
    "LabDataset",
    "generate_lab_dataset",
    "ISPDeploymentSimulator",
    "SessionRecord",
    "RVConfig",
    "LayerContext",
    "ScenarioProfile",
    "SCENARIO_PROFILES",
    "scenario_sessions",
]
