"""Markov model of player activity stages (Fig. 5).

The paper characterises two gameplay activity patterns by (a) the fraction of
playtime spent in idle/passive/active stages and (b) the probabilities of
transitioning between stages.  This module encodes those statistics and
samples ground-truth stage timelines for synthetic sessions: a launch period
followed by alternating stage visits whose dwell times are tuned so that the
long-run stage fractions approach the paper's Fig. 5 values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.simulation.catalog import ActivityPattern, GameTitle, PlayerStage

#: Stage transition probabilities per gameplay activity pattern (Fig. 5).
#: ``TRANSITIONS[pattern][from_stage][to_stage]`` = probability of moving to
#: ``to_stage`` when leaving ``from_stage``.
TRANSITIONS: Dict[ActivityPattern, Dict[PlayerStage, Dict[PlayerStage, float]]] = {
    ActivityPattern.SPECTATE_AND_PLAY: {
        PlayerStage.IDLE: {PlayerStage.ACTIVE: 0.68, PlayerStage.PASSIVE: 0.32},
        PlayerStage.ACTIVE: {PlayerStage.PASSIVE: 0.61, PlayerStage.IDLE: 0.39},
        PlayerStage.PASSIVE: {PlayerStage.ACTIVE: 0.77, PlayerStage.IDLE: 0.23},
    },
    ActivityPattern.CONTINUOUS_PLAY: {
        PlayerStage.IDLE: {PlayerStage.ACTIVE: 0.96, PlayerStage.PASSIVE: 0.04},
        PlayerStage.ACTIVE: {PlayerStage.IDLE: 0.92, PlayerStage.PASSIVE: 0.08},
        PlayerStage.PASSIVE: {PlayerStage.ACTIVE: 0.96, PlayerStage.IDLE: 0.04},
    },
}

#: Long-run fraction of gameplay time per stage and pattern (Fig. 5).
STAGE_FRACTIONS: Dict[ActivityPattern, Dict[PlayerStage, float]] = {
    ActivityPattern.SPECTATE_AND_PLAY: {
        PlayerStage.IDLE: 0.210,
        PlayerStage.PASSIVE: 0.234,
        PlayerStage.ACTIVE: 0.556,
    },
    ActivityPattern.CONTINUOUS_PLAY: {
        PlayerStage.IDLE: 0.203,
        PlayerStage.PASSIVE: 0.043,
        PlayerStage.ACTIVE: 0.654,
    },
}


@dataclass(frozen=True)
class StageInterval:
    """A contiguous ground-truth stage interval within a session."""

    stage: PlayerStage
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"interval end ({self.end}) must exceed start ({self.start})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, timestamp: float) -> bool:
        """Whether the timestamp lies in ``[start, end)``."""
        return self.start <= timestamp < self.end


def _stationary_visit_rates(
    pattern: ActivityPattern,
) -> Dict[PlayerStage, float]:
    """Stationary visit frequencies of the embedded jump chain."""
    stages = list(PlayerStage.gameplay_stages())
    matrix = np.zeros((len(stages), len(stages)))
    for i, src in enumerate(stages):
        for j, dst in enumerate(stages):
            matrix[i, j] = TRANSITIONS[pattern][src].get(dst, 0.0)
    eigenvalues, eigenvectors = np.linalg.eig(matrix.T)
    index = int(np.argmin(np.abs(eigenvalues - 1.0)))
    stationary = np.real(eigenvectors[:, index])
    stationary = np.abs(stationary)
    stationary = stationary / stationary.sum()
    return dict(zip(stages, stationary.tolist()))


class ActivityPatternModel:
    """Samples ground-truth stage timelines for one gameplay pattern.

    Mean dwell times per stage are derived so that the expected fraction of
    time per stage matches Fig. 5: ``fraction ~ visit_rate * mean_dwell``.
    A base dwell scale (seconds) controls how often transitions happen; the
    paper's spectate-and-play examples switch every few tens of seconds.
    """

    def __init__(
        self,
        pattern: ActivityPattern,
        base_dwell_s: float = 45.0,
        launch_duration_s: float = 50.0,
    ) -> None:
        if base_dwell_s <= 0:
            raise ValueError(f"base_dwell_s must be positive, got {base_dwell_s}")
        if launch_duration_s <= 0:
            raise ValueError(
                f"launch_duration_s must be positive, got {launch_duration_s}"
            )
        self.pattern = pattern
        self.base_dwell_s = base_dwell_s
        self.launch_duration_s = launch_duration_s
        self.transition_probs = TRANSITIONS[pattern]
        self.target_fractions = STAGE_FRACTIONS[pattern]
        visit_rates = _stationary_visit_rates(pattern)
        # mean dwell per stage proportional to target fraction / visit rate
        raw = {
            stage: self.target_fractions[stage] / max(visit_rates[stage], 1e-9)
            for stage in PlayerStage.gameplay_stages()
        }
        mean_raw = float(np.mean(list(raw.values())))
        self.mean_dwell_s = {
            stage: base_dwell_s * raw[stage] / mean_raw
            for stage in PlayerStage.gameplay_stages()
        }

    def transition_matrix(self) -> np.ndarray:
        """3×3 stage-transition matrix in (idle, passive, active) order."""
        stages = list(PlayerStage.gameplay_stages())
        matrix = np.zeros((3, 3))
        for i, src in enumerate(stages):
            for j, dst in enumerate(stages):
                matrix[i, j] = self.transition_probs[src].get(dst, 0.0)
        return matrix

    def sample_next_stage(
        self, current: PlayerStage, rng: np.random.Generator
    ) -> PlayerStage:
        """Draw the next stage after leaving ``current``."""
        options = self.transition_probs[current]
        stages = list(options.keys())
        probs = np.array([options[stage] for stage in stages])
        probs = probs / probs.sum()
        return stages[int(rng.choice(len(stages), p=probs))]

    def sample_dwell(self, stage: PlayerStage, rng: np.random.Generator) -> float:
        """Draw a dwell duration (seconds) for one visit to ``stage``."""
        mean = self.mean_dwell_s[stage]
        # gamma-distributed dwell keeps durations positive with mild spread
        return float(rng.gamma(shape=3.0, scale=mean / 3.0))

    def sample_timeline(
        self,
        gameplay_duration_s: float,
        rng: Optional[np.random.Generator] = None,
        launch_duration_s: Optional[float] = None,
        initial_stage: PlayerStage = PlayerStage.IDLE,
    ) -> List[StageInterval]:
        """Sample a full session timeline: launch followed by gameplay stages.

        Parameters
        ----------
        gameplay_duration_s:
            Total duration of the gameplay portion (excluding launch).
        launch_duration_s:
            Duration of the launch stage; defaults to the model's setting.
        initial_stage:
            Stage entered right after launch (idle, per Fig. 5 where launch
            transitions to idle with probability 1).
        """
        if gameplay_duration_s <= 0:
            raise ValueError(
                f"gameplay_duration_s must be positive, got {gameplay_duration_s}"
            )
        rng = rng or np.random.default_rng()
        launch = launch_duration_s if launch_duration_s is not None else self.launch_duration_s

        timeline: List[StageInterval] = [
            StageInterval(stage=PlayerStage.LAUNCH, start=0.0, end=launch)
        ]
        cursor = launch
        end_time = launch + gameplay_duration_s
        stage = initial_stage
        while cursor < end_time:
            dwell = min(self.sample_dwell(stage, rng), end_time - cursor)
            if dwell <= 0:
                break
            timeline.append(StageInterval(stage=stage, start=cursor, end=cursor + dwell))
            cursor += dwell
            stage = self.sample_next_stage(stage, rng)
        return timeline


def stage_at(timeline: List[StageInterval], timestamp: float) -> PlayerStage:
    """Ground-truth stage at a given timestamp (clamps to the last interval)."""
    if not timeline:
        raise ValueError("timeline is empty")
    for interval in timeline:
        if interval.contains(timestamp):
            return interval.stage
    return timeline[-1].stage


def stage_durations(timeline: List[StageInterval]) -> Dict[PlayerStage, float]:
    """Total seconds per stage in a timeline."""
    totals: Dict[PlayerStage, float] = {stage: 0.0 for stage in PlayerStage}
    for interval in timeline:
        totals[interval.stage] += interval.duration
    return totals


def gameplay_fractions(timeline: List[StageInterval]) -> Dict[PlayerStage, float]:
    """Fraction of gameplay (non-launch) time per stage."""
    totals = stage_durations(timeline)
    gameplay_total = sum(
        totals[stage] for stage in PlayerStage.gameplay_stages()
    )
    if gameplay_total <= 0:
        return {stage: 0.0 for stage in PlayerStage.gameplay_stages()}
    return {
        stage: totals[stage] / gameplay_total
        for stage in PlayerStage.gameplay_stages()
    }


def model_for_title(title: GameTitle, **kwargs) -> ActivityPatternModel:
    """Convenience constructor: the activity model of a catalog title."""
    return ActivityPatternModel(pattern=title.pattern, **kwargs)
