"""Variation-based data augmentation (§4.4).

The paper augments its ground-truth corpus "for larger sample sizes using
variation-based statistical techniques, i.e., by synthesizing packet data
with randomly varied sizes and arrival times based on the original
ground-truth data, especially for classes with fewer samples".  This module
implements that technique on packet streams and whole sessions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.net.packet import PacketStream
from repro.simulation.session import GameSession


def augment_stream(
    stream: PacketStream,
    rng: Optional[np.random.Generator] = None,
    size_jitter: float = 0.03,
    time_jitter_s: float = 0.01,
    drop_fraction: float = 0.01,
) -> PacketStream:
    """Produce a perturbed copy of a packet stream.

    Parameters
    ----------
    size_jitter:
        Relative standard deviation of multiplicative payload-size noise.
    time_jitter_s:
        Standard deviation of additive Gaussian arrival-time noise.
    drop_fraction:
        Fraction of packets randomly removed.

    Notes
    -----
    The perturbations are intentionally mild so that the packet-group
    structure (full/steady/sparse) and relative volumetric levels survive —
    the augmented sample must remain a plausible capture of the same session.
    """
    if size_jitter < 0 or time_jitter_s < 0:
        raise ValueError("jitter parameters must be non-negative")
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError(f"drop_fraction must be in [0, 1), got {drop_fraction}")
    rng = rng or np.random.default_rng()

    columns = stream.columns()
    n = len(columns)
    if n == 0:
        return PacketStream()
    keep = rng.random(n) >= drop_fraction
    size_noise = rng.normal(1.0, size_jitter, size=n)
    time_noise = rng.normal(0.0, time_jitter_s, size=n)
    perturbed = columns.take(np.flatnonzero(keep))
    perturbed.payload_sizes = np.clip(
        np.round(perturbed.payload_sizes * size_noise[keep]), 40, 1500
    )
    perturbed.timestamps = np.maximum(0.0, perturbed.timestamps + time_noise[keep])
    return PacketStream.from_columns(perturbed)


def augment_session(
    session: GameSession,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> GameSession:
    """Return a copy of a session with an augmented packet stream.

    Ground-truth labels (title, timeline, settings) are preserved — the
    augmented session represents another plausible capture of the same
    gameplay.
    """
    augmented = augment_stream(session.packets, rng=rng, **kwargs)
    return GameSession(
        title=session.title,
        settings=session.settings,
        device=session.device,
        timeline=list(session.timeline),
        packets=augmented,
        conditions=session.conditions,
        client_ip=session.client_ip,
        server_ip=session.server_ip,
        session_id=session.session_id,
    )


def augment_sessions(
    sessions: List[GameSession],
    copies_per_session: int = 1,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> List[GameSession]:
    """Augment a corpus with ``copies_per_session`` perturbed copies each."""
    if copies_per_session < 0:
        raise ValueError(
            f"copies_per_session must be non-negative, got {copies_per_session}"
        )
    rng = rng or np.random.default_rng()
    augmented: List[GameSession] = []
    for session in sessions:
        for _ in range(copies_per_session):
            augmented.append(augment_session(session, rng=rng, **kwargs))
    return augmented
