"""The cloud game catalog (Table 1) and per-title behavioural parameters.

Table 1 of the paper lists the 13 most popular GeForce NOW titles in the
studied geography together with their genre, gameplay activity pattern and
share of total playtime.  Sections 5.1/5.2 additionally report per-title
session durations, stage compositions and bandwidth clusters; the constants
here encode those *shapes* so the ISP-scale simulator reproduces them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Tuple


class Genre(Enum):
    """Game genre as defined by the gaming community (Table 1)."""

    SHOOTER = "shooter"
    ROLE_PLAYING = "role-playing"
    SPORTS = "sports"
    MOBA = "moba"
    CARD = "card"


class ActivityPattern(Enum):
    """Gameplay activity pattern (§2.1)."""

    SPECTATE_AND_PLAY = "spectate-and-play"
    CONTINUOUS_PLAY = "continuous-play"


class PlayerStage(Enum):
    """Player activity stage within a gameplay session (§2.1)."""

    LAUNCH = "launch"
    IDLE = "idle"
    PASSIVE = "passive"
    ACTIVE = "active"

    @classmethod
    def gameplay_stages(cls) -> Tuple["PlayerStage", ...]:
        """The three stages classified by the pipeline (launch excluded)."""
        return (cls.IDLE, cls.PASSIVE, cls.ACTIVE)


@dataclass(frozen=True)
class GameTitle:
    """One catalog entry with the parameters used by the simulator.

    Attributes
    ----------
    name, genre, pattern, popularity:
        Direct Table 1 columns (popularity = fraction of total playtime).
    mean_session_minutes:
        Average streaming session duration observed in the ISP deployment
        (Fig. 11a shape).
    stage_fractions:
        Mean fraction of gameplay time in idle/passive/active stages
        (Fig. 11a shape).
    bitrate_clusters_mbps:
        Per-title clusters of session-average downstream throughput in Mbps
        (Fig. 12a shape); each cluster corresponds to a group of streaming
        settings (resolution/device).
    launch_seed:
        Deterministic seed for the title's launch-animation fingerprint
        (Fig. 3): sessions of the same title share the fingerprint, distinct
        titles differ.
    launch_bitrate_mbps:
        Typical downstream bitrate during the launch animation.
    """

    name: str
    genre: Genre
    pattern: ActivityPattern
    popularity: float
    mean_session_minutes: float
    stage_fractions: Dict[PlayerStage, float] = field(default_factory=dict)
    bitrate_clusters_mbps: Tuple[Tuple[float, float], ...] = ((10.0, 25.0),)
    launch_seed: int = 0
    launch_bitrate_mbps: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.popularity <= 1.0:
            raise ValueError(f"popularity must be in [0, 1], got {self.popularity}")
        if self.mean_session_minutes <= 0:
            raise ValueError(
                f"mean_session_minutes must be positive, got {self.mean_session_minutes}"
            )
        total = sum(self.stage_fractions.values())
        if self.stage_fractions and not 0.99 <= total <= 1.01:
            raise ValueError(
                f"stage_fractions for {self.name} must sum to 1, got {total:.3f}"
            )
        for low, high in self.bitrate_clusters_mbps:
            if not 0 < low < high:
                raise ValueError(
                    f"invalid bitrate cluster ({low}, {high}) for {self.name}"
                )

    @property
    def max_bitrate_mbps(self) -> float:
        """Upper edge of the highest bitrate cluster."""
        return max(high for _low, high in self.bitrate_clusters_mbps)

    def stage_fraction(self, stage: PlayerStage) -> float:
        """Fraction of gameplay time spent in ``stage`` (0 when unknown)."""
        return self.stage_fractions.get(stage, 0.0)


def _fractions(idle: float, passive: float, active: float) -> Dict[PlayerStage, float]:
    return {
        PlayerStage.IDLE: idle,
        PlayerStage.PASSIVE: passive,
        PlayerStage.ACTIVE: active,
    }


#: The 13 popular titles of Table 1.  Popularity values are the paper's
#: playtime shares; duration/stage/bitrate parameters encode the shapes of
#: Fig. 11a and Fig. 12a.
GAME_TITLES: Tuple[GameTitle, ...] = (
    GameTitle(
        name="Fortnite",
        genre=Genre.SHOOTER,
        pattern=ActivityPattern.SPECTATE_AND_PLAY,
        popularity=0.3780,
        mean_session_minutes=48.0,
        stage_fractions=_fractions(0.15, 0.18, 0.67),
        bitrate_clusters_mbps=((9.0, 18.0), (22.0, 34.0), (40.0, 68.0)),
        launch_seed=101,
        launch_bitrate_mbps=12.0,
    ),
    GameTitle(
        name="Genshin Impact",
        genre=Genre.ROLE_PLAYING,
        pattern=ActivityPattern.CONTINUOUS_PLAY,
        popularity=0.2010,
        mean_session_minutes=65.0,
        stage_fractions=_fractions(0.22, 0.05, 0.73),
        bitrate_clusters_mbps=((8.0, 16.0), (18.0, 30.0), (32.0, 50.0)),
        launch_seed=102,
        launch_bitrate_mbps=14.0,
    ),
    GameTitle(
        name="Baldur's Gate 3",
        genre=Genre.ROLE_PLAYING,
        pattern=ActivityPattern.CONTINUOUS_PLAY,
        popularity=0.0330,
        mean_session_minutes=95.0,
        stage_fractions=_fractions(0.30, 0.08, 0.62),
        bitrate_clusters_mbps=((10.0, 20.0), (24.0, 38.0), (45.0, 68.0)),
        launch_seed=103,
        launch_bitrate_mbps=15.0,
    ),
    GameTitle(
        name="R6: Siege",
        genre=Genre.SHOOTER,
        pattern=ActivityPattern.SPECTATE_AND_PLAY,
        popularity=0.0124,
        mean_session_minutes=70.0,
        stage_fractions=_fractions(0.22, 0.26, 0.52),
        bitrate_clusters_mbps=((8.0, 16.0), (18.0, 30.0), (32.0, 48.0)),
        launch_seed=104,
        launch_bitrate_mbps=11.0,
    ),
    GameTitle(
        name="Honkai: Star Rail",
        genre=Genre.ROLE_PLAYING,
        pattern=ActivityPattern.CONTINUOUS_PLAY,
        popularity=0.0116,
        mean_session_minutes=60.0,
        stage_fractions=_fractions(0.35, 0.10, 0.55),
        bitrate_clusters_mbps=((6.0, 12.0), (14.0, 24.0), (26.0, 40.0)),
        launch_seed=105,
        launch_bitrate_mbps=9.0,
    ),
    GameTitle(
        name="Destiny 2",
        genre=Genre.SHOOTER,
        pattern=ActivityPattern.SPECTATE_AND_PLAY,
        popularity=0.0115,
        mean_session_minutes=62.0,
        stage_fractions=_fractions(0.20, 0.22, 0.58),
        bitrate_clusters_mbps=((8.0, 18.0), (20.0, 30.0), (35.0, 47.0)),
        launch_seed=106,
        launch_bitrate_mbps=12.0,
    ),
    GameTitle(
        name="Call of Duty",
        genre=Genre.SHOOTER,
        pattern=ActivityPattern.SPECTATE_AND_PLAY,
        popularity=0.0097,
        mean_session_minutes=55.0,
        stage_fractions=_fractions(0.18, 0.24, 0.58),
        bitrate_clusters_mbps=((9.0, 18.0), (22.0, 34.0), (38.0, 56.0)),
        launch_seed=107,
        launch_bitrate_mbps=13.0,
    ),
    GameTitle(
        name="Cyberpunk 2077",
        genre=Genre.ROLE_PLAYING,
        pattern=ActivityPattern.CONTINUOUS_PLAY,
        popularity=0.0084,
        mean_session_minutes=82.0,
        stage_fractions=_fractions(0.28, 0.07, 0.65),
        bitrate_clusters_mbps=((10.0, 20.0), (24.0, 36.0), (40.0, 62.0)),
        launch_seed=108,
        launch_bitrate_mbps=16.0,
    ),
    GameTitle(
        name="Overwatch 2",
        genre=Genre.SHOOTER,
        pattern=ActivityPattern.SPECTATE_AND_PLAY,
        popularity=0.0074,
        mean_session_minutes=50.0,
        stage_fractions=_fractions(0.21, 0.23, 0.56),
        bitrate_clusters_mbps=((8.0, 16.0), (18.0, 28.0), (32.0, 50.0)),
        launch_seed=109,
        launch_bitrate_mbps=11.0,
    ),
    GameTitle(
        name="Rocket League",
        genre=Genre.SPORTS,
        pattern=ActivityPattern.SPECTATE_AND_PLAY,
        popularity=0.0064,
        mean_session_minutes=30.0,
        stage_fractions=_fractions(0.23, 0.20, 0.57),
        bitrate_clusters_mbps=((7.0, 14.0), (16.0, 26.0), (28.0, 44.0)),
        launch_seed=110,
        launch_bitrate_mbps=8.0,
    ),
    GameTitle(
        name="CS:GO/CS2",
        genre=Genre.SHOOTER,
        pattern=ActivityPattern.SPECTATE_AND_PLAY,
        popularity=0.0061,
        mean_session_minutes=35.0,
        stage_fractions=_fractions(0.22, 0.26, 0.52),
        bitrate_clusters_mbps=((7.0, 14.0), (16.0, 26.0), (30.0, 46.0)),
        launch_seed=111,
        launch_bitrate_mbps=9.0,
    ),
    GameTitle(
        name="Dota 2",
        genre=Genre.MOBA,
        pattern=ActivityPattern.SPECTATE_AND_PLAY,
        popularity=0.0055,
        mean_session_minutes=75.0,
        stage_fractions=_fractions(0.14, 0.18, 0.68),
        bitrate_clusters_mbps=((6.0, 12.0), (14.0, 24.0), (26.0, 42.0)),
        launch_seed=112,
        launch_bitrate_mbps=8.0,
    ),
    GameTitle(
        name="Hearthstone",
        genre=Genre.CARD,
        pattern=ActivityPattern.SPECTATE_AND_PLAY,
        popularity=0.0004,
        mean_session_minutes=45.0,
        stage_fractions=_fractions(0.30, 0.25, 0.45),
        bitrate_clusters_mbps=((3.0, 7.0), (8.0, 13.0), (14.0, 20.0)),
        launch_seed=113,
        launch_bitrate_mbps=5.0,
    ),
)

#: Catalog keyed by title name.
CATALOG: Dict[str, GameTitle] = {title.name: title for title in GAME_TITLES}

#: Label used when the classifier cannot confidently identify the title.
UNKNOWN_TITLE = "unknown"


def get_title(name: str) -> GameTitle:
    """Look up a title by name.

    Raises
    ------
    KeyError
        If the title is not in the catalog.
    """
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown game title {name!r}; known titles: {sorted(CATALOG)}"
        ) from None


def titles_by_pattern(pattern: ActivityPattern) -> List[GameTitle]:
    """All catalog titles following the given gameplay activity pattern."""
    return [title for title in GAME_TITLES if title.pattern is pattern]


def titles_by_genre(genre: Genre) -> List[GameTitle]:
    """All catalog titles of the given genre."""
    return [title for title in GAME_TITLES if title.genre is genre]


def popularity_weights() -> Dict[str, float]:
    """Normalised popularity distribution over the 13 titles.

    Table 1 covers ~69% of total playtime; this helper renormalises those
    shares to 1.0 for sampling within the covered catalog.
    """
    total = sum(title.popularity for title in GAME_TITLES)
    return {title.name: title.popularity / total for title in GAME_TITLES}
