"""User device, software and streaming-setting profiles (Table 2).

The lab dataset covers eight device/OS/software configurations spanning
Windows and macOS PCs, Android and iOS phones, an Android TV and an Xbox
console, each streaming at resolutions between SD and UHD and frame rates
between 30 and 120 fps.  Streaming settings determine the encoder target
bitrate (and therefore the absolute volumetric levels of a session) while
leaving the *relative* per-stage and per-title structure unchanged — the
property the paper's classifiers rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

import numpy as np


class Resolution(Enum):
    """Streaming resolution tiers used in Table 2."""

    SD = "SD"        # 854x480
    HD = "HD"        # 1280x720
    FHD = "FHD"      # 1920x1080
    QHD = "QHD"      # 2560x1440
    UHD = "UHD"      # 3840x2160

    @property
    def pixels(self) -> int:
        return {
            Resolution.SD: 854 * 480,
            Resolution.HD: 1280 * 720,
            Resolution.FHD: 1920 * 1080,
            Resolution.QHD: 2560 * 1440,
            Resolution.UHD: 3840 * 2160,
        }[self]

    @property
    def bitrate_scale(self) -> float:
        """Relative encoder bitrate versus FHD for the same content."""
        return {
            Resolution.SD: 0.35,
            Resolution.HD: 0.6,
            Resolution.FHD: 1.0,
            Resolution.QHD: 1.6,
            Resolution.UHD: 2.4,
        }[self]


#: Maximum UDP payload of a full video packet on the GeForce NOW path
#: (observed as a fixed maximum payload size in Fig. 3).
FULL_PACKET_PAYLOAD = 1432

#: Typical upstream input-packet payload sizes in bytes.
INPUT_PACKET_MEAN = 120
INPUT_PACKET_STD = 30


@dataclass(frozen=True)
class StreamingSettings:
    """Per-session streaming configuration.

    Attributes
    ----------
    resolution:
        Encoder output resolution tier.
    fps:
        Target streaming frame rate (30–120 in Table 2).
    base_bitrate_mbps:
        Encoder target bitrate for *active* gameplay at FHD/60fps before
        resolution and frame-rate scaling; per-title differences are applied
        by the traffic model on top of this.
    """

    resolution: Resolution = Resolution.FHD
    fps: int = 60
    base_bitrate_mbps: float = 22.0

    def __post_init__(self) -> None:
        if not 10 <= self.fps <= 240:
            raise ValueError(f"fps out of range: {self.fps}")
        if self.base_bitrate_mbps <= 0:
            raise ValueError(
                f"base_bitrate_mbps must be positive, got {self.base_bitrate_mbps}"
            )

    @property
    def target_bitrate_mbps(self) -> float:
        """Encoder target bitrate for active gameplay under these settings."""
        fps_scale = 0.6 + 0.4 * (self.fps / 60.0)
        return self.base_bitrate_mbps * self.resolution.bitrate_scale * fps_scale


@dataclass(frozen=True)
class DeviceConfiguration:
    """A device/OS/software row of Table 2.

    ``resolution_range`` bounds the resolutions this configuration supports
    (e.g. mobile browsers cap at FHD), and ``fps_options`` lists the frame
    rates users pick from.
    """

    device: str
    os: str
    software: str
    resolution_range: Tuple[Resolution, Resolution]
    fps_options: Tuple[int, ...] = (30, 60, 120)

    def __str__(self) -> str:
        return f"{self.device}/{self.os}/{self.software}"

    def supported_resolutions(self) -> Tuple[Resolution, ...]:
        """Resolutions within this configuration's supported range."""
        ordered = list(Resolution)
        low, high = self.resolution_range
        low_index = ordered.index(low)
        high_index = ordered.index(high)
        if low_index > high_index:
            low_index, high_index = high_index, low_index
        return tuple(ordered[low_index : high_index + 1])

    def sample_settings(
        self, rng: Optional[np.random.Generator] = None
    ) -> StreamingSettings:
        """Draw a random resolution/fps combination for this configuration."""
        rng = rng or np.random.default_rng()
        resolutions = self.supported_resolutions()
        resolution = resolutions[int(rng.integers(0, len(resolutions)))]
        fps = int(self.fps_options[int(rng.integers(0, len(self.fps_options)))])
        return StreamingSettings(resolution=resolution, fps=fps)


#: The eight lab configurations of Table 2, keyed by a short identifier, with
#: the number of sessions and playtime hours the paper captured for each.
LAB_CONFIGURATIONS: Dict[str, dict] = {
    "windows-app": {
        "config": DeviceConfiguration(
            device="PC", os="Windows", software="Native app",
            resolution_range=(Resolution.SD, Resolution.UHD),
        ),
        "sessions": 89,
        "playtime_hours": 10.9,
    },
    "windows-browser": {
        "config": DeviceConfiguration(
            device="PC", os="Windows", software="Browser",
            resolution_range=(Resolution.SD, Resolution.QHD),
        ),
        "sessions": 60,
        "playtime_hours": 6.8,
    },
    "macos-app": {
        "config": DeviceConfiguration(
            device="PC", os="macOS", software="Native app",
            resolution_range=(Resolution.SD, Resolution.UHD),
        ),
        "sessions": 76,
        "playtime_hours": 10.5,
    },
    "macos-browser": {
        "config": DeviceConfiguration(
            device="PC", os="macOS", software="Browser",
            resolution_range=(Resolution.SD, Resolution.QHD),
        ),
        "sessions": 61,
        "playtime_hours": 7.7,
    },
    "android-app": {
        "config": DeviceConfiguration(
            device="Mobile", os="Android", software="Native app",
            resolution_range=(Resolution.FHD, Resolution.QHD),
        ),
        "sessions": 73,
        "playtime_hours": 9.1,
    },
    "ios-browser": {
        "config": DeviceConfiguration(
            device="Mobile", os="iOS", software="Browser",
            resolution_range=(Resolution.SD, Resolution.FHD),
        ),
        "sessions": 70,
        "playtime_hours": 8.8,
    },
    "androidtv-app": {
        "config": DeviceConfiguration(
            device="TV", os="AndroidTV", software="Native app",
            resolution_range=(Resolution.SD, Resolution.FHD),
        ),
        "sessions": 48,
        "playtime_hours": 6.1,
    },
    "xbox-browser": {
        "config": DeviceConfiguration(
            device="Console", os="Xbox", software="Browser",
            resolution_range=(Resolution.SD, Resolution.FHD),
        ),
        "sessions": 54,
        "playtime_hours": 7.1,
    },
}


def total_lab_sessions() -> int:
    """Total number of lab sessions across all configurations (531)."""
    return sum(entry["sessions"] for entry in LAB_CONFIGURATIONS.values())


def total_lab_playtime_hours() -> float:
    """Total lab playtime in hours (~67)."""
    return float(sum(entry["playtime_hours"] for entry in LAB_CONFIGURATIONS.values()))
